//! Analytical model vs simulation: the paper's stated future work (§6) —
//! predict latency, throughput, and the saturation point with the
//! closed-form channel-load model and compare against flit-level
//! simulation, fault-free and with a fault block.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --example analytic_vs_sim
//! ```

use std::sync::Arc;
use wormsim_analytic::AnalyticModel;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::{Coord, Mesh, Rect};
use wormsim_traffic::Workload;

fn compare(mesh: &Mesh, pattern: &FaultPattern, label: &str) {
    let model = AnalyticModel::new(mesh, pattern);
    println!("== {label} ==");
    println!(
        "model: mean distance {:.2}, zero-load latency {:.1}, saturation rate {:.5} msgs/node/cycle",
        model.mean_distance(),
        model.zero_load_latency(100),
        model.saturation_rate(100)
    );
    println!(
        "{:>9} {:>12} {:>12} {:>10} {:>10}",
        "rate", "lat (model)", "lat (sim)", "thr (model)", "thr (sim)"
    );
    for rate in [0.0005, 0.001, 0.0015, 0.002, 0.003, 0.005] {
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
        let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
        let cfg = SimConfig {
            warmup_cycles: 5_000,
            measure_cycles: 15_000,
            ..SimConfig::paper()
        };
        let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(rate), cfg);
        let r = sim.run();
        let lat_model = model
            .mean_latency(rate, 100)
            .map(|l| format!("{l:.1}"))
            .unwrap_or_else(|| "saturated".into());
        println!(
            "{:>9.4} {:>12} {:>12.1} {:>10.4} {:>10.4}",
            rate,
            lat_model,
            r.mean_network_latency(),
            model.normalized_throughput(rate, 100),
            r.normalized_throughput()
        );
    }
    println!();
}

fn main() {
    let mesh = Mesh::square(10);
    compare(&mesh, &FaultPattern::fault_free(&mesh), "fault-free 10×10");
    let pattern = FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 3), Coord::new(5, 6))])
        .expect("pattern");
    compare(&mesh, &pattern, "2×4 fault block at (4,3)-(5,6)");
    println!("note: the model assumes load-balanced shortest paths and M/G/1 channel");
    println!("waiting; expect agreement at low load and a conservative saturation");
    println!("estimate (simulated adaptive routing spreads load better than one");
    println!("shortest path per pair).");
}
