//! Head-to-head comparison of all eleven routing algorithms at one
//! operating point — the experiment behind the paper's Figures 4–5,
//! on a single shared fault set.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --example algorithm_shootout [faults] [rate]
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wormsim_experiments::{parallel_map, run_single, ExperimentConfig, RunSpec, Scale};
use wormsim_fault::{random_pattern, FaultPattern};
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let faults: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(5);
    let rate: f64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0.004);

    let cfg = ExperimentConfig::new(Scale::Paper);
    let mesh = Mesh::square(cfg.mesh_size);
    let mut rng = SmallRng::seed_from_u64(cfg.base_seed);
    let pattern = std::sync::Arc::new(if faults == 0 {
        FaultPattern::fault_free(&mesh)
    } else {
        random_pattern(&mesh, faults, &mut rng).expect("pattern")
    });
    println!(
        "== shootout: {} faults ({} disabled), rate {} msgs/node/cycle ==\n",
        faults,
        pattern.num_faulty(),
        rate
    );

    let specs: Vec<RunSpec> = AlgorithmKind::ALL
        .iter()
        .map(|&kind| RunSpec {
            kind,
            pattern: pattern.clone(),
            rate,
            seed: 42,
        })
        .collect();
    let mut reports = parallel_map(&specs, cfg.threads, |s| {
        run_single(&cfg, s).expect("runnable spec")
    });
    reports.sort_by(|a, b| {
        b.normalized_throughput()
            .partial_cmp(&a.normalized_throughput())
            .unwrap()
    });

    println!(
        "{:<24} {:>10} {:>12} {:>10} {:>8}",
        "algorithm", "throughput", "net latency", "delivered", "recov"
    );
    for r in &reports {
        println!(
            "{:<24} {:>10.4} {:>12.1} {:>10} {:>8}",
            r.algorithm,
            r.normalized_throughput(),
            r.mean_network_latency(),
            r.throughput.messages_delivered(),
            r.recoveries
        );
    }
}
