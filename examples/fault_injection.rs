//! Progressive fault injection: watch one algorithm degrade as the number
//! of random node failures grows, with an ASCII rendering of each fault
//! pattern and its f-rings.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --example fault_injection
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::{random_pattern, FRingSet, FaultPattern};
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

/// Render the mesh: '#' faulty, 'o' on an f-ring, '.' ordinary.
fn render(mesh: &Mesh, pattern: &FaultPattern, rings: &FRingSet) -> String {
    let mut out = String::new();
    for y in (0..mesh.height()).rev() {
        for x in 0..mesh.width() {
            let n = mesh.node(x, y);
            out.push(if pattern.is_faulty(n) {
                '#'
            } else if rings.on_any_ring(n) {
                'o'
            } else {
                '.'
            });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mesh = Mesh::square(10);
    let kind = AlgorithmKind::Nbc;
    println!("algorithm: {}\n", kind.paper_name());
    println!(
        "{:>7} {:>9} {:>10} {:>12} {:>7}",
        "faults", "disabled", "throughput", "net latency", "recov"
    );

    let mut rng = SmallRng::seed_from_u64(7);
    for faults in [0usize, 2, 5, 8, 10] {
        let pattern = if faults == 0 {
            FaultPattern::fault_free(&mesh)
        } else {
            random_pattern(&mesh, faults, &mut rng).expect("pattern")
        };
        let rings = FRingSet::build(&mesh, &pattern);
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let cfg = SimConfig {
            warmup_cycles: 5_000,
            measure_cycles: 10_000,
            ..SimConfig::paper()
        };
        let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(0.004), cfg);
        let r = sim.run();
        println!(
            "{:>7} {:>9} {:>10.4} {:>12.1} {:>7}",
            faults,
            pattern.num_faulty(),
            r.normalized_throughput(),
            r.mean_network_latency(),
            r.recoveries
        );
        if faults == 10 {
            println!("\nfinal pattern ('#' faulty, 'o' f-ring, '.' other):\n");
            println!("{}", render(&mesh, &pattern, &rings));
        }
    }
}
