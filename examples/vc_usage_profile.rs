//! Per-VC utilization profile for one algorithm — the paper's Figure 3
//! view, rendered as terminal bars. Shows the hop-class skew of PHop/NHop,
//! the bonus-card spreading of Pbc/Nbc, and the flat profile of the
//! free-choice algorithms.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --example vc_usage_profile [algo] [faults]
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::{random_pattern, FaultPattern};
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;
use wormsim_viz::BarChart;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kinds: Vec<AlgorithmKind> = match args.first().map(|s| s.as_str()) {
        Some("all") | None => vec![
            AlgorithmKind::PHop,
            AlgorithmKind::NHop,
            AlgorithmKind::Pbc,
            AlgorithmKind::MinimalAdaptive,
        ],
        Some(name) => {
            let norm = name.to_lowercase();
            let found = AlgorithmKind::ALL
                .into_iter()
                .chain(AlgorithmKind::EXTENDED_BASELINES)
                .find(|k| format!("{k:?}").to_lowercase() == norm.replace(['-', '_'], ""));
            match found {
                Some(k) => vec![k],
                None => {
                    eprintln!("unknown algorithm {name:?}; try e.g. phop, nbc, duatonbc");
                    std::process::exit(2);
                }
            }
        }
    };
    let faults: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5);

    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(33);
    let pattern = if faults == 0 {
        FaultPattern::fault_free(&mesh)
    } else {
        random_pattern(&mesh, faults, &mut rng).expect("pattern")
    };

    for kind in kinds {
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let cfg = SimConfig {
            warmup_cycles: 3_000,
            measure_cycles: 9_000,
            ..SimConfig::paper()
        };
        let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(0.004), cfg);
        let report = sim.run();
        let usage = report.vc_usage.utilization_percent();
        let mut bars = BarChart::new(50).with_title(format!(
            "{} — per-VC utilization (%) at {} faults (imbalance {:.2})",
            report.algorithm,
            faults,
            report.vc_usage.imbalance()
        ));
        for (vc, u) in usage.iter().enumerate() {
            let tag = if vc >= 20 { " (BC)" } else { "" };
            bars.push(format!("VC{vc:02}{tag}"), vec![*u]);
        }
        println!("{}", bars.render());
    }
}
