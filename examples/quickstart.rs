//! Quickstart: simulate one routing algorithm on a 10×10 wormhole mesh with
//! a random fault pattern and print the headline statistics.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --example quickstart
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::random_pattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn main() {
    // A 10×10 mesh with 5 random node failures (coalesced into convex
    // blocks, connectivity guaranteed).
    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(2007);
    let pattern = random_pattern(&mesh, 5, &mut rng).expect("pattern");
    println!(
        "fault pattern: {} seed faults -> {} unusable nodes in {} block region(s)",
        pattern.num_seed_faulty(),
        pattern.num_faulty(),
        pattern.regions().len()
    );

    // Bind Duato-Nbc (the paper's strongest performer) to the network.
    let ctx = Arc::new(RoutingContext::new(mesh, pattern));
    let algo = build_algorithm(AlgorithmKind::DuatoNbc, ctx.clone(), VcConfig::paper());

    // Uniform traffic at a moderate load, the paper's 30k-cycle schedule.
    let workload = Workload::paper_uniform(0.003);
    let mut sim = Simulator::new(algo, ctx, workload, SimConfig::paper());
    let report = sim.run();

    println!("algorithm          : {}", report.algorithm);
    println!(
        "offered rate       : {} msgs/node/cycle",
        report.offered_rate
    );
    println!(
        "delivered messages : {}",
        report.throughput.messages_delivered()
    );
    println!(
        "normalized thr.    : {:.4} flits/node/cycle",
        report.normalized_throughput()
    );
    println!(
        "network latency    : {:.1} flit cycles (mean)",
        report.mean_network_latency()
    );
    println!(
        "total latency      : {:.1} flit cycles (incl. source queueing)",
        report.mean_latency()
    );
    println!("watchdog recoveries: {}", report.recoveries);
    if let Some(ring) = report.ring_load {
        println!(
            "f-ring load        : mean {:.1}% vs other nodes {:.1}% (of peak)",
            ring.ring_mean_percent, ring.other_mean_percent
        );
    }
}
