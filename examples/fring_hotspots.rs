//! Traffic hotspots around fault rings: reproduce the paper's §5.2 fixed
//! fault layout, run two contrasting algorithms across it, and print a
//! per-node load heatmap showing the congestion concentrating on f-ring
//! corners.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --example fring_hotspots
//! ```

use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_experiments::paper_52_layout;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn main() {
    let mesh = Mesh::square(10);
    let pattern = paper_52_layout(&mesh);
    println!(
        "paper §5.2 layout: {} regions, {} faulty nodes\n",
        pattern.regions().len(),
        pattern.num_faulty()
    );

    for kind in [AlgorithmKind::PHop, AlgorithmKind::DuatoNbc] {
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let cfg = SimConfig {
            warmup_cycles: 5_000,
            measure_cycles: 15_000,
            ..SimConfig::paper()
        };
        let mut sim = Simulator::new(algo, ctx.clone(), Workload::paper_uniform(0.004), cfg);
        let report = sim.run();

        println!("== {} ==", report.algorithm);
        let loads = report.node_load.load_per_cycle();
        let peak = loads.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
        // Heatmap: digits 0..9 = load as a tenth of peak; '#' = faulty.
        for y in (0..mesh.height()).rev() {
            for x in 0..mesh.width() {
                let n = mesh.node(x, y);
                if ctx.pattern().is_faulty(n) {
                    print!(" #");
                } else {
                    let level = ((loads[n.index()] / peak) * 9.0).round() as u32;
                    print!(" {level}");
                }
            }
            println!();
        }
        let ring = report.ring_load.expect("faulty run has ring stats");
        println!(
            "f-ring nodes: mean {:.1}% / peak {:.1}%   other nodes: mean {:.1}% / peak {:.1}%",
            ring.ring_mean_percent,
            ring.ring_peak_percent,
            ring.other_mean_percent,
            ring.other_peak_percent
        );
        println!(
            "throughput {:.4}, net latency {:.1}\n",
            report.normalized_throughput(),
            report.mean_network_latency()
        );
    }
    println!("note: the paper's Figure 6 shows the same contrast — algorithms with");
    println!("rigid VC discipline (PHop) hotspot harder around f-rings than flexible");
    println!("ones (Duato-Nbc).");
}
