//! Statistical sanity of the full pipeline: offered-vs-delivered tracking,
//! latency bounds, VC-usage signatures, and workload distributions.

use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn report(kind: AlgorithmKind, rate: f64, cycles: (u64, u64)) -> wormsim_metrics::SimReport {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig {
        warmup_cycles: cycles.0,
        measure_cycles: cycles.1,
        ..SimConfig::paper()
    };
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(rate), cfg);
    sim.run()
}

#[test]
fn latency_at_least_message_length_plus_distance() {
    let r = report(AlgorithmKind::Duato, 0.0005, (1_000, 6_000));
    // Minimum over delivered messages: ≥ length (pipeline drain) + 1 hop.
    assert!(r.network_latency.min().unwrap() >= 101);
    // Mean reflects the ~7-hop average distance of uniform traffic plus
    // the 100-cycle pipeline: comfortably above 105, below heavy
    // congestion levels at this tiny load.
    let mean = r.mean_network_latency();
    assert!(mean > 105.0 && mean < 400.0, "mean latency {mean}");
}

#[test]
fn throughput_tracks_offered_then_saturates() {
    let low = report(AlgorithmKind::NHop, 0.0005, (1_000, 6_000));
    let mid = report(AlgorithmKind::NHop, 0.0015, (1_000, 6_000));
    let sat = report(AlgorithmKind::NHop, 0.02, (1_000, 6_000));
    let sat2 = report(AlgorithmKind::NHop, 0.03, (1_000, 6_000));
    assert!((low.normalized_throughput() - 0.05).abs() < 0.01);
    assert!((mid.normalized_throughput() - 0.15).abs() < 0.03);
    // Past saturation, throughput stops growing (within noise).
    let (a, b) = (sat.normalized_throughput(), sat2.normalized_throughput());
    assert!(a > 0.15, "saturation throughput {a}");
    assert!((a - b).abs() < 0.05, "throughput kept growing: {a} vs {b}");
}

#[test]
fn latency_grows_with_load() {
    let low = report(AlgorithmKind::Pbc, 0.0005, (1_000, 6_000));
    let high = report(AlgorithmKind::Pbc, 0.003, (1_000, 6_000));
    assert!(high.mean_network_latency() > low.mean_network_latency());
}

#[test]
fn phop_concentrates_usage_in_low_vcs() {
    // The paper's Figure 3 signature: hop-based algorithms use the
    // low-numbered classes far more than the high ones.
    let r = report(AlgorithmKind::PHop, 0.002, (1_000, 6_000));
    let u = r.vc_usage.utilization();
    let low: f64 = u[0..6].iter().sum();
    let high: f64 = u[12..18].iter().sum();
    assert!(
        low > high * 3.0,
        "PHop should skew to low classes: low={low:.4} high={high:.4}"
    );
}

#[test]
fn free_choice_spreads_usage_evenly() {
    let r = report(AlgorithmKind::MinimalAdaptive, 0.002, (1_000, 6_000));
    let u = r.vc_usage.utilization();
    // Compare only the base VCs (20 of them); BC VCs are unused fault-free.
    let base = &u[0..20];
    let mean = base.iter().sum::<f64>() / base.len() as f64;
    for (i, &v) in base.iter().enumerate() {
        assert!(
            (v - mean).abs() < mean * 0.5,
            "VC{i} far from even: {v:.4} vs mean {mean:.4}"
        );
    }
    // The paper's imbalance contrast against PHop.
    let phop = report(AlgorithmKind::PHop, 0.002, (1_000, 6_000));
    assert!(phop.vc_usage.imbalance() > r.vc_usage.imbalance() * 1.5);
}

#[test]
fn bc_vcs_unused_without_faults() {
    let r = report(AlgorithmKind::Nbc, 0.002, (1_000, 6_000));
    let u = r.vc_usage.utilization();
    for (vc, &usage) in u.iter().enumerate().take(24).skip(20) {
        assert_eq!(usage, 0.0, "BC VC{vc} used on a fault-free mesh");
    }
}

#[test]
fn node_load_is_center_heavy_under_uniform_traffic() {
    // Minimal routing on a mesh concentrates load in the center.
    let r = report(AlgorithmKind::Duato, 0.002, (1_000, 6_000));
    let mesh = Mesh::square(10);
    let loads = r.node_load.load_per_cycle();
    let center = loads[mesh.node(4, 4).index()]
        + loads[mesh.node(5, 5).index()]
        + loads[mesh.node(4, 5).index()]
        + loads[mesh.node(5, 4).index()];
    let corners = loads[mesh.node(0, 0).index()]
        + loads[mesh.node(9, 9).index()]
        + loads[mesh.node(0, 9).index()]
        + loads[mesh.node(9, 0).index()];
    assert!(
        center > corners * 2.0,
        "center {center:.3} should dominate corners {corners:.3}"
    );
}

#[test]
fn injection_counts_match_rate() {
    let r = report(AlgorithmKind::Duato, 0.002, (2_000, 10_000));
    // 100 nodes × 0.002 × 10_000 = 2_000 expected injections in-window.
    let injected = r.throughput.messages_injected();
    assert!(
        (1_700..=2_300).contains(&injected),
        "injected {injected}, expected ≈ 2000"
    );
}
