//! Cross-validation of the analytical model (wormsim-analytic) against the
//! flit-level simulator — the acceptance test for the paper's future-work
//! extension.

use std::sync::Arc;
use wormsim_analytic::AnalyticModel;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::{Coord, Mesh, Rect};
use wormsim_traffic::Workload;

fn simulate(pattern: &FaultPattern, rate: f64, seed: u64) -> wormsim_metrics::SimReport {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(mesh, pattern.clone()));
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 8_000,
        seed,
        ..SimConfig::paper()
    };
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(rate), cfg);
    sim.run()
}

#[test]
fn zero_load_latency_matches_simulation() {
    let mesh = Mesh::square(10);
    let pattern = FaultPattern::fault_free(&mesh);
    let model = AnalyticModel::new(&mesh, &pattern);
    let sim = simulate(&pattern, 0.0001, 1);
    let predicted = model.zero_load_latency(100);
    let measured = sim.mean_network_latency();
    // At λ=1e-4 contention is negligible: within 15 %.
    assert!(
        (measured - predicted).abs() / predicted < 0.15,
        "predicted {predicted:.1}, measured {measured:.1}"
    );
}

#[test]
fn low_load_latency_within_tolerance() {
    let mesh = Mesh::square(10);
    let pattern = FaultPattern::fault_free(&mesh);
    let model = AnalyticModel::new(&mesh, &pattern);
    for (rate, tol) in [(0.0005, 0.15), (0.001, 0.20), (0.0015, 0.25)] {
        let predicted = model.mean_latency(rate, 100).expect("below saturation");
        let measured = simulate(&pattern, rate, 2).mean_network_latency();
        let err = (measured - predicted).abs() / measured;
        assert!(
            err < tol,
            "rate {rate}: predicted {predicted:.1}, measured {measured:.1} (err {err:.2})"
        );
    }
}

#[test]
fn saturation_rate_brackets_simulated_knee() {
    let mesh = Mesh::square(10);
    let pattern = FaultPattern::fault_free(&mesh);
    let model = AnalyticModel::new(&mesh, &pattern);
    let sat = model.saturation_rate(100);
    // Below the predicted saturation the simulator delivers the offered
    // load; well above it, it cannot.
    let below = simulate(&pattern, sat * 0.5, 3);
    assert!(
        (below.normalized_throughput() - sat * 0.5 * 100.0).abs() / (sat * 0.5 * 100.0) < 0.1,
        "below-saturation run should deliver offered load"
    );
    let above = simulate(&pattern, sat * 3.0, 4);
    assert!(
        above.normalized_throughput() < sat * 3.0 * 100.0 * 0.7,
        "above-saturation run should fall short of offered load"
    );
}

#[test]
fn fault_capacity_ordering_preserved() {
    // The model must rank configurations the same way the simulator does:
    // fault-free capacity > one-block capacity.
    let mesh = Mesh::square(10);
    let free = FaultPattern::fault_free(&mesh);
    let blocked =
        FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 3), Coord::new(5, 6))]).unwrap();
    let m_free = AnalyticModel::new(&mesh, &free);
    let m_blocked = AnalyticModel::new(&mesh, &blocked);
    assert!(m_blocked.saturation_rate(100) < m_free.saturation_rate(100));

    let s_free = simulate(&free, 0.01, 5).normalized_throughput();
    let s_blocked = simulate(&blocked, 0.01, 5).normalized_throughput();
    assert!(s_blocked < s_free);
    // Relative capacity loss agrees within a factor of two.
    let model_ratio = m_blocked.saturation_rate(100) / m_free.saturation_rate(100);
    let sim_ratio = s_blocked / s_free;
    assert!(
        model_ratio < sim_ratio * 2.0 && model_ratio > sim_ratio * 0.4,
        "capacity ratios diverge: model {model_ratio:.2} vs sim {sim_ratio:.2}"
    );
}
