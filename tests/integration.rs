//! End-to-end integration tests: full simulations across crates.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::{random_pattern, FaultPattern};
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn sim(
    kind: AlgorithmKind,
    pattern: FaultPattern,
    rate: f64,
    length: u32,
    cfg: SimConfig,
) -> Simulator {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(mesh, pattern));
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let mut wl = Workload::paper_uniform(rate);
    wl.message_length = length;
    Simulator::new(algo, ctx, wl, cfg)
}

#[test]
fn all_algorithms_run_the_paper_configuration() {
    // A shortened paper run per algorithm: every one must deliver traffic
    // and produce internally consistent statistics.
    let mesh = Mesh::square(10);
    let cfg = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 2_500,
        ..SimConfig::paper()
    };
    for kind in AlgorithmKind::ALL {
        let mut s = sim(kind, FaultPattern::fault_free(&mesh), 0.002, 100, cfg);
        let r = s.run();
        assert!(
            r.throughput.messages_delivered() > 100,
            "{kind:?} delivered too little"
        );
        assert_eq!(r.latency.count(), r.throughput.messages_delivered());
        assert_eq!(r.network_latency.count(), r.latency.count());
        // Network latency can never exceed total latency.
        assert!(r.mean_network_latency() <= r.mean_latency() + 1e-9);
        // Minimal possible latency: message length (pipeline) cycles.
        assert!(r.network_latency.min().unwrap() >= 100);
        assert_eq!(r.recoveries, 0, "{kind:?} recovered in fault-free run");
    }
}

#[test]
fn delivered_equals_offered_below_saturation() {
    let mesh = Mesh::square(10);
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 8_000,
        ..SimConfig::paper()
    };
    let rate = 0.001; // offered 0.1 flits/node/cycle, well below saturation
    for kind in [
        AlgorithmKind::Duato,
        AlgorithmKind::NHop,
        AlgorithmKind::Pbc,
    ] {
        let mut s = sim(kind, FaultPattern::fault_free(&mesh), rate, 100, cfg);
        let r = s.run();
        let thr = r.normalized_throughput();
        assert!(
            (thr - 0.1).abs() < 0.02,
            "{kind:?}: throughput {thr} should track offered 0.1"
        );
    }
}

#[test]
fn faulty_networks_still_deliver_for_every_algorithm() {
    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(99);
    let pattern = random_pattern(&mesh, 10, &mut rng).unwrap();
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 5_000,
        ..SimConfig::paper()
    };
    for kind in AlgorithmKind::ALL {
        let mut s = sim(kind, pattern.clone(), 0.001, 100, cfg);
        let r = s.run();
        assert!(
            r.throughput.messages_delivered() > 200,
            "{kind:?} delivered {} messages with 10 faults",
            r.throughput.messages_delivered()
        );
        // Faulty nodes never see traffic.
        for n in mesh.nodes() {
            if pattern.is_faulty(n) {
                assert_eq!(r.node_load.arrivals()[n.index()], 0);
            }
        }
    }
}

#[test]
fn throughput_degrades_with_fault_percentage() {
    // The Figure 4 headline: more faults, less throughput (at full load).
    let mesh = Mesh::square(10);
    let cfg = SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: 8_000,
        ..SimConfig::paper()
    };
    let mut rng = SmallRng::seed_from_u64(5);
    let p10 = random_pattern(&mesh, 10, &mut rng).unwrap();
    let mut thr = Vec::new();
    for pattern in [FaultPattern::fault_free(&mesh), p10] {
        let mut s = sim(AlgorithmKind::DuatoNbc, pattern, 0.01, 100, cfg);
        thr.push(s.run().normalized_throughput());
    }
    assert!(
        thr[1] < thr[0] * 0.95,
        "10% faults should cost >5% throughput: {thr:?}"
    );
}

#[test]
fn deterministic_reports_from_equal_seeds() {
    let mesh = Mesh::square(10);
    let cfg = SimConfig {
        warmup_cycles: 300,
        measure_cycles: 1_500,
        ..SimConfig::paper()
    };
    let run = || {
        let mut s = sim(
            AlgorithmKind::FullyAdaptive,
            FaultPattern::fault_free(&mesh),
            0.003,
            100,
            cfg.with_seed(1234),
        );
        let r = s.run();
        (
            r.throughput.messages_delivered(),
            r.throughput.flits_delivered(),
            r.latency.count(),
            format!("{:.9}", r.mean_latency()),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn short_messages_and_small_vc_budgets() {
    // The engine is parameterized: 8-flit messages, 12 VCs.
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let cfg = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 2_000,
        ..SimConfig::paper()
    };
    for kind in [
        AlgorithmKind::Duato,
        AlgorithmKind::MinimalAdaptive,
        AlgorithmKind::BouraAdaptive,
    ] {
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::with_total(12));
        let mut wl = Workload::paper_uniform(0.01);
        wl.message_length = 8;
        let mut s = Simulator::new(algo, ctx.clone(), wl, cfg);
        let r = s.run();
        assert!(r.throughput.messages_delivered() > 500, "{kind:?}");
    }
}

#[test]
fn run_until_drained_delivers_directed_messages() {
    let mesh = Mesh::square(10);
    let cfg = SimConfig::quick();
    let mut s = sim(
        AlgorithmKind::Nbc,
        FaultPattern::fault_free(&mesh),
        0.0,
        60,
        cfg,
    );
    let ids: Vec<_> = (0..20)
        .map(|i| s.inject_message(mesh.node(i % 10, 0), mesh.node(9 - i % 10, 9)))
        .collect();
    assert!(s.run_until_drained(20_000));
    for id in ids {
        assert!(s.is_delivered(id));
    }
}
