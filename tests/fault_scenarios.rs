//! Fault-model scenario tests: specific block, chain, and overlap
//! geometries exercised end-to-end through the simulator.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::{random_pattern, FRingSet, FaultPattern};
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::{Coord, Mesh, Rect};
use wormsim_traffic::Workload;

/// A (source, destination) coordinate pair.
type EndpointPair = ((u16, u16), (u16, u16));

fn drain_messages(kind: AlgorithmKind, pattern: &FaultPattern, pairs: &[EndpointPair]) -> bool {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let mut wl = Workload::paper_uniform(0.0);
    wl.message_length = 30;
    let mut sim = Simulator::new(algo, ctx, wl, SimConfig::quick());
    for &((sx, sy), (dx, dy)) in pairs {
        sim.inject_message(mesh.node(sx, sy), mesh.node(dx, dy));
    }
    sim.run_until_drained(30_000)
}

#[test]
fn wide_block_center() {
    // A 3x4 block in the center; crossings from all four sides.
    let mesh = Mesh::square(10);
    let pattern =
        FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 3), Coord::new(6, 6))]).unwrap();
    let pairs = [
        ((1, 4), (9, 4)),
        ((9, 5), (0, 5)),
        ((5, 0), (5, 9)),
        ((5, 9), (5, 1)),
        ((1, 1), (8, 8)),
    ];
    for kind in AlgorithmKind::ALL {
        assert!(
            drain_messages(kind, &pattern, &pairs),
            "{kind:?} failed to cross a center block"
        );
    }
}

#[test]
fn boundary_chain_west() {
    // Block flush to the west edge: the f-ring degenerates to a chain.
    let mesh = Mesh::square(10);
    let pattern =
        FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(0, 3), Coord::new(1, 6))]).unwrap();
    let rings = FRingSet::build(&mesh, &pattern);
    assert!(!rings.ring(0).is_closed());
    let pairs = [((0, 1), (0, 8)), ((0, 8), (0, 0)), ((3, 5), (0, 2))];
    for kind in AlgorithmKind::ALL {
        assert!(
            drain_messages(kind, &pattern, &pairs),
            "{kind:?} failed around a boundary chain"
        );
    }
}

#[test]
fn corner_chain() {
    // Block in the north-east corner.
    let mesh = Mesh::square(10);
    let pattern =
        FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(8, 8), Coord::new(9, 9))]).unwrap();
    let rings = FRingSet::build(&mesh, &pattern);
    assert!(!rings.ring(0).is_closed());
    let pairs = [((9, 0), (7, 9)), ((0, 9), (9, 7)), ((7, 7), (0, 0))];
    for kind in AlgorithmKind::ALL {
        assert!(
            drain_messages(kind, &pattern, &pairs),
            "{kind:?} failed around a corner chain"
        );
    }
}

#[test]
fn overlapping_rings() {
    // Two 1x1 blocks at Chebyshev distance 2 share f-ring nodes
    // (paper §5.2's overlapping case).
    let mesh = Mesh::square(10);
    let pattern =
        FaultPattern::from_faulty_coords(&mesh, [Coord::new(4, 4), Coord::new(6, 4)]).unwrap();
    let rings = FRingSet::build(&mesh, &pattern);
    let shared = mesh.node(5, 4);
    assert_eq!(rings.positions_of(shared).len(), 2);
    let pairs = [((3, 4), (7, 4)), ((7, 4), (3, 4)), ((5, 2), (5, 7))];
    for kind in AlgorithmKind::ALL {
        assert!(
            drain_messages(kind, &pattern, &pairs),
            "{kind:?} failed across overlapping rings"
        );
    }
}

#[test]
fn paper_52_multi_region_layout() {
    let mesh = Mesh::square(10);
    let pattern = FaultPattern::from_rects(
        &mesh,
        &[
            Rect::new(Coord::new(3, 3), Coord::new(4, 5)),
            Rect::point(Coord::new(7, 7)),
            Rect::point(Coord::new(7, 1)),
        ],
    )
    .unwrap();
    // A batch of crossings that interact with all three regions.
    let pairs = [
        ((0, 4), (9, 4)),
        ((7, 0), (7, 3)),
        ((7, 9), (7, 5)),
        ((2, 2), (8, 8)),
        ((9, 1), (0, 7)),
    ];
    for kind in AlgorithmKind::ALL {
        assert!(
            drain_messages(kind, &pattern, &pairs),
            "{kind:?} failed on the paper layout"
        );
    }
}

#[test]
fn random_patterns_all_pairs_reachable() {
    // Deliver a pseudo-random batch of messages across several random
    // patterns with a spread of algorithms — a delivery guarantee sweep.
    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(31);
    for trial in 0..3usize {
        let pattern = random_pattern(&mesh, 8, &mut rng).unwrap();
        let healthy: Vec<_> = pattern.healthy_nodes(&mesh).collect();
        let pairs: Vec<EndpointPair> = (0..10usize)
            .map(|i| {
                let s = healthy[(i * 7 + trial) % healthy.len()];
                let d = healthy[(i * 13 + trial * 5 + 1) % healthy.len()];
                let (cs, cd) = (mesh.coord(s), mesh.coord(d));
                ((cs.x, cs.y), (cd.x, cd.y))
            })
            .filter(|(a, b)| a != b)
            .collect();
        for kind in [
            AlgorithmKind::PHop,
            AlgorithmKind::Nbc,
            AlgorithmKind::Duato,
            AlgorithmKind::BouraFaultTolerant,
            AlgorithmKind::FullyAdaptive,
        ] {
            assert!(
                drain_messages(kind, &pattern, &pairs),
                "{kind:?} lost messages on random pattern {trial}"
            );
        }
    }
}

#[test]
fn detours_are_bounded() {
    // Crossing a block must not blow the hop count past distance +
    // ring circumference (delivery time bounds the detour length).
    let mesh = Mesh::square(10);
    let pattern =
        FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 5))]).unwrap();
    let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
    let algo = build_algorithm(AlgorithmKind::NHop, ctx.clone(), VcConfig::paper());
    let mut wl = Workload::paper_uniform(0.0);
    wl.message_length = 10;
    let mut sim = Simulator::new(algo, ctx, wl, SimConfig::quick());
    let id = sim.inject_message(mesh.node(3, 4), mesh.node(8, 4));
    assert!(sim.run_until_drained(1_000));
    assert!(sim.is_delivered(id));
    // Uncontended: cycles ≈ hops + length; hops ≤ dist(5) + ring(12) + slack.
    assert!(
        sim.cycle() < (5 + 12 + 10 + 15) as u64,
        "took {}",
        sim.cycle()
    );
}
