//! Golden *shape* tests: the paper's headline claims, asserted on
//! quick-scale reruns of the figure harness. These are the regression
//! gates for the reproduction — if a change flips who wins or which way a
//! trend points, these fail.
//!
//! Quick scale is noisy, so every assertion here is a robust ordering (or
//! a coarse ratio), not a point value.

use wormsim_experiments::{
    fig1_saturation_throughput, fig3_vc_utilization, fig4_throughput_vs_faults,
    fig5_latency_vs_faults, fig6_fring_traffic, ExperimentConfig, Scale,
};

fn cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(Scale::Quick);
    // Enough cycles for stable orderings, small enough for CI.
    cfg.sim.warmup_cycles = 1_000;
    cfg.sim.measure_cycles = 4_000;
    cfg.fault_patterns = 2;
    cfg
}

/// The fault-case figures need longer windows before the hop-based
/// schemes' degradation fully develops; still ~1 minute of CI.
fn mid_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(Scale::Quick);
    cfg.sim.warmup_cycles = 3_000;
    cfg.sim.measure_cycles = 9_000;
    cfg.fault_patterns = 3;
    cfg
}

#[test]
fn fig1_throughput_tracks_offered_below_saturation() {
    let fig = fig1_saturation_throughput(&cfg());
    let t = &fig.tables[0];
    // At λ=0.001 every algorithm delivers ≈ 0.1 flits/node/cycle.
    for col in &t.columns {
        let v = t.get("0.0010", col).unwrap();
        assert!((v - 0.1).abs() < 0.02, "{col}: {v}");
    }
    // Saturation: no algorithm exceeds the ~0.26 bisection ceiling, and
    // none collapses below 0.15 fault-free.
    for col in &t.columns {
        let v = t.get("0.0251", col).unwrap();
        assert!((0.15..0.30).contains(&v), "{col} saturates at {v}");
    }
}

#[test]
fn fig3_vc_usage_signatures() {
    let fig = fig3_vc_utilization(&cfg());
    let a = &fig.tables[0]; // panel a
                            // PHop: class 0 dominates class 10 by a wide margin.
    let phop0 = a.get("VC0", "PHop").unwrap();
    let phop10 = a.get("VC10", "PHop").unwrap();
    assert!(
        phop0 > 4.0 * phop10.max(0.01),
        "PHop skew missing: VC0={phop0} VC10={phop10}"
    );
    // Free choice: Minimal-Adaptive's VC0 ≈ VC10 (within 40 %).
    let ma0 = a.get("VC0", "Minimal-Adaptive").unwrap();
    let ma10 = a.get("VC10", "Minimal-Adaptive").unwrap();
    assert!(
        (ma0 - ma10).abs() < 0.4 * ma0.max(ma10),
        "Minimal-Adaptive skew: VC0={ma0} VC10={ma10}"
    );
    // Pbc pushes usage into higher classes than PHop: its VC8 exceeds
    // PHop's VC8.
    let pbc8 = a.get("VC8", "Pbc").unwrap();
    let phop8 = a.get("VC8", "PHop").unwrap();
    assert!(pbc8 > phop8, "bonus cards should lift high-class usage");
    // Panel b: Duato's escape VCs (0,1) nearly idle vs its adaptive VCs.
    let b = &fig.tables[1];
    let esc = b.get("VC0", "Duato's routing").unwrap();
    let adaptive = b.get("VC10", "Duato's routing").unwrap();
    assert!(
        adaptive > 5.0 * esc.max(0.001),
        "Duato escape should be idle: esc={esc} adaptive={adaptive}"
    );
}

#[test]
fn fig4_fault_degradation_and_winners() {
    let fig = fig4_throughput_vs_faults(&mid_cfg());
    let t = &fig.tables[0];
    for col in &t.columns {
        let t0 = t.get("0%", col).unwrap();
        let t10 = t.get("10%", col).unwrap();
        assert!(
            t10 < t0,
            "{col}: throughput must degrade with faults ({t0} → {t10})"
        );
    }
    // PHop is the worst at 10 % faults — by a clear margin.
    let phop = t.get("10%", "PHop").unwrap();
    for col in t.columns.iter().filter(|c| c.as_str() != "PHop") {
        let v = t.get("10%", col).unwrap();
        assert!(
            phop < v,
            "PHop ({phop}) should trail {col} ({v}) at 10% faults"
        );
    }
    // The Duato-fortified bonus-card variants sit in the top half — up to
    // quick-scale noise. At this scale (3 fault sets, 9k measured cycles)
    // the non-PHop algorithms' 10 % throughputs span only ~6 % and
    // adjacent ranks differ by well under 1 %, inside run-to-run noise,
    // so a strict median cut would assert on a noise-dominated ordering.
    // The 2 % margin still fails on any real regression of the bonus-card
    // schemes while tolerating rank swaps between statistical ties.
    let mut at10: Vec<(&str, f64)> = t
        .columns
        .iter()
        .map(|c| (c.as_str(), t.get("10%", c).unwrap()))
        .collect();
    at10.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let median = at10[at10.len() / 2].1;
    for name in ["Duato-Nbc", "Duato-Pbc"] {
        let v = t.get("10%", name).unwrap();
        assert!(
            v >= 0.98 * median,
            "{name} ({v:.4}) below median ({median:.4}) by >2%; 10% ordering: {at10:?}"
        );
    }
}

#[test]
fn fig5_latency_grows_with_faults() {
    let fig = fig5_latency_vs_faults(&mid_cfg());
    let t = &fig.tables[0];
    // PHop is excluded: at short measurement windows its delivered-message
    // latency is dominated by survivorship (only unblocked messages finish
    // in time), so its curve is only meaningful at paper scale — where it
    // explodes to ~2 300 flit cycles (see EXPERIMENTS.md, Figure 5).
    for col in t.columns.iter().filter(|c| c.as_str() != "PHop") {
        let l0 = t.get("0%", col).unwrap();
        let l10 = t.get("10%", col).unwrap();
        assert!(
            l10 > l0,
            "{col}: latency must grow with faults ({l0} → {l10})"
        );
    }
}

#[test]
fn fig6_rings_become_hotspots() {
    let fig = fig6_fring_traffic(&cfg());
    let t = &fig.tables[0];
    // For every algorithm: the ring/other mean contrast must grow from the
    // fault-free to the faulty case, and the faulty peak sits on a ring.
    for base in [
        "PHop",
        "NHop",
        "Duato-Nbc",
        "Minimal-Adaptive",
        "Boura (Fault-Tolerant)",
    ] {
        let contrast = |case: &str| {
            let ring = t.get(&format!("{base} {case}"), "f-ring mean").unwrap();
            let other = t.get(&format!("{base} {case}"), "other mean").unwrap();
            ring / other.max(1e-9)
        };
        assert!(
            contrast("10%") > contrast("0%"),
            "{base}: ring contrast must grow with faults"
        );
        let ring_peak = t.get(&format!("{base} 10%"), "f-ring peak").unwrap();
        assert!(
            ring_peak > 99.0,
            "{base}: the busiest node should be on an f-ring"
        );
    }
}
