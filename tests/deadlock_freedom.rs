//! Deadlock-freedom checks: provably deadlock-free algorithms must never
//! trip the engine watchdog; the class-ladder invariants hold end-to-end.

use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::{Coord, Mesh, Rect};
use wormsim_traffic::Workload;

fn run(kind: AlgorithmKind, pattern: FaultPattern, rate: f64, seed: u64) -> u64 {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(mesh, pattern));
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 9_000,
        // A tight watchdog: genuine deadlock-free behavior should survive it
        // at these (sub-saturation) loads.
        deadlock_timeout: 8_000,
        seed,
        ..SimConfig::paper()
    };
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(rate), cfg);
    sim.run().recoveries
}

/// Roster entries whose deadlock freedom is theory-backed.
fn deadlock_free_roster() -> Vec<AlgorithmKind> {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    AlgorithmKind::ALL
        .into_iter()
        .filter(|&k| build_algorithm(k, ctx.clone(), VcConfig::paper()).is_deadlock_free())
        .collect()
}

#[test]
fn roster_classification_matches_theory() {
    let df = deadlock_free_roster();
    // Hop-based, bonus-card, Duato-based, and Boura algorithms are
    // deadlock-free; the free-choice adaptives are not.
    assert!(df.contains(&AlgorithmKind::PHop));
    assert!(df.contains(&AlgorithmKind::NHop));
    assert!(df.contains(&AlgorithmKind::Pbc));
    assert!(df.contains(&AlgorithmKind::Nbc));
    assert!(df.contains(&AlgorithmKind::Duato));
    assert!(df.contains(&AlgorithmKind::DuatoPbc));
    assert!(df.contains(&AlgorithmKind::DuatoNbc));
    assert!(df.contains(&AlgorithmKind::BouraAdaptive));
    assert!(!df.contains(&AlgorithmKind::MinimalAdaptive));
    assert!(!df.contains(&AlgorithmKind::FullyAdaptive));
}

#[test]
fn no_recoveries_fault_free_moderate_load() {
    let mesh = Mesh::square(10);
    for kind in deadlock_free_roster() {
        let rec = run(kind, FaultPattern::fault_free(&mesh), 0.002, 11);
        assert_eq!(rec, 0, "{kind:?} recovered on a fault-free mesh");
    }
}

#[test]
fn no_recoveries_single_block_light_load() {
    // Light load: the f-ring detour channels (one shared VC per message
    // type) are a real bottleneck, so at higher loads waiters can starve
    // past any watchdog threshold without an actual deadlock — exactly the
    // f-ring hotspot effect the paper's §5.2 studies. Below that regime,
    // provably deadlock-free algorithms must never trip the watchdog.
    let mesh = Mesh::square(10);
    let pattern =
        FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))]).unwrap();
    for kind in deadlock_free_roster() {
        let rec = run(kind, pattern.clone(), 0.0008, 13);
        assert_eq!(rec, 0, "{kind:?} recovered around a single block");
    }
}

#[test]
fn free_choice_algorithms_survive_with_watchdog() {
    // Minimal-/Fully-Adaptive are not provably deadlock-free; the run must
    // still complete and deliver (the watchdog is the safety net).
    let mesh = Mesh::square(10);
    for kind in [AlgorithmKind::MinimalAdaptive, AlgorithmKind::FullyAdaptive] {
        let ctx = Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let cfg = SimConfig {
            warmup_cycles: 500,
            measure_cycles: 4_500,
            ..SimConfig::paper()
        };
        let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(0.004), cfg);
        let r = sim.run();
        assert!(r.throughput.messages_delivered() > 500, "{kind:?}");
    }
}

#[test]
fn phop_header_classes_strictly_increase_along_paths() {
    // Walk routing decisions directly: on a minimal path the PHop class
    // ladder (VC index) must strictly increase hop over hop.
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::PHop, ctx, VcConfig::paper());
    let (src, dest) = (mesh.node(0, 3), mesh.node(9, 8));
    let mut st = algo.init_message(src, dest);
    let mut cur = src;
    let mut last_vc: Option<u8> = None;
    while cur != dest {
        let cands = algo.route(cur, &mut st);
        let hop = cands.iter().next().expect("minimal candidate");
        let vc = hop.preferred.iter().next().expect("one VC per class");
        if let Some(prev) = last_vc {
            assert!(vc > prev, "class ladder must strictly increase");
        }
        last_vc = Some(vc);
        let next = mesh.neighbor(cur, hop.dir).unwrap();
        algo.on_hop(cur, next, hop.dir, vc, &mut st);
        cur = next;
    }
}

#[test]
fn nhop_class_never_exceeds_bound_along_paths() {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::NHop, ctx, VcConfig::paper());
    for (s, d) in [((0, 0), (9, 9)), ((9, 0), (0, 9)), ((1, 8), (8, 1))] {
        let (src, dest) = (mesh.node(s.0, s.1), mesh.node(d.0, d.1));
        let mut st = algo.init_message(src, dest);
        let mut cur = src;
        while cur != dest {
            let cands = algo.route(cur, &mut st);
            let hop = cands.iter().next().unwrap();
            let vc = hop.preferred.iter().next().unwrap();
            // NHop uses 10 classes × 2 VCs → base VCs 0..20.
            assert!(vc < 20, "vc {vc} outside NHop class space");
            let next = mesh.neighbor(cur, hop.dir).unwrap();
            algo.on_hop(cur, next, hop.dir, vc, &mut st);
            cur = next;
        }
        assert!(st.negative_hops <= 9);
    }
}
