//! # wormsim-traffic
//!
//! Synthetic workload generation for the simulator.
//!
//! The paper (§5) drives every experiment with **uniform traffic** —
//! each healthy processor sends to every other healthy node with equal
//! probability — with message inter-arrival times drawn from an
//! **exponential distribution** and fixed 100-flit messages. This crate
//! implements that workload plus the standard extensions (transpose,
//! bit-reversal, hotspot) used by the ablation benches.
//!
//! ```
//! use wormsim_topology::Mesh;
//! use wormsim_traffic::{Injector, DestinationSampler, TrafficPattern};
//! use rand::SeedableRng;
//!
//! let mesh = Mesh::square(10);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let healthy: Vec<_> = mesh.nodes().collect();
//! let mut sampler = DestinationSampler::new(TrafficPattern::Uniform, &mesh, healthy);
//! let dest = sampler.sample(mesh.node(0, 0), &mut rng).unwrap();
//! assert_ne!(dest, mesh.node(0, 0));
//!
//! let mut inj = Injector::new(0.01); // 0.01 messages/node/cycle
//! let due = (0..10_000u64).map(|c| inj.poll(c) as u64).sum::<u64>();
//! assert!(due > 50 && due < 200); // ~100 expected
//! ```

use rand::Rng;
use serde::{Deserialize, Serialize};
use wormsim_topology::{Mesh, NodeId};

/// The spatial traffic patterns available to workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every healthy node is an equally likely destination (paper §5).
    Uniform,
    /// Matrix transpose: `(x, y) → (y, x)`; falls back to uniform when the
    /// image is the source itself or unusable.
    Transpose,
    /// Bit-reversal on the node index; uniform fallback as above.
    BitReversal,
    /// A fraction `permille`/1000 of traffic targets the designated hotspot
    /// node; the rest is uniform.
    Hotspot {
        /// Hotspot node id.
        node: NodeId,
        /// Per-mille of traffic aimed at the hotspot.
        permille: u16,
    },
}

/// Per-node Poisson message source: inter-arrival gaps are exponential with
/// mean `1/rate` (implemented as `-ln(U)/rate`), so the arrival process has
/// `rate` messages per cycle on average.
#[derive(Clone, Debug)]
pub struct Injector {
    rate: f64,
    /// Absolute time of the next arrival, in cycles.
    next: f64,
    /// Lazily initialized on the first poll so that construction order
    /// doesn't consume randomness.
    primed: bool,
}

impl Injector {
    /// A source generating `rate` messages per cycle (0 disables it).
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        Injector {
            rate,
            next: 0.0,
            primed: false,
        }
    }

    /// The generation rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of messages due at cycle `now`. Uses a thread-free xorshift
    /// seeded from the arrival index so the stream is deterministic per
    /// injector... messages are due when their arrival time ≤ `now`.
    pub fn poll(&mut self, now: u64) -> usize {
        self.poll_with(now, &mut DefaultGap)
    }

    /// As [`Injector::poll`] but drawing uniform variates from `rng`.
    pub fn poll_rng<R: Rng>(&mut self, now: u64, rng: &mut R) -> usize {
        struct G<'a, R: Rng>(&'a mut R);
        impl<R: Rng> GapSource for G<'_, R> {
            fn uniform(&mut self) -> f64 {
                self.0.gen_range(1e-12..1.0)
            }
        }
        self.poll_with(now, &mut G(rng))
    }

    fn poll_with(&mut self, now: u64, src: &mut dyn GapSource) -> usize {
        if self.rate <= 0.0 {
            return 0;
        }
        if !self.primed {
            self.primed = true;
            self.next = -src.uniform().ln() / self.rate;
        }
        let mut due = 0;
        let now = now as f64;
        while self.next <= now {
            due += 1;
            self.next += -src.uniform().ln() / self.rate;
        }
        due
    }
}

trait GapSource {
    fn uniform(&mut self) -> f64;
}

/// Deterministic low-discrepancy fallback used when no RNG is supplied
/// (golden-ratio sequence — adequate for doc examples and smoke tests).
struct DefaultGap;

impl GapSource for DefaultGap {
    fn uniform(&mut self) -> f64 {
        use std::cell::Cell;
        thread_local! { static STATE: Cell<f64> = const { Cell::new(0.5) }; }
        STATE.with(|s| {
            let v = (s.get() + 0.618_033_988_749_895) % 1.0;
            s.set(v);
            v.max(1e-12)
        })
    }
}

/// Chooses destinations for new messages according to a pattern, restricted
/// to healthy nodes (paper §5: "messages are destined only to fault-free
/// nodes").
#[derive(Clone, Debug)]
pub struct DestinationSampler {
    pattern: TrafficPattern,
    healthy: Vec<NodeId>,
    usable: Vec<bool>,
    width: u16,
    height: u16,
}

impl DestinationSampler {
    /// Build a sampler over the given healthy node set.
    pub fn new(pattern: TrafficPattern, mesh: &Mesh, healthy: Vec<NodeId>) -> Self {
        assert!(!healthy.is_empty());
        let mut usable = vec![false; mesh.num_nodes()];
        for n in &healthy {
            usable[n.index()] = true;
        }
        if let TrafficPattern::Hotspot { node, .. } = pattern {
            assert!(usable[node.index()], "hotspot node must be healthy");
        }
        DestinationSampler {
            pattern,
            healthy,
            usable,
            width: mesh.width(),
            height: mesh.height(),
        }
    }

    /// Rebuild the sampler in place over a new healthy node set, reusing
    /// the existing `healthy`/`usable` allocations (no allocations when the
    /// mesh shape is unchanged — used by `Simulator::reset`).
    pub fn reset(
        &mut self,
        pattern: TrafficPattern,
        mesh: &Mesh,
        healthy: impl IntoIterator<Item = NodeId>,
    ) {
        self.healthy.clear();
        self.healthy.extend(healthy);
        assert!(!self.healthy.is_empty());
        self.usable.resize(mesh.num_nodes(), false);
        self.usable.iter_mut().for_each(|u| *u = false);
        for n in &self.healthy {
            self.usable[n.index()] = true;
        }
        if let TrafficPattern::Hotspot { node, .. } = pattern {
            assert!(self.usable[node.index()], "hotspot node must be healthy");
        }
        self.pattern = pattern;
        self.width = mesh.width();
        self.height = mesh.height();
    }

    /// The healthy node list.
    pub fn healthy(&self) -> &[NodeId] {
        &self.healthy
    }

    /// Sample a destination for a message from `src`; `None` when `src` is
    /// the only healthy node.
    pub fn sample<R: Rng>(&mut self, src: NodeId, rng: &mut R) -> Option<NodeId> {
        if self.healthy.len() < 2 {
            return None;
        }
        match self.pattern {
            TrafficPattern::Uniform => self.sample_uniform(src, rng),
            TrafficPattern::Transpose => {
                let x = src.0 % self.width;
                let y = src.0 / self.width;
                // (x,y) -> (y,x) requires the image to exist in a possibly
                // non-square mesh.
                let image = (y < self.width && x < self.height).then(|| NodeId(x * self.width + y));
                match image {
                    Some(t) if t != src && self.usable[t.index()] => Some(t),
                    _ => self.sample_uniform(src, rng),
                }
            }
            TrafficPattern::BitReversal => {
                let bits = (self.width as u32 * self.height as u32)
                    .next_power_of_two()
                    .trailing_zeros();
                let rev = (src.0 as u32).reverse_bits() >> (32 - bits);
                let image =
                    (rev < self.width as u32 * self.height as u32).then_some(NodeId(rev as u16));
                match image {
                    Some(t) if t != src && self.usable[t.index()] => Some(t),
                    _ => self.sample_uniform(src, rng),
                }
            }
            TrafficPattern::Hotspot { node, permille } => {
                if node != src && rng.gen_range(0..1000) < permille as u32 {
                    Some(node)
                } else {
                    self.sample_uniform(src, rng)
                }
            }
        }
    }

    fn sample_uniform<R: Rng>(&mut self, src: NodeId, rng: &mut R) -> Option<NodeId> {
        loop {
            let t = self.healthy[rng.gen_range(0..self.healthy.len())];
            if t != src {
                return Some(t);
            }
        }
    }
}

/// A complete workload description, serializable for experiment records.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Workload {
    /// Spatial pattern.
    pub pattern: TrafficPattern,
    /// Messages per node per cycle.
    pub rate: f64,
    /// Flits per message (paper: 100).
    pub message_length: u32,
}

impl Workload {
    /// The paper's workload at a given generation rate: uniform traffic,
    /// 100-flit messages.
    pub fn paper_uniform(rate: f64) -> Self {
        Workload {
            pattern: TrafficPattern::Uniform,
            rate,
            message_length: 100,
        }
    }

    /// Offered load in flits per node per cycle.
    pub fn offered_flit_load(&self) -> f64 {
        self.rate * self.message_length as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mesh() -> Mesh {
        Mesh::square(10)
    }

    #[test]
    fn injector_rate_matches_mean() {
        let mut inj = Injector::new(0.02);
        let mut rng = SmallRng::seed_from_u64(9);
        let total: usize = (0..100_000u64).map(|c| inj.poll_rng(c, &mut rng)).sum();
        let expected = 0.02 * 100_000.0;
        assert!(
            (total as f64) > expected * 0.9 && (total as f64) < expected * 1.1,
            "got {total}, expected ≈ {expected}"
        );
    }

    #[test]
    fn injector_zero_rate_never_fires() {
        let mut inj = Injector::new(0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            (0..10_000u64)
                .map(|c| inj.poll_rng(c, &mut rng))
                .sum::<usize>(),
            0
        );
    }

    #[test]
    fn injector_gaps_are_exponential_ish() {
        // The variance of an exponential equals the squared mean; a
        // deterministic (constant-gap) source would have variance ~0.
        let mut inj = Injector::new(0.05);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut arrivals = Vec::new();
        for c in 0..200_000u64 {
            for _ in 0..inj.poll_rng(c, &mut rng) {
                arrivals.push(c as f64);
            }
        }
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!((mean - 20.0).abs() < 2.0, "mean gap {mean}");
        // Exponential: std ≈ mean (allow integer-quantization slack).
        assert!(
            var.sqrt() > mean * 0.8 && var.sqrt() < mean * 1.2,
            "std {}",
            var.sqrt()
        );
    }

    #[test]
    fn uniform_sampler_is_roughly_uniform_and_never_self() {
        let m = mesh();
        let healthy: Vec<_> = m.nodes().collect();
        let mut s = DestinationSampler::new(TrafficPattern::Uniform, &m, healthy);
        let mut rng = SmallRng::seed_from_u64(5);
        let src = m.node(3, 3);
        let mut counts = vec![0u32; m.num_nodes()];
        for _ in 0..99_000 {
            let d = s.sample(src, &mut rng).unwrap();
            assert_ne!(d, src);
            counts[d.index()] += 1;
        }
        assert_eq!(counts[src.index()], 0);
        // Each of the 99 other nodes expects ~1000 hits.
        for (i, &c) in counts.iter().enumerate() {
            if i != src.index() {
                assert!(c > 700 && c < 1300, "node {i} got {c}");
            }
        }
    }

    #[test]
    fn sampler_respects_fault_set() {
        let m = mesh();
        let healthy: Vec<_> = m.nodes().filter(|n| n.index() >= 50).collect();
        let mut s = DestinationSampler::new(TrafficPattern::Uniform, &m, healthy);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..5_000 {
            let d = s.sample(m.node(5, 7), &mut rng).unwrap();
            assert!(d.index() >= 50);
        }
    }

    #[test]
    fn transpose_maps_coordinates() {
        let m = mesh();
        let healthy: Vec<_> = m.nodes().collect();
        let mut s = DestinationSampler::new(TrafficPattern::Transpose, &m, healthy);
        let mut rng = SmallRng::seed_from_u64(7);
        let d = s.sample(m.node(2, 7), &mut rng).unwrap();
        assert_eq!(d, m.node(7, 2));
        // Diagonal nodes fall back to uniform (never self).
        let d = s.sample(m.node(4, 4), &mut rng).unwrap();
        assert_ne!(d, m.node(4, 4));
    }

    #[test]
    fn hotspot_bias() {
        let m = mesh();
        let hs = m.node(5, 5);
        let healthy: Vec<_> = m.nodes().collect();
        let mut s = DestinationSampler::new(
            TrafficPattern::Hotspot {
                node: hs,
                permille: 300,
            },
            &m,
            healthy,
        );
        let mut rng = SmallRng::seed_from_u64(8);
        let hits = (0..10_000)
            .filter(|_| s.sample(m.node(0, 0), &mut rng) == Some(hs))
            .count();
        // 30% direct + ~0.7% uniform share.
        assert!(hits > 2_700 && hits < 3_500, "hotspot hits {hits}");
    }

    #[test]
    fn single_healthy_node_yields_none() {
        let m = mesh();
        let only = m.node(1, 1);
        let mut s = DestinationSampler::new(TrafficPattern::Uniform, &m, vec![only]);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(s.sample(only, &mut rng), None);
    }

    #[test]
    fn workload_offered_load() {
        let w = Workload::paper_uniform(0.005);
        assert_eq!(w.message_length, 100);
        assert!((w.offered_flit_load() - 0.5).abs() < 1e-12);
    }
}
