//! The two hop-based fully adaptive disciplines: Positive-Hop and
//! Negative-Hop (paper §3, ref [9]).
//!
//! Both provide minimal fully adaptive routing whose deadlock freedom comes
//! from messages climbing a ladder of buffer classes:
//!
//! - **PHop**: a message that has taken `i` hops occupies a class-`i`
//!   buffer. Classes strictly increase along any path, so the class graph
//!   is acyclic. Needs `n(k−1)+1` classes — 19 on a 10×10 mesh.
//! - **NHop**: the mesh is checkerboard-colored; a hop from a higher to a
//!   lower label is *negative*, and a message that has taken `i` negative
//!   hops uses class-`i` channels for its next hop. Needs
//!   `1 + ⌊n(k−1)/2⌋` classes — 10 on a 10×10 mesh, so with the same VC
//!   budget each class gets 2 VCs (paper §5: "12 classes … 2 virtual
//!   channels" arithmetic normalized to 10 × 2 + 4 BC = 24).

use crate::context::RoutingContext;
use crate::state::{Candidates, MessageState, VcMask};
use crate::traits::BaseRouting;
use std::sync::Arc;
use wormsim_topology::{Direction, NodeId};

/// Positive-Hop routing: buffer class = hops taken.
pub struct PHop {
    ctx: Arc<RoutingContext>,
    /// Number of hop classes (`diameter + 1`).
    classes: u8,
}

impl PHop {
    /// Build with `budget` base VCs; requires `budget ≥ diameter + 1`.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        let classes = (ctx.mesh().diameter() + 1) as u8;
        assert!(
            budget >= classes,
            "PHop needs {} VCs (diameter+1), got {}",
            classes,
            budget
        );
        PHop { ctx, classes }
    }

    /// Number of hop classes.
    pub fn num_classes(&self) -> u8 {
        self.classes
    }

    /// The class the next hop must use, clamped to the top class (clamping
    /// only engages for messages lengthened past the diameter by f-ring
    /// detours; see DESIGN.md §3.3).
    fn next_class(&self, st: &MessageState) -> u8 {
        (st.normal_hops.min(self.classes as u16 - 1)) as u8
    }
}

impl BaseRouting for PHop {
    fn name(&self) -> &'static str {
        "PHop"
    }

    fn base_vcs(&self) -> u8 {
        self.classes
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mask = VcMask::bit(self.next_class(st));
        let mut out = Candidates::none();
        for dir in self.ctx.mesh().minimal_directions(node, st.dest).iter() {
            out.push_simple(dir, mask);
        }
        out
    }

    fn on_normal_hop(
        &self,
        _from: NodeId,
        _to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

/// Negative-Hop routing: buffer class = negative hops taken.
pub struct NHop {
    ctx: Arc<RoutingContext>,
    /// Number of negative-hop classes (`1 + ⌈diameter/2⌉`... computed from
    /// the mesh's checkerboard bound).
    classes: u8,
    /// VCs per class (`budget / classes`, paper: 2).
    vcs_per_class: u8,
}

impl NHop {
    /// Build with `budget` base VCs; requires `budget ≥ classes`. Extra
    /// budget is spread evenly: `vcs_per_class = budget / classes`.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        let classes = (ctx.mesh().max_negative_hops_bound() + 1) as u8;
        assert!(
            budget >= classes,
            "NHop needs {} VCs, got {}",
            classes,
            budget
        );
        let vcs_per_class = budget / classes;
        NHop {
            ctx,
            classes,
            vcs_per_class,
        }
    }

    /// Number of negative-hop classes.
    pub fn num_classes(&self) -> u8 {
        self.classes
    }

    /// VCs allotted to each class.
    pub fn vcs_per_class(&self) -> u8 {
        self.vcs_per_class
    }

    fn class_mask(&self, class: u8) -> VcMask {
        let lo = class * self.vcs_per_class;
        VcMask::range(lo, lo + self.vcs_per_class - 1)
    }

    fn next_class(&self, st: &MessageState) -> u8 {
        st.negative_hops.min(self.classes - 1)
    }
}

impl BaseRouting for NHop {
    fn name(&self) -> &'static str {
        "NHop"
    }

    fn base_vcs(&self) -> u8 {
        self.classes * self.vcs_per_class
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mask = self.class_mask(self.next_class(st));
        let mut out = Candidates::none();
        for dir in self.ctx.mesh().minimal_directions(node, st.dest).iter() {
            out.push_simple(dir, mask);
        }
        out
    }

    fn on_normal_hop(
        &self,
        from: NodeId,
        to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
        let mesh = self.ctx.mesh();
        if mesh.color(from) > mesh.color(to) {
            st.negative_hops = (st.negative_hops + 1).min(self.classes - 1);
        }
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_fault::FaultPattern;
    use wormsim_topology::Mesh;

    fn ctx() -> Arc<RoutingContext> {
        let mesh = Mesh::square(10);
        Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ))
    }

    #[test]
    fn phop_class_counts() {
        let p = PHop::new(ctx(), 20);
        assert_eq!(p.num_classes(), 19); // paper: n(k-1)+1 = 19
        assert_eq!(p.base_vcs(), 19);
    }

    #[test]
    #[should_panic(expected = "PHop needs")]
    fn phop_insufficient_budget_panics() {
        PHop::new(ctx(), 10);
    }

    #[test]
    fn phop_uses_class_equal_to_hops() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let p = PHop::new(c, 20);
        let mut st = p.init_message(mesh.node(0, 0), mesh.node(3, 3));
        let cands = p.candidates(mesh.node(0, 0), &mut st);
        assert_eq!(cands.len(), 2);
        for h in cands.iter() {
            assert_eq!(h.preferred, VcMask::bit(0));
            assert!(h.fallback.is_empty());
        }
        // After two hops the class is 2.
        p.on_normal_hop(
            mesh.node(0, 0),
            mesh.node(1, 0),
            Direction::East,
            0,
            &mut st,
        );
        p.on_normal_hop(
            mesh.node(1, 0),
            mesh.node(2, 0),
            Direction::East,
            1,
            &mut st,
        );
        let cands = p.candidates(mesh.node(2, 0), &mut st);
        for h in cands.iter() {
            assert_eq!(h.preferred, VcMask::bit(2));
        }
    }

    #[test]
    fn phop_class_clamps_at_top() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let p = PHop::new(c, 20);
        let mut st = p.init_message(mesh.node(0, 0), mesh.node(9, 9));
        st.normal_hops = 40; // pretend heavy detours
        let cands = p.candidates(mesh.node(5, 5), &mut st);
        for h in cands.iter() {
            assert_eq!(h.preferred, VcMask::bit(18));
        }
    }

    #[test]
    fn nhop_class_counts() {
        let n = NHop::new(ctx(), 20);
        assert_eq!(n.num_classes(), 10); // paper: 1 + floor(n(k-1)/2) = 10
        assert_eq!(n.vcs_per_class(), 2);
        assert_eq!(n.base_vcs(), 20);
    }

    #[test]
    fn nhop_counts_only_negative_hops() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let n = NHop::new(c, 20);
        let mut st = n.init_message(mesh.node(0, 0), mesh.node(9, 9));
        // (0,0) has color 0 → first hop (to color 1) is non-negative.
        n.on_normal_hop(
            mesh.node(0, 0),
            mesh.node(1, 0),
            Direction::East,
            0,
            &mut st,
        );
        assert_eq!(st.negative_hops, 0);
        // (1,0) color 1 → (2,0) color 0 is negative.
        n.on_normal_hop(
            mesh.node(1, 0),
            mesh.node(2, 0),
            Direction::East,
            0,
            &mut st,
        );
        assert_eq!(st.negative_hops, 1);
        let cands = n.candidates(mesh.node(2, 0), &mut st);
        for h in cands.iter() {
            // Class 1 → VCs {2,3}.
            assert_eq!(h.preferred, VcMask::range(2, 3));
        }
    }

    #[test]
    fn nhop_minimal_directions_only() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let n = NHop::new(c, 20);
        let mut st = n.init_message(mesh.node(5, 5), mesh.node(2, 5));
        let cands = n.candidates(mesh.node(5, 5), &mut st);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::West);
    }

    #[test]
    fn nhop_negative_bound_on_minimal_paths() {
        // Walk an actual minimal path and verify the class never exceeds
        // the class count.
        let c = ctx();
        let mesh = c.mesh().clone();
        let n = NHop::new(c, 20);
        let (src, dest) = (mesh.node(1, 0), mesh.node(9, 9));
        let mut st = n.init_message(src, dest);
        let mut cur = src;
        while cur != dest {
            let d = mesh.minimal_directions(cur, dest).iter().next().unwrap();
            let next = mesh.neighbor(cur, d).unwrap();
            n.on_normal_hop(cur, next, d, 0, &mut st);
            cur = next;
        }
        assert!(st.negative_hops < n.num_classes());
    }
}
