//! Minimal-Adaptive and Fully-Adaptive routing (paper §3, §5).
//!
//! Both choose freely among all their virtual channels ("completely free in
//! choosing the virtual channels" — the paper's first category), so neither
//! is provably deadlock-free; the engine's watchdog provides Disha-style
//! recovery and reports how often it fired.
//!
//! Fully-Adaptive additionally *misroutes*: when the header has been blocked
//! for a while on all shortest-path channels it may take a non-minimal hop,
//! at most `misroute_limit` times (paper §5: "the number of the misroutes is
//! limited and is set to 10").

use crate::context::RoutingContext;
use crate::state::{Candidates, MessageState, VcMask};
use crate::traits::BaseRouting;
use std::sync::Arc;
use wormsim_topology::{Direction, NodeId, ALL_DIRECTIONS};

/// Minimal adaptive routing: any shortest-path direction, any VC.
pub struct MinimalAdaptive {
    ctx: Arc<RoutingContext>,
    vcs: u8,
}

impl MinimalAdaptive {
    /// Build with `budget` freely usable VCs.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        assert!(budget >= 1);
        MinimalAdaptive { ctx, vcs: budget }
    }
}

impl BaseRouting for MinimalAdaptive {
    fn name(&self) -> &'static str {
        "Minimal-Adaptive"
    }

    fn base_vcs(&self) -> u8 {
        self.vcs
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mask = VcMask::range(0, self.vcs - 1);
        let mut out = Candidates::none();
        for dir in self.ctx.mesh().minimal_directions(node, st.dest).iter() {
            out.push_simple(dir, mask);
        }
        out
    }

    fn on_normal_hop(
        &self,
        _from: NodeId,
        _to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
    }

    fn is_deadlock_free(&self) -> bool {
        false
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

/// Fully adaptive routing with bounded misrouting.
pub struct FullyAdaptive {
    ctx: Arc<RoutingContext>,
    vcs: u8,
    misroute_limit: u8,
    /// Cycles a header must be blocked before misrouting unlocks.
    misroute_patience: u32,
}

impl FullyAdaptive {
    /// Build with `budget` freely usable VCs and the paper's misroute cap.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8, misroute_limit: u8) -> Self {
        assert!(budget >= 1);
        FullyAdaptive {
            ctx,
            vcs: budget,
            misroute_limit,
            misroute_patience: 8,
        }
    }

    /// Override the blocked-cycles threshold before misrouting unlocks.
    pub fn with_patience(mut self, cycles: u32) -> Self {
        self.misroute_patience = cycles;
        self
    }

    /// The configured misroute cap.
    pub fn misroute_limit(&self) -> u8 {
        self.misroute_limit
    }
}

impl BaseRouting for FullyAdaptive {
    fn name(&self) -> &'static str {
        "Fully-Adaptive"
    }

    fn base_vcs(&self) -> u8 {
        self.vcs
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mesh = self.ctx.mesh();
        let mask = VcMask::range(0, self.vcs - 1);
        let minimal = mesh.minimal_directions(node, st.dest);
        let mut out = Candidates::none();
        for dir in minimal.iter() {
            out.push_simple(dir, mask);
        }
        // Misrouting unlocks only after sustained blocking, and never undoes
        // the immediately preceding hop (guards against trivial ping-pong
        // livelock; the global cap guarantees progress regardless).
        if st.wait_cycles >= self.misroute_patience && st.misroutes < self.misroute_limit {
            for dir in ALL_DIRECTIONS {
                if minimal.contains(dir) || Some(dir.opposite()) == st.last_dir {
                    continue;
                }
                if mesh.neighbor(node, dir).is_some() {
                    out.push_simple(dir, mask);
                }
            }
        }
        out
    }

    fn on_normal_hop(
        &self,
        from: NodeId,
        to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
        let mesh = self.ctx.mesh();
        if mesh.distance(to, st.dest) > mesh.distance(from, st.dest) {
            st.misroutes = st.misroutes.saturating_add(1);
        }
    }

    fn is_deadlock_free(&self) -> bool {
        false
    }

    fn recheck_wait(&self) -> Option<u32> {
        // The candidate set widens once a blocked header has waited out the
        // misroute patience; the engine must re-route it at that point even
        // though no VC it registered for has freed.
        Some(self.misroute_patience)
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_fault::FaultPattern;
    use wormsim_topology::Mesh;

    fn ctx() -> Arc<RoutingContext> {
        let mesh = Mesh::square(10);
        Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ))
    }

    #[test]
    fn minimal_adaptive_full_mask_minimal_dirs() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let a = MinimalAdaptive::new(c, 20);
        let mut st = a.init_message(mesh.node(2, 2), mesh.node(7, 8));
        let cands = a.candidates(mesh.node(2, 2), &mut st);
        assert_eq!(cands.len(), 2);
        for h in cands.iter() {
            assert_eq!(h.preferred, VcMask::range(0, 19));
        }
    }

    #[test]
    fn fully_adaptive_no_misroute_when_fresh() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let a = FullyAdaptive::new(c, 20, 10);
        let mut st = a.init_message(mesh.node(5, 5), mesh.node(9, 5));
        let cands = a.candidates(mesh.node(5, 5), &mut st);
        assert_eq!(cands.len(), 1); // East only
        assert_eq!(cands.iter().next().unwrap().dir, Direction::East);
    }

    #[test]
    fn fully_adaptive_misroutes_after_patience() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let a = FullyAdaptive::new(c, 20, 10).with_patience(4);
        let mut st = a.init_message(mesh.node(5, 5), mesh.node(9, 5));
        st.wait_cycles = 4;
        st.last_dir = Some(Direction::East);
        let cands = a.candidates(mesh.node(5, 5), &mut st);
        // East (minimal) + North + South; West excluded (undoes last hop
        // direction? last_dir=East → opposite=West excluded).
        assert_eq!(cands.len(), 3);
        assert!(cands.for_dir(Direction::West).is_none());
    }

    #[test]
    fn fully_adaptive_respects_misroute_cap() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let a = FullyAdaptive::new(c, 20, 2).with_patience(0);
        let mut st = a.init_message(mesh.node(5, 5), mesh.node(9, 5));
        st.misroutes = 2;
        st.wait_cycles = 100;
        let cands = a.candidates(mesh.node(5, 5), &mut st);
        assert_eq!(cands.len(), 1); // back to minimal only
    }

    #[test]
    fn fully_adaptive_counts_misroutes() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let a = FullyAdaptive::new(c, 20, 10);
        let mut st = a.init_message(mesh.node(5, 5), mesh.node(9, 5));
        a.on_normal_hop(
            mesh.node(5, 5),
            mesh.node(5, 6),
            Direction::North,
            0,
            &mut st,
        );
        assert_eq!(st.misroutes, 1);
        a.on_normal_hop(
            mesh.node(5, 6),
            mesh.node(6, 6),
            Direction::East,
            0,
            &mut st,
        );
        assert_eq!(st.misroutes, 1); // East is productive here
    }

    #[test]
    fn boundary_node_misroute_dirs_stay_in_mesh() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let a = FullyAdaptive::new(c, 20, 10).with_patience(0);
        let mut st = a.init_message(mesh.node(0, 0), mesh.node(9, 0));
        st.wait_cycles = 10;
        let cands = a.candidates(mesh.node(0, 0), &mut st);
        for h in cands.iter() {
            assert!(mesh.neighbor(mesh.node(0, 0), h.dir).is_some());
        }
    }
}
