//! The routing traits the engine consumes, and the `Plain` (no-overlay)
//! adapter.

use crate::context::RoutingContext;
use crate::state::{Candidates, MessageState};
use wormsim_topology::{Direction, NodeId};

/// A complete routing algorithm as seen by the simulation engine.
///
/// The engine calls [`RoutingAlgorithm::route`] whenever a header flit sits
/// unrouted at the front of an input VC, tries to allocate one of the
/// returned candidate (direction, VC) pairs, and calls
/// [`RoutingAlgorithm::on_hop`] once the header wins allocation and moves.
///
/// `route` takes `&mut MessageState` because fault-tolerance overlays keep
/// per-message mode (f-ring traversal, wall-following) that is entered,
/// advanced, and exited during routing decisions. Implementations must be
/// *idempotent between hops*: calling `route` repeatedly without an
/// intervening `on_hop` must keep returning the same candidates.
pub trait RoutingAlgorithm: Send + Sync {
    /// The paper's display name for this algorithm.
    fn name(&self) -> &'static str;

    /// Total virtual channels per physical channel this algorithm assumes
    /// (base VCs + overlay VCs).
    fn num_vcs(&self) -> u8;

    /// Fresh routing state for a message from `src` to `dest`.
    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState;

    /// Candidate next hops for the message currently at `node`.
    /// An empty set means the message must wait this cycle.
    fn route(&self, node: NodeId, st: &mut MessageState) -> Candidates;

    /// Commit a hop: the header moved from `from` to `to` through direction
    /// `dir` on virtual channel `vc`. Updates class/bookkeeping state.
    fn on_hop(&self, from: NodeId, to: NodeId, dir: Direction, vc: u8, st: &mut MessageState);

    /// Whether the algorithm is provably deadlock-free under the paper's
    /// assumptions (used by tests: such algorithms must show zero watchdog
    /// recoveries).
    fn is_deadlock_free(&self) -> bool;

    /// Whether `vc` belongs to the fault-tolerance overlay (e.g. a BC ring
    /// VC) rather than the base discipline. The engine uses this to count
    /// detour hops. Default: no overlay.
    fn is_overlay_vc(&self, vc: u8) -> bool {
        let _ = vc;
        false
    }

    /// A blocked header's candidate set is stable between hops (`route` is
    /// idempotent), so the engine re-arbitrates it only when a VC it can
    /// use frees. If the set can additionally *widen* once
    /// `MessageState::wait_cycles` reaches a threshold (Fully-Adaptive's
    /// misroute patience), return that threshold so the engine forces one
    /// re-route at exactly that point. Default: the set never widens while
    /// blocked.
    fn recheck_wait(&self) -> Option<u32> {
        None
    }

    /// The routing context this instance is bound to.
    fn context(&self) -> &RoutingContext;
}

/// A *base* routing discipline: produces candidates assuming the fault
/// handling is someone else's job. The Boppana–Chalasani overlay (or the
/// [`Plain`] adapter) turns a base into a full [`RoutingAlgorithm`].
///
/// Contract: `candidates` may assume the message is **not** blocked by
/// faults (the wrapper has already checked); it must still only propose
/// directions whose neighbor exists. The wrapper filters out candidates
/// leading into faulty nodes.
pub trait BaseRouting: Send + Sync {
    /// Display name of the fortified algorithm.
    fn name(&self) -> &'static str;

    /// Number of VCs the base discipline uses (excludes overlay VCs).
    fn base_vcs(&self) -> u8;

    /// Initialize base-specific state fields (bonus cards etc.).
    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState;

    /// Candidates for a normal-mode hop at `node`.
    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates;

    /// Commit bookkeeping for a normal-mode hop.
    fn on_normal_hop(
        &self,
        from: NodeId,
        to: NodeId,
        dir: Direction,
        vc: u8,
        st: &mut MessageState,
    );

    /// Whether the base discipline is provably deadlock-free.
    fn is_deadlock_free(&self) -> bool;

    /// Base-discipline counterpart of
    /// [`RoutingAlgorithm::recheck_wait`]; wrappers delegate to it.
    fn recheck_wait(&self) -> Option<u32> {
        None
    }

    /// The bound routing context.
    fn context(&self) -> &RoutingContext;
}

/// Why [`greedy_trace`] did not reach the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The algorithm offered no candidate hop at `at` after `hops` hops.
    /// For a correct algorithm on a connected healthy subgraph this means
    /// a routing-table bug, not a transient condition.
    Stuck {
        /// Node where the walk ran out of candidates.
        at: NodeId,
        /// Hops completed before getting stuck.
        hops: u32,
    },
    /// The walk exceeded `budget` hops without arriving (livelock).
    HopBudgetExceeded {
        /// The exhausted hop budget.
        budget: u32,
    },
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Stuck { at, hops } => {
                write!(f, "no candidates at {at:?} after {hops} hops")
            }
            TraceError::HopBudgetExceeded { budget } => {
                write!(f, "exceeded {budget} hops without arriving")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Walk a message from `src` to `dest`, always taking the algorithm's
/// first candidate direction on its lowest permitted VC, and return the
/// hop count. A connectivity/livelock diagnostic for tests and tools:
/// instead of panicking mid-walk, a stuck or non-terminating walk comes
/// back as a structured [`TraceError`].
pub fn greedy_trace(
    algo: &dyn RoutingAlgorithm,
    src: NodeId,
    dest: NodeId,
    budget: u32,
) -> Result<u32, TraceError> {
    let mesh = algo.context().mesh();
    let mut st = algo.init_message(src, dest);
    let mut cur = src;
    let mut hops = 0u32;
    while cur != dest {
        if hops >= budget {
            return Err(TraceError::HopBudgetExceeded { budget });
        }
        let cands = algo.route(cur, &mut st);
        let Some(hop) = cands.iter().next() else {
            return Err(TraceError::Stuck { at: cur, hops });
        };
        let mask = if hop.preferred.is_empty() {
            hop.fallback
        } else {
            hop.preferred
        };
        let vc = mask.iter().next().unwrap_or(0);
        let Some(next) = mesh.neighbor(cur, hop.dir) else {
            // An off-mesh candidate is as dead an end as no candidate.
            return Err(TraceError::Stuck { at: cur, hops });
        };
        algo.on_hop(cur, next, hop.dir, vc, &mut st);
        cur = next;
        hops += 1;
    }
    Ok(hops)
}

/// Adapter that runs a base discipline with **no** fault-tolerance overlay.
/// Used for the Boura fault-tolerant scheme (which does its own fault
/// handling via labeling) and for fault-free ablation runs.
pub struct Plain {
    base: Box<dyn BaseRouting>,
}

impl Plain {
    /// Wrap a base discipline.
    pub fn new(base: Box<dyn BaseRouting>) -> Self {
        Plain { base }
    }
}

impl RoutingAlgorithm for Plain {
    fn name(&self) -> &'static str {
        self.base.name()
    }

    fn num_vcs(&self) -> u8 {
        self.base.base_vcs()
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        self.base.init_message(src, dest)
    }

    fn route(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        self.base.candidates(node, st)
    }

    fn on_hop(&self, from: NodeId, to: NodeId, dir: Direction, vc: u8, st: &mut MessageState) {
        st.hops += 1;
        st.last_dir = Some(dir);
        st.wait_cycles = 0;
        self.base.on_normal_hop(from, to, dir, vc, st);
    }

    fn is_deadlock_free(&self) -> bool {
        self.base.is_deadlock_free()
    }

    fn recheck_wait(&self) -> Option<u32> {
        self.base.recheck_wait()
    }

    fn context(&self) -> &RoutingContext {
        self.base.context()
    }
}
