//! Precomputed route-geometry tables — the routing fast path.
//!
//! Every quantity a routing decision needs that is a pure function of
//! *(node, dest, fault pattern)* is computed once per [`GeometryTable`]
//! build and then served as an indexed lookup:
//!
//! - per **(node, dest)** pair: the healthy-minimal direction set, the
//!   blocked-by-fault flag, and — for blocked pairs — the complete
//!   Boppana–Chalasani ring-entry state ([`RingState`]: blocking region,
//!   ring position, traversal orientation, message type, entry distance).
//!   The BC orientation choice walks the whole f-ring, which made entering
//!   ring mode the most expensive single decision; with the table it is one
//!   array read. The message type is itself a function of the pair, so the
//!   conceptual (node, dest, type) index collapses to (node, dest).
//! - per **node**: the healthy direction set and the safe-labeled direction
//!   set (Boura fault-tolerant tiering).
//!
//! What stays in the algorithms is the *dynamic* part — VC-class mask
//! arithmetic (PHop/NHop ladders, bonus cards, Duato tiers) and the
//! misroute-patience widening — which depends on per-message state and is
//! pure integer arithmetic, already cheap.
//!
//! Tables carry a **context epoch**. [`GeometryTable::rebuild`] derives the
//! next table after an online `FaultPattern::extend`, recomputing only the
//! rows of *dirty* nodes: nodes whose own neighborhood was perturbed, nodes
//! whose ring membership changed (including region-id shifts from the
//! region re-sort), plus — via [`FRingSet::mark_touched_rings`] — every
//! node of any ring containing such a seed, because ring-entry computation
//! scans the entire ring. Per-node direction sets are recomputed
//! unconditionally (labeling changes are global and the arrays are O(N)).
//! `row_epoch` records when each node's rows were last recomputed, making
//! the incremental behavior observable in tests.
//!
//! The free `compute_*` functions are the single source of truth: the
//! table build calls them, and a table-less [`RoutingContext`] (see
//! [`RoutingContext::new_direct`]) calls them per query — the
//! table-equivalence property tests compare the two paths entry by entry.
//!
//! [`RoutingContext`]: crate::RoutingContext
//! [`RoutingContext::new_direct`]: crate::RoutingContext::new_direct

use crate::state::{MessageType, RingState};
use wormsim_fault::{FRingSet, FaultPattern, NodeLabeling, Orientation};
use wormsim_topology::{Coord, DirectionSet, Mesh, NodeId, Rect, ALL_DIRECTIONS};

/// The per-(node, dest) slice of the geometry table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PairEntry {
    /// Minimal directions toward the destination whose next node is
    /// fault-free.
    pub healthy_minimal: DirectionSet,
    /// Whether a message at this node bound for this destination is blocked
    /// by faults (paper §3: minimal progress exists but no healthy link).
    pub blocked: bool,
}

/// Dense per-context routing geometry (see the module docs).
#[derive(Clone, Debug)]
pub struct GeometryTable {
    /// Number of mesh nodes (row stride).
    n: usize,
    /// `pair[node * n + dest]`.
    pair: Vec<PairEntry>,
    /// `ring_entry[node * n + dest]`; `Some` exactly when the pair is
    /// blocked and the node sits on the blocking region's f-ring.
    ring_entry: Vec<Option<RingState>>,
    /// Per node: directions whose neighbor exists and is fault-free.
    healthy_dirs: Vec<DirectionSet>,
    /// Per node: directions whose neighbor exists, is fault-free, and is
    /// safe under the Boura–Das labeling.
    safe_dirs: Vec<DirectionSet>,
    /// Per node: epoch at which this node's pair rows were last recomputed.
    row_epoch: Vec<u64>,
    /// Context generation: 0 for a fresh build, +1 per incremental rebuild.
    epoch: u64,
}

impl GeometryTable {
    /// Build the full table for a context (epoch 0).
    pub fn build(
        mesh: &Mesh,
        pattern: &FaultPattern,
        rings: &FRingSet,
        labeling: &NodeLabeling,
    ) -> Self {
        let n = mesh.num_nodes();
        let mut t = GeometryTable {
            n,
            pair: vec![PairEntry::default(); n * n],
            ring_entry: vec![None; n * n],
            healthy_dirs: vec![DirectionSet::empty(); n],
            safe_dirs: vec![DirectionSet::empty(); n],
            row_epoch: vec![0; n],
            epoch: 0,
        };
        for node in mesh.nodes() {
            t.recompute_row(node, mesh, pattern, rings);
        }
        t.recompute_node_dirs(mesh, pattern, labeling);
        t
    }

    /// Derive the table for an extended pattern, recomputing only dirty
    /// rows (see the module docs for the invalidation rules). `old_*` is
    /// the generation this table was built against.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild(
        &self,
        mesh: &Mesh,
        old_pattern: &FaultPattern,
        old_rings: &FRingSet,
        new_pattern: &FaultPattern,
        new_rings: &FRingSet,
        new_labeling: &NodeLabeling,
    ) -> Self {
        let n = self.n;
        let mut seeds = vec![false; n];
        for node in mesh.nodes() {
            let perturbed = |v: NodeId| old_pattern.is_faulty(v) != new_pattern.is_faulty(v);
            seeds[node.index()] = perturbed(node)
                || ALL_DIRECTIONS
                    .iter()
                    .any(|&d| mesh.neighbor(node, d).is_some_and(perturbed))
                || new_rings.membership_changed(old_rings, node);
        }
        // Any region whose rectangle is not identical at the same index in
        // both generations seeds its entire ring (both generations): its
        // walk, side predicate, or identity changed.
        mark_changed_regions(old_pattern, old_rings, new_pattern, new_rings, &mut seeds);
        // Ring-entry state scans whole rings, so a seed anywhere on a ring
        // dirties all of it. Single pass; marks never cascade.
        let mut dirty = seeds.clone();
        old_rings.mark_touched_rings(&seeds, &mut dirty);
        new_rings.mark_touched_rings(&seeds, &mut dirty);

        let mut t = self.clone();
        t.epoch = self.epoch + 1;
        for node in mesh.nodes() {
            if dirty[node.index()] {
                t.recompute_row(node, mesh, new_pattern, new_rings);
                t.row_epoch[node.index()] = t.epoch;
            }
        }
        t.recompute_node_dirs(mesh, new_pattern, new_labeling);
        t
    }

    fn recompute_row(
        &mut self,
        node: NodeId,
        mesh: &Mesh,
        pattern: &FaultPattern,
        rings: &FRingSet,
    ) {
        let base = node.index() * self.n;
        for dest in mesh.nodes() {
            let healthy_minimal = compute_healthy_minimal(mesh, pattern, node, dest);
            let blocked = compute_blocked(mesh, pattern, node, dest);
            self.pair[base + dest.index()] = PairEntry {
                healthy_minimal,
                blocked,
            };
            self.ring_entry[base + dest.index()] = if blocked {
                compute_ring_entry(mesh, pattern, rings, node, dest)
            } else {
                None
            };
        }
    }

    fn recompute_node_dirs(
        &mut self,
        mesh: &Mesh,
        pattern: &FaultPattern,
        labeling: &NodeLabeling,
    ) {
        for node in mesh.nodes() {
            self.healthy_dirs[node.index()] = compute_healthy_dirs(mesh, pattern, node);
            self.safe_dirs[node.index()] = compute_safe_dirs(mesh, pattern, labeling, node);
        }
    }

    /// The (node, dest) entry.
    #[inline]
    pub fn pair(&self, node: NodeId, dest: NodeId) -> PairEntry {
        self.pair[node.index() * self.n + dest.index()]
    }

    /// The precomputed ring-entry state for a blocked (node, dest) pair.
    #[inline]
    pub fn ring_entry(&self, node: NodeId, dest: NodeId) -> Option<RingState> {
        self.ring_entry[node.index() * self.n + dest.index()]
    }

    /// Fused lookup for the fault-blocked check and the ring-entry state
    /// of one (node, dest) pair: the offset `node * n + dest` is computed
    /// once and both dense arrays are read at that index. The hot caller
    /// (ring-based routing's blocked → enter-ring sequence) otherwise
    /// performs the multiply twice back to back.
    #[inline]
    pub fn blocked_ring_entry(&self, node: NodeId, dest: NodeId) -> (bool, Option<RingState>) {
        let idx = node.index() * self.n + dest.index();
        (self.pair[idx].blocked, self.ring_entry[idx])
    }

    /// Directions from `node` with an in-mesh, fault-free neighbor.
    #[inline]
    pub fn healthy_dirs(&self, node: NodeId) -> DirectionSet {
        self.healthy_dirs[node.index()]
    }

    /// Directions from `node` whose neighbor is fault-free and safe-labeled.
    #[inline]
    pub fn safe_dirs(&self, node: NodeId) -> DirectionSet {
        self.safe_dirs[node.index()]
    }

    /// The context generation this table reflects.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch at which `node`'s pair rows were last recomputed (≤
    /// [`GeometryTable::epoch`]; strictly less for rows untouched by the
    /// latest rebuild).
    #[inline]
    pub fn row_epoch(&self, node: NodeId) -> u64 {
        self.row_epoch[node.index()]
    }
}

/// Seed-dirty every node of every ring whose region rectangle is not
/// present *identically at the same index* in both pattern generations.
/// Comparing by index (region ids are sort positions) also catches pure
/// re-numbering, where an unchanged rectangle ends up with a new id.
fn mark_changed_regions(
    old_pattern: &FaultPattern,
    old_rings: &FRingSet,
    new_pattern: &FaultPattern,
    new_rings: &FRingSet,
    seeds: &mut [bool],
) {
    let (old_r, new_r) = (old_pattern.regions(), new_pattern.regions());
    let common = old_r.len().min(new_r.len());
    let mut mark_ring = |rings: &FRingSet, r: usize| {
        for &v in rings.ring(r).nodes() {
            seeds[v.index()] = true;
        }
    };
    for r in 0..common {
        if old_r[r] != new_r[r] {
            mark_ring(old_rings, r);
            mark_ring(new_rings, r);
        }
    }
    for r in common..old_r.len() {
        mark_ring(old_rings, r);
    }
    for r in common..new_r.len() {
        mark_ring(new_rings, r);
    }
}

/// Minimal directions from `node` toward `dest` whose next node is
/// fault-free.
pub(crate) fn compute_healthy_minimal(
    mesh: &Mesh,
    pattern: &FaultPattern,
    node: NodeId,
    dest: NodeId,
) -> DirectionSet {
    mesh.minimal_directions(node, dest)
        .iter()
        .filter(|&d| {
            mesh.neighbor(node, d)
                .is_some_and(|v| !pattern.is_faulty(v))
        })
        .collect()
}

/// Whether a message at `node` heading to `dest` is blocked by faults.
pub(crate) fn compute_blocked(
    mesh: &Mesh,
    pattern: &FaultPattern,
    node: NodeId,
    dest: NodeId,
) -> bool {
    node != dest
        && !mesh.minimal_directions(node, dest).is_empty()
        && compute_healthy_minimal(mesh, pattern, node, dest).is_empty()
}

/// Directions from `node` with an in-mesh, fault-free neighbor.
pub(crate) fn compute_healthy_dirs(
    mesh: &Mesh,
    pattern: &FaultPattern,
    node: NodeId,
) -> DirectionSet {
    ALL_DIRECTIONS
        .into_iter()
        .filter(|&d| {
            mesh.neighbor(node, d)
                .is_some_and(|v| !pattern.is_faulty(v))
        })
        .collect()
}

/// Directions from `node` whose neighbor is fault-free **and** safe under
/// the Boura–Das labeling.
pub(crate) fn compute_safe_dirs(
    mesh: &Mesh,
    pattern: &FaultPattern,
    labeling: &NodeLabeling,
    node: NodeId,
) -> DirectionSet {
    ALL_DIRECTIONS
        .into_iter()
        .filter(|&d| {
            mesh.neighbor(node, d)
                .is_some_and(|v| !pattern.is_faulty(v) && labeling.is_safe(v))
        })
        .collect()
}

/// Which side of a fault region the BC detour should pass.
#[derive(Clone, Copy)]
enum Side {
    North,
    South,
    East,
    West,
}

#[inline]
fn on_side(c: Coord, rect: &Rect, side: Side) -> bool {
    match side {
        Side::North => c.y > rect.max.y,
        Side::South => c.y < rect.min.y,
        Side::East => c.x > rect.max.x,
        Side::West => c.x < rect.min.x,
    }
}

/// Whether a ring node offers an exit for a message to `dest` that entered
/// the ring at `entry_distance`: the destination itself, or strictly closer
/// than the entry point with healthy minimal progress available.
fn compute_is_exit(
    mesh: &Mesh,
    pattern: &FaultPattern,
    node: NodeId,
    dest: NodeId,
    entry_distance: u32,
) -> bool {
    node == dest
        || (mesh.distance(node, dest) < entry_distance
            && !compute_healthy_minimal(mesh, pattern, node, dest).is_empty())
}

/// The complete BC ring-entry state for a message blocked at `node` bound
/// for `dest`: the blocking region, the node's position on its f-ring, the
/// message type, the entry distance, and the traversal orientation chosen
/// by the geometric side rule (nearer side in ring steps, clockwise on
/// ties, nearest-usable-exit fallback on boundary chains). `None` when the
/// pair is not actually blocked or the node is not on the blocking ring
/// (never the case for reachable simulation states).
pub(crate) fn compute_ring_entry(
    mesh: &Mesh,
    pattern: &FaultPattern,
    rings: &FRingSet,
    node: NodeId,
    dest: NodeId,
) -> Option<RingState> {
    if !compute_blocked(mesh, pattern, node, dest) {
        return None;
    }
    // The blocking region: any minimal direction leads into a fault.
    let blocking = mesh.minimal_directions(node, dest).iter().find_map(|d| {
        let v = mesh.neighbor(node, d)?;
        pattern.is_faulty(v).then(|| pattern.region_of(v))?
    })?;
    let pos = rings.position_on(node, blocking)?;
    let (c, d) = (mesh.coord(node), mesh.coord(dest));
    let mtype = MessageType::classify((c.x, c.y), (d.x, d.y));
    let entry_distance = mesh.distance(node, dest);
    let orient = choose_orientation(
        mesh,
        pattern,
        rings,
        blocking,
        pos.pos,
        dest,
        entry_distance,
        mtype,
        c,
        d,
    );
    Some(RingState {
        ring: blocking,
        pos: pos.pos,
        orient,
        mtype,
        entry_distance,
    })
}

/// Pick the traversal orientation per the BC geometric rule: a row message
/// (WE/EW) goes around the side of the region its destination row lies on
/// (north/south), a column message around the east/west side its
/// destination column lies on. The choice depends only on geometry — never
/// on congestion — so all same-type messages bound for the same side rotate
/// the same way and their ring arcs stay within disjoint halves; this is
/// what keeps the single shared per-type BC VC deadlock-free (head-on
/// cycles cannot form).
#[allow(clippy::too_many_arguments)]
fn choose_orientation(
    mesh: &Mesh,
    pattern: &FaultPattern,
    rings: &FRingSet,
    ring_id: usize,
    pos: u16,
    dest: NodeId,
    entry_distance: u32,
    mtype: MessageType,
    c: Coord,
    d: Coord,
) -> Orientation {
    let rect = pattern.regions()[ring_id];
    // Which side of the region should the detour pass?
    let side = match mtype {
        MessageType::WE | MessageType::EW => {
            if d.y >= c.y {
                Side::North
            } else {
                Side::South
            }
        }
        MessageType::SN | MessageType::NS => {
            if d.x >= c.x {
                Side::East
            } else {
                Side::West
            }
        }
    };
    let ring = rings.ring(ring_id);
    // Steps to reach the wanted side in each rotation (chain ends make a
    // rotation unusable).
    let cost = |orient: Orientation| -> u32 {
        let mut p = pos;
        for step in 1..=ring.len() as u32 {
            match ring.next(p, orient) {
                None => return u32::MAX,
                Some((n, np)) => {
                    if on_side(mesh.coord(n), &rect, side) {
                        return step;
                    }
                    p = np;
                }
            }
        }
        u32::MAX
    };
    let (cw, ccw) = (
        cost(Orientation::Clockwise),
        cost(Orientation::Counterclockwise),
    );
    if cw != ccw {
        return if ccw < cw {
            Orientation::Counterclockwise
        } else {
            Orientation::Clockwise
        };
    }
    if cw != u32::MAX {
        return Orientation::Clockwise;
    }
    // Wanted side unreachable in either rotation (boundary chain): fall
    // back to the nearer usable exit.
    let exit_cost = |orient: Orientation| -> u32 {
        let mut p = pos;
        for step in 1..=ring.len() as u32 {
            match ring.next(p, orient) {
                None => return u32::MAX,
                Some((n, np)) => {
                    if compute_is_exit(mesh, pattern, n, dest, entry_distance) {
                        return step;
                    }
                    p = np;
                }
            }
        }
        u32::MAX
    };
    if exit_cost(Orientation::Counterclockwise) < exit_cost(Orientation::Clockwise) {
        Orientation::Counterclockwise
    } else {
        Orientation::Clockwise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingContext;
    use wormsim_topology::Direction;

    fn ctx_pair(pattern_coords: &[Coord]) -> (RoutingContext, RoutingContext) {
        let mesh = Mesh::square(10);
        let pattern = if pattern_coords.is_empty() {
            FaultPattern::fault_free(&mesh)
        } else {
            FaultPattern::from_faulty_coords(&mesh, pattern_coords.iter().copied()).unwrap()
        };
        (
            RoutingContext::new(mesh.clone(), pattern.clone()),
            RoutingContext::new_direct(mesh, pattern),
        )
    }

    #[test]
    fn table_matches_direct_queries() {
        let (tabled, direct) = ctx_pair(&[Coord::new(4, 4), Coord::new(4, 5), Coord::new(8, 1)]);
        let mesh = tabled.mesh().clone();
        for node in mesh.nodes() {
            for dest in mesh.nodes() {
                assert_eq!(
                    tabled.healthy_minimal_directions(node, dest),
                    direct.healthy_minimal_directions(node, dest),
                );
                assert_eq!(
                    tabled.blocked_by_fault(node, dest),
                    direct.blocked_by_fault(node, dest),
                );
                assert_eq!(tabled.ring_entry(node, dest), direct.ring_entry(node, dest));
                // The fused accessor must agree with its two components
                // on both paths (its direct variant guards the entry
                // computation behind the blocked check).
                let fused = tabled.blocked_ring_entry(node, dest);
                assert_eq!(fused, direct.blocked_ring_entry(node, dest));
                assert_eq!(fused.0, tabled.blocked_by_fault(node, dest));
                if fused.0 {
                    assert_eq!(fused.1, tabled.ring_entry(node, dest));
                }
            }
            assert_eq!(tabled.safe_directions(node), direct.safe_directions(node));
        }
    }

    #[test]
    fn blocked_pairs_have_ring_entries() {
        let (tabled, _) = ctx_pair(&[Coord::new(5, 5)]);
        let mesh = tabled.mesh().clone();
        let (node, dest) = (mesh.node(4, 5), mesh.node(9, 5));
        assert!(tabled.blocked_by_fault(node, dest));
        let rs = tabled.ring_entry(node, dest).unwrap();
        assert_eq!(rs.mtype, MessageType::WE);
        assert_eq!(rs.entry_distance, 5);
        assert_eq!(
            tabled.rings().ring(rs.ring).nodes()[rs.pos as usize],
            node,
            "stored ring position must locate the node"
        );
        // Unblocked pair → no entry.
        assert!(tabled.ring_entry(mesh.node(0, 0), dest).is_none());
    }

    #[test]
    fn incremental_rebuild_matches_fresh_and_keeps_far_rows() {
        let mesh = Mesh::square(10);
        let base = FaultPattern::from_faulty_coords(&mesh, [Coord::new(2, 2)]).unwrap();
        let ctx = RoutingContext::new(mesh.clone(), base.clone());
        assert_eq!(ctx.epoch(), 0);
        let ext = base.extend(&mesh, [Coord::new(7, 7)]).unwrap();
        let derived = ctx.with_pattern(ext.clone());
        let fresh = RoutingContext::new(mesh.clone(), ext);
        assert_eq!(derived.epoch(), 1);
        for node in mesh.nodes() {
            for dest in mesh.nodes() {
                assert_eq!(
                    derived.healthy_minimal_directions(node, dest),
                    fresh.healthy_minimal_directions(node, dest),
                );
                assert_eq!(derived.ring_entry(node, dest), fresh.ring_entry(node, dest));
            }
        }
        let t = derived.table().unwrap();
        // Rows near the new fault were recomputed at epoch 1; far rows kept
        // their epoch-0 stamp — the rebuild really is incremental.
        assert_eq!(t.row_epoch(mesh.node(7, 8)), 1);
        assert_eq!(t.row_epoch(mesh.node(0, 9)), 0);
        assert_eq!(t.row_epoch(mesh.node(2, 3)), 0, "untouched old ring stays");
    }

    #[test]
    fn healthy_and_safe_dirs() {
        let (tabled, _) = ctx_pair(&[Coord::new(5, 5)]);
        let mesh = tabled.mesh().clone();
        let t = tabled.table().unwrap();
        let hd = t.healthy_dirs(mesh.node(4, 5));
        assert!(!hd.contains(Direction::East), "east neighbor is faulty");
        assert!(hd.contains(Direction::West));
        // Corner node: only in-mesh dirs.
        let hd = t.healthy_dirs(mesh.node(0, 0));
        assert_eq!(hd.len(), 2);
        // With a single convex fault every healthy node is safe, so
        // safe_dirs == healthy_dirs everywhere.
        for node in mesh.nodes() {
            assert_eq!(t.safe_dirs(node), t.healthy_dirs(node));
        }
    }
}
