//! Duato's methodology and its hop-based escape variants (paper §4.1).
//!
//! Duato's theory (ref [10]) splits the virtual channels into two classes:
//! **class I** (adaptive — any minimal direction, any free VC) and
//! **class II** (escape — driven by a deadlock-free base algorithm). A
//! message may adaptively use class I whenever possible and falls back to
//! class II when class I is exhausted; deadlock freedom follows from the
//! escape network alone.
//!
//! Per the paper's arithmetic on a 10×10 mesh with a 20-VC base budget:
//!
//! - **Duato's routing**: class II = 2 VCs running dimension-order XY,
//!   class I = 18 adaptive VCs.
//! - **Duato-Pbc**: class II = 19 VCs running Pbc, class I = 1 adaptive VC.
//! - **Duato-Nbc**: class II = 10 VCs running Nbc (one VC per class),
//!   class I = 10 adaptive VCs.
//!
//! "Network performance is maximized when the extra virtual channels are
//! added to adaptive virtual channels in class I" (paper §4.1) — hence
//! Duato-Nbc's larger class I is the paper's explanation for its win.

use crate::bonus_cards::{Nbc, Pbc};
use crate::context::RoutingContext;
use crate::state::{CandidateHop, Candidates, MessageState, VcMask};
use crate::traits::BaseRouting;
use std::sync::Arc;
use wormsim_topology::{Direction, NodeId};

/// Which deadlock-free base drives the class-II escape channels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EscapeKind {
    /// Dimension-order (XY) routing on 2 escape VCs.
    Xy,
    /// Pbc on `diameter + 1` escape VCs.
    Pbc,
    /// Nbc on `max_negative_hops_bound + 1` escape VCs (1 VC per class).
    Nbc,
}

enum Escape {
    Xy,
    Pbc(Pbc),
    Nbc(Nbc),
}

/// A Duato-methodology algorithm: adaptive class I over an escape class II.
/// Escape VCs occupy the low indices `0..escape_vcs`; class I occupies
/// `escape_vcs..budget`.
pub struct Duato {
    ctx: Arc<RoutingContext>,
    escape: Escape,
    escape_vcs: u8,
    budget: u8,
    name: &'static str,
}

impl Duato {
    /// Build with `budget` base VCs split between escape and adaptive
    /// channels according to `kind`.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8, kind: EscapeKind) -> Self {
        let (escape, escape_vcs, name) = match kind {
            EscapeKind::Xy => {
                assert!(budget >= 3, "Duato-XY needs ≥ 3 VCs");
                (Escape::Xy, 2, "Duato's routing")
            }
            EscapeKind::Pbc => {
                let needed = (ctx.mesh().diameter() + 1) as u8;
                assert!(
                    budget > needed,
                    "Duato-Pbc needs > {} VCs, got {}",
                    needed,
                    budget
                );
                (
                    Escape::Pbc(Pbc::new(ctx.clone(), needed)),
                    needed,
                    "Duato-Pbc",
                )
            }
            EscapeKind::Nbc => {
                let needed = (ctx.mesh().max_negative_hops_bound() + 1) as u8;
                assert!(
                    budget > needed,
                    "Duato-Nbc needs > {} VCs, got {}",
                    needed,
                    budget
                );
                (
                    Escape::Nbc(Nbc::new(ctx.clone(), needed)),
                    needed,
                    "Duato-Nbc",
                )
            }
        };
        Duato {
            ctx,
            escape,
            escape_vcs,
            budget,
            name,
        }
    }

    /// Number of class-II (escape) VCs.
    pub fn escape_vcs(&self) -> u8 {
        self.escape_vcs
    }

    /// Number of class-I (adaptive) VCs.
    pub fn adaptive_vcs(&self) -> u8 {
        self.budget - self.escape_vcs
    }

    fn adaptive_mask(&self) -> VcMask {
        VcMask::range(self.escape_vcs, self.budget - 1)
    }

    /// The dimension-order (XY) direction toward `dest` from `node`.
    fn xy_direction(&self, node: NodeId, dest: NodeId) -> Option<Direction> {
        let mesh = self.ctx.mesh();
        let (c, d) = (mesh.coord(node), mesh.coord(dest));
        if d.x > c.x {
            Some(Direction::East)
        } else if d.x < c.x {
            Some(Direction::West)
        } else if d.y > c.y {
            Some(Direction::North)
        } else if d.y < c.y {
            Some(Direction::South)
        } else {
            None
        }
    }
}

impl BaseRouting for Duato {
    fn name(&self) -> &'static str {
        self.name
    }

    fn base_vcs(&self) -> u8 {
        self.budget
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        match &self.escape {
            Escape::Xy => MessageState::new(src, dest),
            Escape::Pbc(p) => p.init_message(src, dest),
            Escape::Nbc(n) => n.init_message(src, dest),
        }
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let adaptive = self.adaptive_mask();
        let mut out = Candidates::none();
        // Class I: any minimal direction.
        for dir in self.ctx.mesh().minimal_directions(node, st.dest).iter() {
            out.push(CandidateHop {
                dir,
                preferred: adaptive,
                fallback: VcMask::EMPTY,
            });
        }
        // Class II: the escape discipline's candidates, demoted to fallback.
        match &self.escape {
            Escape::Xy => {
                if let Some(dir) = self.xy_direction(node, st.dest) {
                    out.push(CandidateHop {
                        dir,
                        preferred: VcMask::EMPTY,
                        fallback: VcMask::range(0, 1),
                    });
                }
            }
            Escape::Pbc(p) => {
                for h in p.candidates(node, st).iter() {
                    out.push(CandidateHop {
                        dir: h.dir,
                        preferred: VcMask::EMPTY,
                        fallback: h.preferred,
                    });
                }
            }
            Escape::Nbc(n) => {
                for h in n.candidates(node, st).iter() {
                    out.push(CandidateHop {
                        dir: h.dir,
                        preferred: VcMask::EMPTY,
                        fallback: h.preferred,
                    });
                }
            }
        }
        out
    }

    fn on_normal_hop(
        &self,
        from: NodeId,
        to: NodeId,
        dir: Direction,
        vc: u8,
        st: &mut MessageState,
    ) {
        if vc < self.escape_vcs {
            // Escape hop: let the escape discipline keep its class ladder.
            match &self.escape {
                Escape::Xy => st.normal_hops += 1,
                Escape::Pbc(p) => p.on_normal_hop(from, to, dir, vc, st),
                Escape::Nbc(n) => n.on_normal_hop(from, to, dir, vc, st),
            }
        } else {
            // Adaptive hop: count hops (and negative hops, which raise the
            // Nbc class floor) without advancing the escape class.
            st.normal_hops += 1;
            if let Escape::Nbc(n) = &self.escape {
                let mesh = self.ctx.mesh();
                if mesh.color(from) > mesh.color(to) {
                    st.negative_hops = (st.negative_hops + 1).min(n.num_classes() - 1);
                }
            }
        }
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_fault::FaultPattern;
    use wormsim_topology::Mesh;

    fn ctx() -> Arc<RoutingContext> {
        let mesh = Mesh::square(10);
        Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ))
    }

    #[test]
    fn vc_splits_match_paper() {
        let d = Duato::new(ctx(), 20, EscapeKind::Xy);
        assert_eq!((d.escape_vcs(), d.adaptive_vcs()), (2, 18));
        let d = Duato::new(ctx(), 20, EscapeKind::Pbc);
        assert_eq!((d.escape_vcs(), d.adaptive_vcs()), (19, 1));
        let d = Duato::new(ctx(), 20, EscapeKind::Nbc);
        assert_eq!((d.escape_vcs(), d.adaptive_vcs()), (10, 10));
    }

    #[test]
    fn adaptive_preferred_escape_fallback() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let d = Duato::new(c, 20, EscapeKind::Xy);
        let mut st = d.init_message(mesh.node(0, 0), mesh.node(5, 5));
        let cands = d.candidates(mesh.node(0, 0), &mut st);
        // Two minimal dirs; East additionally carries the XY escape.
        assert_eq!(cands.len(), 2);
        let east = cands.for_dir(Direction::East).unwrap();
        assert_eq!(east.preferred, VcMask::range(2, 19));
        assert_eq!(east.fallback, VcMask::range(0, 1));
        let north = cands.for_dir(Direction::North).unwrap();
        assert_eq!(north.preferred, VcMask::range(2, 19));
        assert!(north.fallback.is_empty());
    }

    #[test]
    fn xy_escape_prefers_x_dimension_first() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let d = Duato::new(c, 20, EscapeKind::Xy);
        // Same column → escape goes along Y.
        let mut st = d.init_message(mesh.node(4, 2), mesh.node(4, 8));
        let cands = d.candidates(mesh.node(4, 2), &mut st);
        let north = cands.for_dir(Direction::North).unwrap();
        assert_eq!(north.fallback, VcMask::range(0, 1));
    }

    #[test]
    fn duato_nbc_escape_mask_is_class_scaled() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let d = Duato::new(c, 20, EscapeKind::Nbc);
        // src color 0, dest distance 1 on color 1 → required 0, bonus 9.
        let mut st = d.init_message(mesh.node(0, 0), mesh.node(1, 0));
        let cands = d.candidates(mesh.node(0, 0), &mut st);
        let east = cands.for_dir(Direction::East).unwrap();
        // Escape classes 0..=9, one VC per class → fallback VCs 0..=9.
        assert_eq!(east.fallback, VcMask::range(0, 9));
        // Adaptive tier sits above the escape VCs.
        assert_eq!(east.preferred, VcMask::range(10, 19));
    }

    #[test]
    fn escape_hop_advances_class_adaptive_hop_does_not() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let d = Duato::new(c, 20, EscapeKind::Pbc);
        let mut st = d.init_message(mesh.node(0, 0), mesh.node(3, 0));
        // Adaptive hop (vc 19).
        d.on_normal_hop(
            mesh.node(0, 0),
            mesh.node(1, 0),
            Direction::East,
            19,
            &mut st,
        );
        assert_eq!(st.next_class_min, 0);
        assert_eq!(st.normal_hops, 1);
        // Escape hop on class 2 (vc 2).
        d.on_normal_hop(
            mesh.node(1, 0),
            mesh.node(2, 0),
            Direction::East,
            2,
            &mut st,
        );
        assert_eq!(st.next_class_min, 3);
        assert_eq!(st.normal_hops, 2);
    }

    #[test]
    fn adaptive_hop_still_raises_nbc_class_floor() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let d = Duato::new(c, 20, EscapeKind::Nbc);
        let mut st = d.init_message(mesh.node(1, 0), mesh.node(3, 0));
        // (1,0) is color 1 → hop to (2,0) color 0 is negative, taken on an
        // adaptive VC.
        d.on_normal_hop(
            mesh.node(1, 0),
            mesh.node(2, 0),
            Direction::East,
            15,
            &mut st,
        );
        assert_eq!(st.negative_hops, 1);
    }

    #[test]
    fn at_destination_no_escape_candidate() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let d = Duato::new(c, 20, EscapeKind::Xy);
        let n = mesh.node(3, 3);
        let mut st = d.init_message(n, n);
        let cands = d.candidates(n, &mut st);
        assert!(cands.is_empty());
    }
}
