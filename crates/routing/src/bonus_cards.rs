//! Bonus-card modifications of the hop-based routings (paper §4).
//!
//! PHop/NHop under-use high-numbered virtual channels: every message starts
//! in class 0 and few ever reach the top classes. Bonus cards widen the
//! choice: a message that will take fewer hops (or negative hops) than the
//! worst case receives the difference as *bonus cards* and may run ahead of
//! its required class by up to that many classes.
//!
//! Formally (following the framework of ref [9]): let `req` be the class
//! the unmodified algorithm would require next and `b` the initial card
//! count. The next hop may use any class `c` with
//! `prev_constraint ≤ c ≤ req + b`; the slack `c − req` is the number of
//! cards currently "in use", so the bound never exceeds the algorithm's
//! class count. Classes remain monotonic, preserving the deadlock-freedom
//! arguments of the base algorithms.

use crate::context::RoutingContext;
use crate::state::{Candidates, MessageState, VcMask};
use crate::traits::BaseRouting;
use std::sync::Arc;
use wormsim_topology::{Direction, NodeId};

/// PHop with bonus cards: `b = diameter − dist(src, dest)`; hop `h` may use
/// any class in `[prev_class+1, h + b]`.
pub struct Pbc {
    ctx: Arc<RoutingContext>,
    classes: u8,
}

impl Pbc {
    /// Build with `budget` base VCs; requires `budget ≥ diameter + 1`.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        let classes = (ctx.mesh().diameter() + 1) as u8;
        assert!(
            budget >= classes,
            "Pbc needs {} VCs (diameter+1), got {}",
            classes,
            budget
        );
        Pbc { ctx, classes }
    }

    /// Number of hop classes.
    pub fn num_classes(&self) -> u8 {
        self.classes
    }

    /// Allowed class range for the next hop.
    fn class_range(&self, st: &MessageState) -> (u8, u8) {
        let top = self.classes - 1;
        let lo = st.next_class_min.min(top);
        let hi = ((st.normal_hops as u32 + st.bonus as u32).min(top as u32)) as u8;
        (lo, hi.max(lo))
    }
}

impl BaseRouting for Pbc {
    fn name(&self) -> &'static str {
        "Pbc"
    }

    fn base_vcs(&self) -> u8 {
        self.classes
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        let mut st = MessageState::new(src, dest);
        let mesh = self.ctx.mesh();
        st.bonus = (mesh.diameter() - mesh.distance(src, dest)) as u8;
        st
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let (lo, hi) = self.class_range(st);
        let mask = VcMask::range(lo, hi);
        let mut out = Candidates::none();
        for dir in self.ctx.mesh().minimal_directions(node, st.dest).iter() {
            out.push_simple(dir, mask);
        }
        out
    }

    fn on_normal_hop(
        &self,
        _from: NodeId,
        _to: NodeId,
        _dir: Direction,
        vc: u8,
        st: &mut MessageState,
    ) {
        // One VC per class → the class used is the VC index.
        st.normal_hops += 1;
        st.next_class_min = (vc + 1).min(self.classes - 1);
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

/// NHop with bonus cards: `b = max_negative_hops_bound − required_negatives`;
/// the next hop may use any class in `[max(prev_class, neg), neg + b]`.
pub struct Nbc {
    ctx: Arc<RoutingContext>,
    classes: u8,
    vcs_per_class: u8,
}

impl Nbc {
    /// Build with `budget` base VCs; requires `budget ≥ classes`.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        let classes = (ctx.mesh().max_negative_hops_bound() + 1) as u8;
        assert!(
            budget >= classes,
            "Nbc needs {} VCs, got {}",
            classes,
            budget
        );
        let vcs_per_class = budget / classes;
        Nbc {
            ctx,
            classes,
            vcs_per_class,
        }
    }

    /// Number of negative-hop classes.
    pub fn num_classes(&self) -> u8 {
        self.classes
    }

    /// VCs allotted to each class.
    pub fn vcs_per_class(&self) -> u8 {
        self.vcs_per_class
    }

    fn class_range(&self, st: &MessageState) -> (u8, u8) {
        let top = self.classes - 1;
        let lo = st.next_class_min.max(st.negative_hops).min(top);
        let hi = ((st.negative_hops as u32 + st.bonus as u32).min(top as u32)) as u8;
        (lo, hi.max(lo))
    }

    fn mask_for_classes(&self, lo: u8, hi: u8) -> VcMask {
        VcMask::range(lo * self.vcs_per_class, (hi + 1) * self.vcs_per_class - 1)
    }
}

impl BaseRouting for Nbc {
    fn name(&self) -> &'static str {
        "Nbc"
    }

    fn base_vcs(&self) -> u8 {
        self.classes * self.vcs_per_class
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        let mut st = MessageState::new(src, dest);
        let mesh = self.ctx.mesh();
        // Required negatives on a minimal path are exact under the
        // checkerboard coloring.
        let required = mesh.max_negative_hops(src, dest);
        st.bonus = (mesh.max_negative_hops_bound() - required) as u8;
        st
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let (lo, hi) = self.class_range(st);
        let mask = self.mask_for_classes(lo, hi);
        let mut out = Candidates::none();
        for dir in self.ctx.mesh().minimal_directions(node, st.dest).iter() {
            out.push_simple(dir, mask);
        }
        out
    }

    fn on_normal_hop(
        &self,
        from: NodeId,
        to: NodeId,
        _dir: Direction,
        vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
        st.next_class_min = vc / self.vcs_per_class;
        let mesh = self.ctx.mesh();
        if mesh.color(from) > mesh.color(to) {
            st.negative_hops = (st.negative_hops + 1).min(self.classes - 1);
        }
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_fault::FaultPattern;
    use wormsim_topology::Mesh;

    fn ctx() -> Arc<RoutingContext> {
        let mesh = Mesh::square(10);
        Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ))
    }

    #[test]
    fn pbc_bonus_is_diameter_minus_distance() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let p = Pbc::new(c, 20);
        let st = p.init_message(mesh.node(0, 0), mesh.node(2, 1));
        assert_eq!(st.bonus, 18 - 3);
        let st2 = p.init_message(mesh.node(0, 0), mesh.node(9, 9));
        assert_eq!(st2.bonus, 0);
    }

    #[test]
    fn pbc_first_hop_uses_classes_zero_to_b() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let p = Pbc::new(c, 20);
        let mut st = p.init_message(mesh.node(4, 4), mesh.node(6, 4)); // dist 2, b=16
        let cands = p.candidates(mesh.node(4, 4), &mut st);
        let h = cands.iter().next().unwrap();
        assert_eq!(h.preferred, VcMask::range(0, 16));
    }

    #[test]
    fn pbc_without_bonus_behaves_like_phop() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let p = Pbc::new(c, 20);
        // Corner-to-corner: distance = diameter → zero cards.
        let mut st = p.init_message(mesh.node(0, 0), mesh.node(9, 9));
        let cands = p.candidates(mesh.node(0, 0), &mut st);
        assert_eq!(cands.iter().next().unwrap().preferred, VcMask::bit(0));
        p.on_normal_hop(
            mesh.node(0, 0),
            mesh.node(1, 0),
            Direction::East,
            0,
            &mut st,
        );
        let cands = p.candidates(mesh.node(1, 0), &mut st);
        assert_eq!(cands.iter().next().unwrap().preferred, VcMask::bit(1));
    }

    #[test]
    fn pbc_classes_strictly_increase() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let p = Pbc::new(c, 20);
        let mut st = p.init_message(mesh.node(0, 0), mesh.node(3, 0)); // b = 15
                                                                       // Jump straight to class 10 on the first hop.
        p.on_normal_hop(
            mesh.node(0, 0),
            mesh.node(1, 0),
            Direction::East,
            10,
            &mut st,
        );
        let cands = p.candidates(mesh.node(1, 0), &mut st);
        let h = cands.iter().next().unwrap();
        // lo = 11; hi = hops(1) + b(15) = 16.
        assert_eq!(h.preferred, VcMask::range(11, 16));
    }

    #[test]
    fn nbc_bonus_from_negative_requirements() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let n = Nbc::new(c, 20);
        // (0,0)→(9,9): required negatives 9 of bound 9 → no cards.
        let st = n.init_message(mesh.node(0, 0), mesh.node(9, 9));
        assert_eq!(st.bonus, 0);
        // (0,0)→(1,0): color0→color1, distance 1, required 0 → 9 cards.
        let st2 = n.init_message(mesh.node(0, 0), mesh.node(1, 0));
        assert_eq!(st2.bonus, 9);
    }

    #[test]
    fn nbc_first_hop_mask_covers_bonus_classes() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let n = Nbc::new(c, 20);
        let mut st = n.init_message(mesh.node(0, 0), mesh.node(1, 0)); // b=9
        let cands = n.candidates(mesh.node(0, 0), &mut st);
        let h = cands.iter().next().unwrap();
        // Classes 0..=9, 2 VCs each → VCs 0..=19.
        assert_eq!(h.preferred, VcMask::range(0, 19));
    }

    #[test]
    fn nbc_class_monotonic_and_requirement_bound() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let n = Nbc::new(c, 20);
        let mut st = n.init_message(mesh.node(0, 0), mesh.node(4, 0)); // b = 9 - 2 = 7
        assert_eq!(st.bonus, 7);
        // Take a hop on class 3 (VC 6).
        n.on_normal_hop(
            mesh.node(0, 0),
            mesh.node(1, 0),
            Direction::East,
            6,
            &mut st,
        );
        let cands = n.candidates(mesh.node(1, 0), &mut st);
        let h = cands.iter().next().unwrap();
        // lo = max(prev class 3, neg 0) = 3; hi = 0 + 7 = 7 → VCs 6..=15.
        assert_eq!(h.preferred, VcMask::range(6, 15));
        // Negative hop raises the requirement floor.
        n.on_normal_hop(
            mesh.node(1, 0),
            mesh.node(2, 0),
            Direction::East,
            6,
            &mut st,
        );
        assert_eq!(st.negative_hops, 1);
        let cands = n.candidates(mesh.node(2, 0), &mut st);
        let h = cands.iter().next().unwrap();
        // lo = max(3, 1) = 3; hi = 1 + 7 = 8 → VCs 6..=17.
        assert_eq!(h.preferred, VcMask::range(6, 17));
    }

    #[test]
    fn ranges_stay_within_class_space_under_detours() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let p = Pbc::new(c.clone(), 20);
        let n = Nbc::new(c, 20);
        let mut stp = p.init_message(mesh.node(0, 0), mesh.node(5, 0));
        stp.normal_hops = 100; // simulated long detour
        stp.next_class_min = 30;
        let (lo, hi) = (18u8, 18u8);
        let cands = p.candidates(mesh.node(4, 0), &mut stp);
        assert_eq!(
            cands.iter().next().unwrap().preferred,
            VcMask::range(lo, hi)
        );
        let mut stn = n.init_message(mesh.node(0, 0), mesh.node(5, 0));
        stn.negative_hops = 9;
        stn.next_class_min = 9;
        let cands = n.candidates(mesh.node(4, 0), &mut stn);
        assert_eq!(
            cands.iter().next().unwrap().preferred,
            VcMask::range(18, 19)
        );
    }
}
