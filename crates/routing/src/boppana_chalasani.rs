//! The Boppana–Chalasani fault-tolerance overlay (paper §2.3, ref [1]).
//!
//! Any base discipline is fortified as follows:
//!
//! - While a message has a fault-free link along some shortest path it is
//!   routed by the base algorithm (minimally).
//! - When **every** shortest-path link is blocked by a fault, the message
//!   enters *f-ring traversal*: it is typed WE/EW/SN/NS from its current
//!   offset to the destination, claims the BC virtual channel owned by that
//!   type (one of the 4 extra VCs, paper: "at most four additional virtual
//!   channels are sufficient"), picks the traversal orientation with the
//!   nearer exit, and follows the ring until minimal progress is possible
//!   again.
//! - On an f-chain (ring clipped by the mesh boundary) the traversal
//!   reverses at the chain ends.
//!
//! The BC VCs occupy indices `base_budget .. base_budget + 4`; the base
//! algorithm owns `0 .. base_budget` (it may use fewer, e.g. PHop's 19 of
//! 20, leaving one idle spare exactly as the paper's 24-VC budget does).

use crate::context::RoutingContext;
use crate::state::{Candidates, MessageState, MessageType, VcMask};
use crate::traits::{BaseRouting, RoutingAlgorithm};
use wormsim_topology::{Direction, NodeId};

/// A base discipline fortified with the BC f-ring scheme.
pub struct BoppanaChalasani {
    base: Box<dyn BaseRouting>,
    /// First BC VC index (= the base VC budget).
    bc_base: u8,
    /// Number of BC VCs (4).
    bc_count: u8,
}

impl BoppanaChalasani {
    /// Fortify `base`. `base_budget` is the number of VC indices reserved
    /// for the base discipline (its own `base_vcs()` must fit);
    /// `bc_count` additional VCs sit above them.
    pub fn new(base: Box<dyn BaseRouting>, base_budget: u8, bc_count: u8) -> Self {
        assert!(
            base.base_vcs() <= base_budget,
            "{} uses {} VCs but the budget is {}",
            base.name(),
            base.base_vcs(),
            base_budget
        );
        assert!(bc_count >= 4, "the BC scheme needs 4 additional VCs");
        BoppanaChalasani {
            base,
            bc_base: base_budget,
            bc_count,
        }
    }

    /// The VC the message's type owns on every physical channel.
    fn bc_vc(&self, mtype: MessageType) -> u8 {
        self.bc_base + mtype.bc_index()
    }

    fn ctx(&self) -> &RoutingContext {
        self.base.context()
    }

    /// Whether a ring node offers an exit for a message to `dest` that
    /// entered the ring at distance `entry_distance`: the node is the
    /// destination itself, or it is strictly closer than the entry point
    /// *and* minimal progress is possible on a healthy link. The progress
    /// requirement prevents exit–re-block oscillation (each ring episode
    /// strictly reduces the distance to the destination).
    fn is_exit(&self, node: NodeId, dest: NodeId, entry_distance: u32) -> bool {
        node == dest
            || (self.ctx().mesh().distance(node, dest) < entry_distance
                && !self.ctx().healthy_minimal_directions(node, dest).is_empty())
    }

    /// The single ring-mode candidate (the next ring hop on the type's BC
    /// VC), reversing at chain ends.
    fn ring_candidate(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mut out = Candidates::none();
        let Some(mut rs) = st.ring else {
            return out;
        };
        let ctx = self.ctx();
        let rings = ctx.rings();
        debug_assert_eq!(
            rings.ring(rs.ring).nodes()[rs.pos as usize],
            node,
            "ring position out of sync"
        );
        let pos = wormsim_fault::RingPosition {
            ring: rs.ring,
            pos: rs.pos,
        };
        let hop = rings.hop_direction(ctx.mesh(), pos, rs.orient).or_else(|| {
            // f-chain end: reverse and try the other way.
            rs.orient = rs.orient.reversed();
            st.ring = Some(rs);
            rings.hop_direction(ctx.mesh(), pos, rs.orient)
        });
        if let Some((dir, _next, _np)) = hop {
            out.push_simple(dir, VcMask::bit(self.bc_vc(rs.mtype)));
        }
        out
    }
}

impl RoutingAlgorithm for BoppanaChalasani {
    fn name(&self) -> &'static str {
        self.base.name()
    }

    fn num_vcs(&self) -> u8 {
        self.bc_base + self.bc_count
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        self.base.init_message(src, dest)
    }

    fn route(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let ctx = self.ctx();
        if node == st.dest {
            return Candidates::none();
        }
        // Ring exit: strictly closer than the entry point with minimal
        // progress possible again.
        if let Some(rs) = st.ring {
            if self.is_exit(node, st.dest, rs.entry_distance) {
                st.ring = None;
            }
        }
        if st.ring.is_none() {
            // Normal mode: base candidates, filtered to fault-free links.
            let raw = self.base.candidates(node, st);
            let mut out = Candidates::none();
            for h in raw.iter() {
                if ctx.healthy_step(node, h.dir).is_some() {
                    out.push(*h);
                }
            }
            if !out.is_empty() {
                return out;
            }
            // Enter ring mode if blocked. The complete entry state —
            // blocking region, ring position, message type, and the
            // geometric orientation choice (which scans the whole ring) —
            // is a pure function of `(node, dest, pattern)`, so a
            // table-backed context serves the blocked check and the entry
            // as one fused index lookup (see `wormsim_routing`'s `table`
            // module for the computation).
            let (blocked, entry) = ctx.blocked_ring_entry(node, st.dest);
            if blocked {
                st.ring = Some(entry.expect("blocked message must face a faulty region"));
            } else {
                // Base had nothing (e.g. waiting on misroute patience).
                return out;
            }
        }
        self.ring_candidate(node, st)
    }

    fn on_hop(&self, from: NodeId, to: NodeId, dir: Direction, vc: u8, st: &mut MessageState) {
        st.hops += 1;
        st.last_dir = Some(dir);
        st.wait_cycles = 0;
        if vc >= self.bc_base {
            // Ring hop: advance the position to the new node.
            let rs = st.ring.as_mut().expect("BC VC hop outside ring mode");
            let pos = self
                .ctx()
                .rings()
                .position_on(to, rs.ring)
                .expect("ring hop must land on the ring");
            rs.pos = pos.pos;
        } else {
            self.base.on_normal_hop(from, to, dir, vc, st);
        }
    }

    fn is_deadlock_free(&self) -> bool {
        self.base.is_deadlock_free()
    }

    fn is_overlay_vc(&self, vc: u8) -> bool {
        vc >= self.bc_base
    }

    fn recheck_wait(&self) -> Option<u32> {
        self.base.recheck_wait()
    }

    fn context(&self) -> &RoutingContext {
        self.base.context()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::MinimalAdaptive;
    use crate::hop_based::PHop;
    use std::sync::Arc;
    use wormsim_fault::{FaultPattern, Orientation};
    use wormsim_topology::{Coord, Mesh, Rect};

    fn ctx_with_block() -> (Arc<RoutingContext>, Mesh) {
        let mesh = Mesh::square(10);
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))])
                .unwrap();
        (Arc::new(RoutingContext::new(mesh.clone(), pattern)), mesh)
    }

    fn bc_minimal(ctx: Arc<RoutingContext>) -> BoppanaChalasani {
        BoppanaChalasani::new(Box::new(MinimalAdaptive::new(ctx, 20)), 20, 4)
    }

    #[test]
    fn vc_budget() {
        let (ctx, _) = ctx_with_block();
        let bc = BoppanaChalasani::new(Box::new(PHop::new(ctx, 20)), 20, 4);
        assert_eq!(bc.num_vcs(), 24);
    }

    #[test]
    fn unblocked_messages_route_normally() {
        let (ctx, mesh) = ctx_with_block();
        let bc = bc_minimal(ctx);
        let mut st = bc.init_message(mesh.node(0, 0), mesh.node(2, 2));
        let cands = bc.route(mesh.node(0, 0), &mut st);
        assert_eq!(cands.len(), 2);
        assert!(st.ring.is_none());
    }

    #[test]
    fn partially_blocked_uses_remaining_minimal_link() {
        let (ctx, mesh) = ctx_with_block();
        let bc = bc_minimal(ctx);
        // At (3,4) → (6,6): East is faulty (4,4), North (3,5) is healthy.
        let mut st = bc.init_message(mesh.node(3, 4), mesh.node(6, 6));
        let cands = bc.route(mesh.node(3, 4), &mut st);
        assert!(st.ring.is_none());
        assert!(cands.for_dir(Direction::East).is_none());
        assert!(cands.for_dir(Direction::North).is_some());
    }

    #[test]
    fn fully_blocked_enters_ring_on_bc_vc() {
        let (ctx, mesh) = ctx_with_block();
        let bc = bc_minimal(ctx);
        // At (3,5) → (8,5): only minimal dir is East, into the block.
        let mut st = bc.init_message(mesh.node(3, 5), mesh.node(8, 5));
        let cands = bc.route(mesh.node(3, 5), &mut st);
        assert!(st.ring.is_some());
        assert_eq!(cands.len(), 1);
        let h = cands.iter().next().unwrap();
        // WE message → BC VC index 20 + 0.
        assert_eq!(h.preferred, VcMask::bit(20));
        assert!(h.fallback.is_empty());
    }

    #[test]
    fn ring_traversal_delivers_around_block() {
        let (ctx, mesh) = ctx_with_block();
        let bc = bc_minimal(ctx.clone());
        let (src, dest) = (mesh.node(3, 5), mesh.node(8, 5));
        let mut st = bc.init_message(src, dest);
        let mut cur = src;
        let mut hops = 0;
        let mut used_bc_vc = false;
        while cur != dest {
            let cands = bc.route(cur, &mut st);
            assert!(!cands.is_empty(), "stuck at {:?}", mesh.coord(cur));
            let h = cands.iter().next().unwrap();
            let vc = h.preferred.iter().next().unwrap();
            if vc >= 20 {
                used_bc_vc = true;
            }
            let next = mesh.neighbor(cur, h.dir).unwrap();
            assert!(!ctx.pattern().is_faulty(next), "routed into a fault");
            bc.on_hop(cur, next, h.dir, vc, &mut st);
            cur = next;
            hops += 1;
            assert!(hops < 60, "traversal did not terminate");
        }
        assert!(used_bc_vc, "detour should have used the BC VC");
        assert!(hops > mesh.distance(src, dest));
        assert!(st.ring.is_none(), "ring mode should end before delivery");
    }

    #[test]
    fn orientation_follows_destination_side() {
        let mesh = Mesh::square(10);
        // Block spanning rows 3..7 at columns 4..5.
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 3), Coord::new(5, 7))])
                .unwrap();
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
        let bc = bc_minimal(ctx);
        // A blocked message has exactly one (faulty) minimal direction, so
        // a blocked row message always has dest.y == entry.y → north side.
        // From the ring's west edge, north is clockwise.
        let mut st = bc.init_message(mesh.node(3, 4), mesh.node(8, 4));
        let cands = bc.route(mesh.node(3, 4), &mut st);
        assert_eq!(st.ring.unwrap().orient, Orientation::Clockwise);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::North);
        // A blocked column message (dest.x == entry.x) goes around the
        // east side; from the ring's bottom edge that is counterclockwise.
        // The rule depends only on geometry, so every same-type message on
        // the same entry side rotates the same way (the BC
        // deadlock-freedom device).
        let mut st = bc.init_message(mesh.node(4, 2), mesh.node(4, 8));
        let cands = bc.route(mesh.node(4, 2), &mut st);
        assert_eq!(st.ring.unwrap().mtype, MessageType::SN);
        assert_eq!(st.ring.unwrap().orient, Orientation::Counterclockwise);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::East);
    }

    #[test]
    fn chain_traversal_reverses_at_boundary() {
        let mesh = Mesh::square(10);
        // Block flush against the south boundary; message destined straight
        // south-east beyond it must go around via the ring chain.
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 0), Coord::new(5, 2))])
                .unwrap();
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
        assert!(!ctx.rings().ring(0).is_closed());
        let bc = bc_minimal(ctx.clone());
        let (src, dest) = (mesh.node(3, 1), mesh.node(8, 0));
        let mut st = bc.init_message(src, dest);
        let mut cur = src;
        let mut hops = 0;
        while cur != dest {
            let cands = bc.route(cur, &mut st);
            assert!(!cands.is_empty(), "stuck at {:?}", mesh.coord(cur));
            let h = cands.iter().next().unwrap();
            let vc = h.preferred.iter().next().unwrap();
            let next = mesh.neighbor(cur, h.dir).unwrap();
            bc.on_hop(cur, next, h.dir, vc, &mut st);
            cur = next;
            hops += 1;
            assert!(hops < 60, "chain traversal did not terminate");
        }
    }

    #[test]
    fn message_types_use_distinct_bc_vcs() {
        let (ctx, mesh) = ctx_with_block();
        let bc = bc_minimal(ctx);
        // Eastbound (WE).
        let mut st = bc.init_message(mesh.node(3, 5), mesh.node(8, 5));
        bc.route(mesh.node(3, 5), &mut st);
        assert_eq!(st.ring.unwrap().mtype, MessageType::WE);
        // Westbound (EW).
        let mut st = bc.init_message(mesh.node(6, 5), mesh.node(0, 5));
        bc.route(mesh.node(6, 5), &mut st);
        assert_eq!(st.ring.unwrap().mtype, MessageType::EW);
        // Northbound (SN).
        let mut st = bc.init_message(mesh.node(4, 3), mesh.node(4, 8));
        bc.route(mesh.node(4, 3), &mut st);
        assert_eq!(st.ring.unwrap().mtype, MessageType::SN);
        // Southbound (NS).
        let mut st = bc.init_message(mesh.node(5, 7), mesh.node(5, 2));
        bc.route(mesh.node(5, 7), &mut st);
        assert_eq!(st.ring.unwrap().mtype, MessageType::NS);
    }

    #[test]
    fn phop_class_frozen_during_ring_hops() {
        let (ctx, mesh) = ctx_with_block();
        let bc = BoppanaChalasani::new(Box::new(PHop::new(ctx, 20)), 20, 4);
        let mut st = bc.init_message(mesh.node(3, 5), mesh.node(8, 5));
        bc.route(mesh.node(3, 5), &mut st);
        assert!(st.ring.is_some());
        let before = st.normal_hops;
        // A ring hop on a BC VC must not advance the PHop class.
        bc.on_hop(
            mesh.node(3, 5),
            mesh.node(3, 6),
            Direction::North,
            20,
            &mut st,
        );
        assert_eq!(st.normal_hops, before);
        assert_eq!(st.hops, 1);
    }
}
