//! Per-message routing state and routing-function output types.

use serde::{Deserialize, Serialize};
use wormsim_fault::Orientation;
use wormsim_topology::{Direction, NodeId};

/// A set of virtual channels on one physical channel, as a bitmask.
/// Supports up to 32 VCs per physical channel (the paper uses 24).
///
/// ```
/// use wormsim_routing::VcMask;
///
/// let escape = VcMask::range(0, 1);
/// let adaptive = VcMask::range(2, 19);
/// assert!(escape.intersect(adaptive).is_empty());
/// assert_eq!(escape.union(adaptive).count(), 20);
/// assert!(adaptive.contains(10));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VcMask(pub u32);

impl VcMask {
    /// The empty mask.
    pub const EMPTY: VcMask = VcMask(0);

    /// Mask with the single VC `i`.
    #[inline]
    pub const fn bit(i: u8) -> VcMask {
        VcMask(1 << i)
    }

    /// Mask with VCs `lo..=hi` (inclusive). Empty if `lo > hi`.
    #[inline]
    pub fn range(lo: u8, hi: u8) -> VcMask {
        if lo > hi {
            return VcMask::EMPTY;
        }
        let width = hi - lo + 1;
        let bits = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        VcMask(bits << lo)
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, i: u8) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: VcMask) -> VcMask {
        VcMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(self, other: VcMask) -> VcMask {
        VcMask(self.0 & other.0)
    }

    /// Whether no VC is present.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of VCs present.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterate over member VC indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            Some(i)
        })
    }
}

impl core::fmt::Debug for VcMask {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VcMask[")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "]")
    }
}

/// One candidate next hop: a direction plus the VCs the algorithm permits,
/// split into a preferred tier (Duato's class I) and a fallback tier
/// (class II escape). Algorithms without tiers put everything in
/// `preferred` and leave `fallback` empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateHop {
    /// Output direction.
    pub dir: Direction,
    /// VCs tried first.
    pub preferred: VcMask,
    /// VCs tried only if no preferred VC (on any candidate) is available.
    pub fallback: VcMask,
}

/// The routing function's output: up to four candidate hops (one per
/// direction). Fixed-capacity to keep the per-decision path allocation-free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidates {
    hops: [Option<CandidateHop>; 4],
    len: u8,
}

impl Candidates {
    /// No candidates (the message must wait).
    pub const fn none() -> Self {
        Candidates {
            hops: [None, None, None, None],
            len: 0,
        }
    }

    /// Add a candidate hop. If the direction is already present, the masks
    /// are merged instead.
    pub fn push(&mut self, hop: CandidateHop) {
        for slot in self.hops.iter_mut().flatten() {
            if slot.dir == hop.dir {
                slot.preferred = slot.preferred.union(hop.preferred);
                slot.fallback = slot.fallback.union(hop.fallback);
                return;
            }
        }
        let i = self.len as usize;
        debug_assert!(i < 4);
        self.hops[i] = Some(hop);
        self.len += 1;
    }

    /// Convenience: push a single-tier candidate.
    pub fn push_simple(&mut self, dir: Direction, mask: VcMask) {
        self.push(CandidateHop {
            dir,
            preferred: mask,
            fallback: VcMask::EMPTY,
        });
    }

    /// Number of candidate directions.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over candidate hops.
    pub fn iter(&self) -> impl Iterator<Item = &CandidateHop> {
        self.hops.iter().flatten()
    }

    /// Find the candidate for a particular direction.
    pub fn for_dir(&self, dir: Direction) -> Option<&CandidateHop> {
        self.iter().find(|h| h.dir == dir)
    }
}

/// BC message typing (paper §2.3 / ref \[1\]): the four classes of message by
/// travel direction, each owning one of the 4 additional BC virtual
/// channels. Determined from the current-node → destination offset when a
/// message first meets a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum MessageType {
    /// Traveling east (west-to-east).
    WE = 0,
    /// Traveling west (east-to-west).
    EW = 1,
    /// Traveling north (south-to-north).
    SN = 2,
    /// Traveling south (north-to-south).
    NS = 3,
}

impl MessageType {
    /// Classify by the dominant travel direction from `from` toward `to`
    /// (column offset first — row messages — then row offset).
    pub fn classify(from: (u16, u16), to: (u16, u16)) -> MessageType {
        if to.0 > from.0 {
            MessageType::WE
        } else if to.0 < from.0 {
            MessageType::EW
        } else if to.1 > from.1 {
            MessageType::SN
        } else {
            MessageType::NS
        }
    }

    /// The BC VC sub-index (0..4) owned by this type.
    pub const fn bc_index(self) -> u8 {
        self as u8
    }
}

/// State of an in-progress f-ring traversal (BC overlay).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingState {
    /// Which f-ring is being traversed.
    pub ring: usize,
    /// Current position on the ring.
    pub pos: u16,
    /// Traversal orientation (may flip at f-chain ends).
    pub orient: Orientation,
    /// Message type fixed at ring entry; selects the BC VC.
    pub mtype: MessageType,
    /// Distance to the destination at ring entry. The traversal only ends
    /// at a node strictly closer than this, guaranteeing progress across
    /// ring episodes (re-blocking cannot oscillate).
    pub entry_distance: u32,
}

/// Per-message routing state, updated by the engine via
/// [`crate::RoutingAlgorithm::on_hop`]. One struct serves every algorithm;
/// each uses the fields it needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageState {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Total hops taken so far (including misroutes and ring hops).
    pub hops: u16,
    /// Hops taken in normal (non-ring) mode — drives PHop classes.
    pub normal_hops: u16,
    /// Negative hops taken in normal mode — drives NHop classes.
    pub negative_hops: u8,
    /// Bonus cards remaining (Pbc/Nbc).
    pub bonus: u8,
    /// Lowest class the next hop may use (monotonic class tracking).
    pub next_class_min: u8,
    /// Misroutes taken (Fully-Adaptive, capped).
    pub misroutes: u8,
    /// Cycles the header has waited since its last hop; maintained by the
    /// engine, read by algorithms that react to blocking (misrouting).
    pub wait_cycles: u32,
    /// Active f-ring traversal, if any.
    pub ring: Option<RingState>,
    /// Direction of the last hop taken.
    pub last_dir: Option<Direction>,
}

impl MessageState {
    /// Fresh state for a message from `src` to `dest`.
    pub fn new(src: NodeId, dest: NodeId) -> Self {
        MessageState {
            src,
            dest,
            hops: 0,
            normal_hops: 0,
            negative_hops: 0,
            bonus: 0,
            next_class_min: 0,
            misroutes: 0,
            wait_cycles: 0,
            ring: None,
            last_dir: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_mask_bit_and_range() {
        let m = VcMask::bit(5);
        assert!(m.contains(5));
        assert!(!m.contains(4));
        assert_eq!(m.count(), 1);

        let r = VcMask::range(3, 6);
        assert_eq!(r.count(), 4);
        assert!(r.contains(3) && r.contains(6));
        assert!(!r.contains(2) && !r.contains(7));

        assert!(VcMask::range(6, 3).is_empty());
        assert_eq!(VcMask::range(0, 31).count(), 32);
    }

    #[test]
    fn vc_mask_set_ops() {
        let a = VcMask::range(0, 3);
        let b = VcMask::range(2, 5);
        assert_eq!(a.union(b), VcMask::range(0, 5));
        assert_eq!(a.intersect(b), VcMask::range(2, 3));
        assert!(a.intersect(VcMask::range(10, 12)).is_empty());
        let members: Vec<u8> = a.iter().collect();
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn candidates_merge_same_direction() {
        let mut c = Candidates::none();
        c.push_simple(Direction::East, VcMask::bit(0));
        c.push_simple(Direction::East, VcMask::bit(1));
        c.push_simple(Direction::North, VcMask::bit(2));
        assert_eq!(c.len(), 2);
        let east = c.for_dir(Direction::East).unwrap();
        assert!(east.preferred.contains(0) && east.preferred.contains(1));
    }

    #[test]
    fn candidates_tiers() {
        let mut c = Candidates::none();
        c.push(CandidateHop {
            dir: Direction::West,
            preferred: VcMask::range(0, 1),
            fallback: VcMask::bit(7),
        });
        let w = c.for_dir(Direction::West).unwrap();
        assert_eq!(w.preferred.count(), 2);
        assert_eq!(w.fallback.count(), 1);
    }

    #[test]
    fn message_type_classification() {
        assert_eq!(MessageType::classify((0, 0), (5, 0)), MessageType::WE);
        assert_eq!(MessageType::classify((5, 0), (0, 3)), MessageType::EW);
        assert_eq!(MessageType::classify((2, 1), (2, 9)), MessageType::SN);
        assert_eq!(MessageType::classify((2, 9), (2, 1)), MessageType::NS);
        // Distinct BC indices for the four types.
        let idx: std::collections::HashSet<u8> = [
            MessageType::WE,
            MessageType::EW,
            MessageType::SN,
            MessageType::NS,
        ]
        .iter()
        .map(|t| t.bc_index())
        .collect();
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn fresh_state() {
        let st = MessageState::new(NodeId(1), NodeId(42));
        assert_eq!(st.hops, 0);
        assert!(st.ring.is_none());
        assert!(st.last_dir.is_none());
    }
}
