//! Deterministic and turn-model baselines (extensions beyond the paper's
//! roster, used by the ablation experiments).
//!
//! - [`DimensionOrder`] — deterministic XY routing: the canonical
//!   non-adaptive baseline.
//! - [`TurnModel`] — the Glass–Ni partially adaptive algorithms
//!   (west-first, north-last, negative-first). Each forbids just enough
//!   turns to break all dependency cycles, so they are deadlock-free with
//!   **any** number of VCs per channel and need no buffer classes.
//!
//! All of them expose the full base VC budget as one free pool; the BC
//! overlay fortifies them for fault tolerance like any other base.

use crate::context::RoutingContext;
use crate::state::{Candidates, MessageState, VcMask};
use crate::traits::BaseRouting;
use std::sync::Arc;
use wormsim_topology::{Direction, DirectionSet, NodeId};

/// Deterministic dimension-order (XY) routing.
pub struct DimensionOrder {
    ctx: Arc<RoutingContext>,
    vcs: u8,
}

impl DimensionOrder {
    /// Build with `budget` base VCs (all equivalent).
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        assert!(budget >= 1);
        DimensionOrder { ctx, vcs: budget }
    }
}

impl BaseRouting for DimensionOrder {
    fn name(&self) -> &'static str {
        "XY (dimension-order)"
    }

    fn base_vcs(&self) -> u8 {
        self.vcs
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mesh = self.ctx.mesh();
        let (c, d) = (mesh.coord(node), mesh.coord(st.dest));
        let dir = if d.x > c.x {
            Some(Direction::East)
        } else if d.x < c.x {
            Some(Direction::West)
        } else if d.y > c.y {
            Some(Direction::North)
        } else if d.y < c.y {
            Some(Direction::South)
        } else {
            None
        };
        let mut out = Candidates::none();
        if let Some(dir) = dir {
            out.push_simple(dir, VcMask::range(0, self.vcs - 1));
        }
        out
    }

    fn on_normal_hop(
        &self,
        _from: NodeId,
        _to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

/// Which Glass–Ni turn model to apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TurnModelKind {
    /// All westward hops first; fully adaptive among {E, N, S} afterward.
    WestFirst,
    /// Northward hops only once no other productive direction remains.
    NorthLast,
    /// All negative-direction hops (W, S) first, then positive (E, N).
    NegativeFirst,
}

impl TurnModelKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TurnModelKind::WestFirst => "West-First",
            TurnModelKind::NorthLast => "North-Last",
            TurnModelKind::NegativeFirst => "Negative-First",
        }
    }
}

/// A Glass–Ni partially adaptive turn-model routing.
pub struct TurnModel {
    ctx: Arc<RoutingContext>,
    vcs: u8,
    kind: TurnModelKind,
}

impl TurnModel {
    /// Build with `budget` base VCs (one free pool).
    pub fn new(ctx: Arc<RoutingContext>, budget: u8, kind: TurnModelKind) -> Self {
        assert!(budget >= 1);
        TurnModel {
            ctx,
            vcs: budget,
            kind,
        }
    }

    /// The minimal directions the turn model permits at this step.
    fn allowed_directions(&self, node: NodeId, dest: NodeId) -> DirectionSet {
        let minimal = self.ctx.mesh().minimal_directions(node, dest);
        match self.kind {
            TurnModelKind::WestFirst => {
                // Any westward progress must be completed before turning.
                if minimal.contains(Direction::West) {
                    let mut west = DirectionSet::empty();
                    west.insert(Direction::West);
                    west
                } else {
                    minimal
                }
            }
            TurnModelKind::NorthLast => {
                // North only when it is the sole productive direction
                // (turning out of north is forbidden, so enter it last).
                let mut non_north = minimal;
                non_north.remove(Direction::North);
                if non_north.is_empty() {
                    minimal
                } else {
                    non_north
                }
            }
            TurnModelKind::NegativeFirst => {
                let negative =
                    minimal.intersect([Direction::West, Direction::South].into_iter().collect());
                if negative.is_empty() {
                    minimal
                } else {
                    negative
                }
            }
        }
    }
}

impl BaseRouting for TurnModel {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn base_vcs(&self) -> u8 {
        self.vcs
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mask = VcMask::range(0, self.vcs - 1);
        let mut out = Candidates::none();
        for dir in self.allowed_directions(node, st.dest).iter() {
            out.push_simple(dir, mask);
        }
        out
    }

    fn on_normal_hop(
        &self,
        _from: NodeId,
        _to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_fault::FaultPattern;
    use wormsim_topology::Mesh;

    fn ctx() -> Arc<RoutingContext> {
        let mesh = Mesh::square(10);
        Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ))
    }

    #[test]
    fn xy_routes_x_then_y() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let xy = DimensionOrder::new(c, 20);
        let mut st = xy.init_message(mesh.node(2, 2), mesh.node(6, 7));
        let cands = xy.candidates(mesh.node(2, 2), &mut st);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::East);
        // Same column: Y next.
        let mut st = xy.init_message(mesh.node(6, 2), mesh.node(6, 7));
        let cands = xy.candidates(mesh.node(6, 2), &mut st);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::North);
        // At destination: nothing.
        let n = mesh.node(6, 7);
        let mut st = xy.init_message(mesh.node(0, 0), n);
        assert!(xy.candidates(n, &mut st).is_empty());
    }

    #[test]
    fn west_first_forces_west_before_turning() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let wf = TurnModel::new(c, 20, TurnModelKind::WestFirst);
        // Destination south-west: west first, exclusively.
        let mut st = wf.init_message(mesh.node(7, 7), mesh.node(2, 2));
        let cands = wf.candidates(mesh.node(7, 7), &mut st);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::West);
        // Destination north-east: fully adaptive among E and N.
        let mut st = wf.init_message(mesh.node(2, 2), mesh.node(7, 7));
        let cands = wf.candidates(mesh.node(2, 2), &mut st);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn north_last_defers_north() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let nl = TurnModel::new(c, 20, TurnModelKind::NorthLast);
        // North-east destination: only East until the column matches.
        let mut st = nl.init_message(mesh.node(2, 2), mesh.node(7, 7));
        let cands = nl.candidates(mesh.node(2, 2), &mut st);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::East);
        // Aligned column: North allowed as the last direction.
        let mut st = nl.init_message(mesh.node(7, 2), mesh.node(7, 7));
        let cands = nl.candidates(mesh.node(7, 2), &mut st);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::North);
        // South-east destination: both adaptive (no north involved).
        let mut st = nl.init_message(mesh.node(2, 7), mesh.node(7, 2));
        let cands = nl.candidates(mesh.node(2, 7), &mut st);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn negative_first_orders_phases() {
        let c = ctx();
        let mesh = c.mesh().clone();
        let nf = TurnModel::new(c, 20, TurnModelKind::NegativeFirst);
        // Mixed destination (west + north): negative (west) phase first.
        let mut st = nf.init_message(mesh.node(7, 2), mesh.node(2, 7));
        let cands = nf.candidates(mesh.node(7, 2), &mut st);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands.iter().next().unwrap().dir, Direction::West);
        // Both negative: adaptive between W and S.
        let mut st = nf.init_message(mesh.node(7, 7), mesh.node(2, 2));
        let cands = nf.candidates(mesh.node(7, 7), &mut st);
        assert_eq!(cands.len(), 2);
        // Pure positive: adaptive between E and N.
        let mut st = nf.init_message(mesh.node(2, 2), mesh.node(7, 7));
        let cands = nf.candidates(mesh.node(2, 2), &mut st);
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn turn_models_reach_destination_greedily() {
        let c = ctx();
        let mesh = c.mesh().clone();
        for kind in [
            TurnModelKind::WestFirst,
            TurnModelKind::NorthLast,
            TurnModelKind::NegativeFirst,
        ] {
            let tm = crate::Plain::new(Box::new(TurnModel::new(c.clone(), 20, kind)));
            for (s, d) in [
                ((0, 0), (9, 9)),
                ((9, 9), (0, 0)),
                ((3, 8), (8, 1)),
                ((8, 1), (3, 8)),
            ] {
                let (src, dest) = (mesh.node(s.0, s.1), mesh.node(d.0, d.1));
                match crate::greedy_trace(&tm, src, dest, 400) {
                    Ok(hops) => {
                        assert_eq!(hops, mesh.distance(src, dest), "{kind:?} non-minimal")
                    }
                    Err(e) => panic!("{kind:?} {s:?}->{d:?}: {e}"),
                }
            }
        }
    }
}
