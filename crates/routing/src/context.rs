//! The immutable per-simulation context algorithms route against.

use crate::state::RingState;
use crate::table::{self, GeometryTable};
use wormsim_fault::{FRingSet, FaultPattern, NodeLabeling};
use wormsim_topology::{Direction, DirectionSet, Mesh, NodeId};

/// Everything a routing function needs to know about the network: the mesh,
/// the (static) fault pattern, the f-rings around its regions, and the
/// Boura–Das labeling. Built once per simulation and shared via `Arc`.
///
/// [`RoutingContext::new`] additionally precomputes a [`GeometryTable`] so
/// the per-pair queries below are indexed lookups; [`RoutingContext::
/// new_direct`] skips it and computes every query from first principles —
/// the reference path the table-equivalence property tests compare against.
#[derive(Clone, Debug)]
pub struct RoutingContext {
    mesh: Mesh,
    pattern: FaultPattern,
    rings: FRingSet,
    labeling: NodeLabeling,
    table: Option<GeometryTable>,
}

impl RoutingContext {
    /// Build the context (computes f-rings, labeling, and the geometry
    /// table).
    pub fn new(mesh: Mesh, pattern: FaultPattern) -> Self {
        let rings = FRingSet::build(&mesh, &pattern);
        let labeling = NodeLabeling::compute(&mesh, &pattern);
        let table = Some(GeometryTable::build(&mesh, &pattern, &rings, &labeling));
        RoutingContext {
            mesh,
            pattern,
            rings,
            labeling,
            table,
        }
    }

    /// Build the context **without** the geometry table: every query is
    /// computed directly. Slower per decision; used as the reference
    /// implementation by equivalence tests and the `routing_decision`
    /// microbenchmark.
    pub fn new_direct(mesh: Mesh, pattern: FaultPattern) -> Self {
        let rings = FRingSet::build(&mesh, &pattern);
        let labeling = NodeLabeling::compute(&mesh, &pattern);
        RoutingContext {
            mesh,
            pattern,
            rings,
            labeling,
            table: None,
        }
    }

    /// Derive a context for an online-extended pattern (see
    /// `FaultPattern::extend`): f-rings are rebuilt incrementally —
    /// regions whose rectangle survived the event keep their node walk —
    /// the labeling is recomputed (it depends on every region's position,
    /// so there is no cheap incremental form), and the geometry table is
    /// rebuilt incrementally (only rows of nodes on or around a touched
    /// f-ring recompute; the epoch advances by one). Used by the chaos
    /// driver to swap routing state mid-run. A table-less context stays
    /// table-less.
    pub fn with_pattern(&self, pattern: FaultPattern) -> Self {
        let rings = FRingSet::rebuild(&self.mesh, &pattern, &self.pattern, &self.rings);
        let labeling = NodeLabeling::compute(&self.mesh, &pattern);
        let table = self.table.as_ref().map(|t| {
            t.rebuild(
                &self.mesh,
                &self.pattern,
                &self.rings,
                &pattern,
                &rings,
                &labeling,
            )
        });
        RoutingContext {
            mesh: self.mesh.clone(),
            pattern,
            rings,
            labeling,
            table,
        }
    }

    /// The mesh.
    #[inline]
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The fault pattern.
    #[inline]
    pub fn pattern(&self) -> &FaultPattern {
        &self.pattern
    }

    /// The f-rings around the pattern's regions.
    #[inline]
    pub fn rings(&self) -> &FRingSet {
        &self.rings
    }

    /// The Boura–Das node labeling.
    #[inline]
    pub fn labeling(&self) -> &NodeLabeling {
        &self.labeling
    }

    /// The precomputed geometry table, if this context carries one.
    #[inline]
    pub fn table(&self) -> Option<&GeometryTable> {
        self.table.as_ref()
    }

    /// Context generation: 0 for a fresh context, +1 per
    /// [`RoutingContext::with_pattern`] derivation. Always 0 for table-less
    /// contexts.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.table.as_ref().map_or(0, |t| t.epoch())
    }

    /// Minimal directions from `node` toward `dest` whose next node is
    /// fault-free (the paper's "fault-free link along the shortest path").
    #[inline]
    pub fn healthy_minimal_directions(&self, node: NodeId, dest: NodeId) -> DirectionSet {
        match &self.table {
            Some(t) => t.pair(node, dest).healthy_minimal,
            None => table::compute_healthy_minimal(&self.mesh, &self.pattern, node, dest),
        }
    }

    /// Whether a message at `node` heading to `dest` is *blocked by faults*:
    /// it is not at its destination and every minimal-progress neighbor is
    /// faulty (paper §3).
    #[inline]
    pub fn blocked_by_fault(&self, node: NodeId, dest: NodeId) -> bool {
        match &self.table {
            Some(t) => t.pair(node, dest).blocked,
            None => table::compute_blocked(&self.mesh, &self.pattern, node, dest),
        }
    }

    /// The complete Boppana–Chalasani ring-entry state for a message
    /// blocked at `node` bound for `dest` (blocking region, ring position,
    /// orientation, message type, entry distance). `None` when the pair is
    /// not blocked.
    #[inline]
    pub fn ring_entry(&self, node: NodeId, dest: NodeId) -> Option<RingState> {
        match &self.table {
            Some(t) => t.ring_entry(node, dest),
            None => table::compute_ring_entry(&self.mesh, &self.pattern, &self.rings, node, dest),
        }
    }

    /// [`RoutingContext::blocked_by_fault`] and
    /// [`RoutingContext::ring_entry`] in one call: a single fused
    /// index computation on the table-backed path. The entry component is
    /// `None` whenever the pair is not blocked.
    #[inline]
    pub fn blocked_ring_entry(&self, node: NodeId, dest: NodeId) -> (bool, Option<RingState>) {
        match &self.table {
            Some(t) => t.blocked_ring_entry(node, dest),
            None => {
                let blocked = table::compute_blocked(&self.mesh, &self.pattern, node, dest);
                let entry = if blocked {
                    table::compute_ring_entry(&self.mesh, &self.pattern, &self.rings, node, dest)
                } else {
                    None
                };
                (blocked, entry)
            }
        }
    }

    /// Directions from `node` whose neighbor is fault-free and safe under
    /// the Boura–Das labeling.
    #[inline]
    pub fn safe_directions(&self, node: NodeId) -> DirectionSet {
        match &self.table {
            Some(t) => t.safe_dirs(node),
            None => table::compute_safe_dirs(&self.mesh, &self.pattern, &self.labeling, node),
        }
    }

    /// Whether moving from `node` in `dir` stays in-mesh and lands on a
    /// fault-free node.
    #[inline]
    pub fn healthy_step(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.mesh
            .neighbor(node, dir)
            .filter(|&v| !self.pattern.is_faulty(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_topology::Coord;

    #[test]
    fn fault_free_context() {
        let mesh = Mesh::square(10);
        let ctx = RoutingContext::new(mesh.clone(), FaultPattern::fault_free(&mesh));
        let a = mesh.node(0, 0);
        let b = mesh.node(9, 9);
        assert_eq!(ctx.healthy_minimal_directions(a, b).len(), 2);
        assert!(!ctx.blocked_by_fault(a, b));
        assert_eq!(ctx.rings().rings().len(), 0);
        assert!(ctx.table().is_some());
        assert_eq!(ctx.epoch(), 0);
    }

    #[test]
    fn blocked_by_single_fault_straight_line() {
        let mesh = Mesh::square(10);
        let pattern = FaultPattern::from_faulty_coords(&mesh, [Coord::new(5, 5)]).unwrap();
        let ctx = RoutingContext::new(mesh.clone(), pattern);
        // Message at (4,5) destined to (9,5): only minimal dir is East, into
        // the fault → blocked.
        assert!(ctx.blocked_by_fault(mesh.node(4, 5), mesh.node(9, 5)));
        // Destined to (9,6): North is still healthy → not blocked.
        assert!(!ctx.blocked_by_fault(mesh.node(4, 5), mesh.node(9, 6)));
        // At destination → never blocked.
        assert!(!ctx.blocked_by_fault(mesh.node(4, 5), mesh.node(4, 5)));
    }

    #[test]
    fn with_pattern_matches_fresh_context() {
        let mesh = Mesh::square(10);
        let base = FaultPattern::from_faulty_coords(&mesh, [Coord::new(2, 2)]).unwrap();
        let ctx = RoutingContext::new(mesh.clone(), base.clone());
        let ext = base.extend(&mesh, [Coord::new(7, 7)]).unwrap();
        let derived = ctx.with_pattern(ext.clone());
        let fresh = RoutingContext::new(mesh.clone(), ext);
        assert_eq!(derived.rings().rings().len(), fresh.rings().rings().len());
        for (a, b) in derived.rings().rings().iter().zip(fresh.rings().rings()) {
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.is_closed(), b.is_closed());
        }
        for n in mesh.nodes() {
            assert_eq!(derived.labeling().label(n), fresh.labeling().label(n));
        }
        // The original context is untouched.
        assert_eq!(ctx.pattern().num_seed_faulty(), 1);
    }

    #[test]
    fn healthy_step_filters_faults() {
        let mesh = Mesh::square(10);
        let pattern = FaultPattern::from_faulty_coords(&mesh, [Coord::new(5, 5)]).unwrap();
        let ctx = RoutingContext::new(mesh.clone(), pattern);
        assert!(ctx.healthy_step(mesh.node(4, 5), Direction::East).is_none());
        assert!(ctx
            .healthy_step(mesh.node(4, 5), Direction::North)
            .is_some());
        assert!(ctx.healthy_step(mesh.node(0, 0), Direction::West).is_none());
    }
}
