//! Boura–Das routing (paper §3, ref [7]): the adaptive base discipline and
//! the labeling-based fault-tolerant variant the paper compares against the
//! BC-fortified algorithms.
//!
//! Reconstruction (the paper only cites [7]; see DESIGN.md §3.4):
//!
//! - **Boura (Adaptive)** partitions the VCs into two virtual networks by
//!   the message's vertical travel direction: north-going messages (dest
//!   row ≥ current row) use the lower half, south-going the upper half.
//!   Within a network a message takes any minimal direction on any free VC.
//!   Each network only ever moves {E, W, N} (resp. {E, W, S}) and minimal
//!   row messages never reverse, so the per-network channel dependency
//!   graph is acyclic — the discipline is deadlock-free.
//! - **Boura (Fault-Tolerant)** adds the node labeling
//!   ([`wormsim_fault::NodeLabeling`]): unsafe nodes are avoided like
//!   faults, and a message whose shortest paths are all blocked detours
//!   around the labeled obstacle with a wall-following rule until it gets
//!   strictly closer to its destination than where the detour began.

use crate::context::RoutingContext;
use crate::state::{Candidates, MessageState, VcMask};
use crate::traits::BaseRouting;
use std::sync::Arc;
use wormsim_topology::{Direction, DirectionSet, NodeId};

/// Boura–Das adaptive routing: Y-partitioned dual virtual networks.
pub struct BouraAdaptive {
    ctx: Arc<RoutingContext>,
    vcs: u8,
}

impl BouraAdaptive {
    /// Build with `budget` base VCs, split evenly between the two networks.
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        assert!(budget >= 2, "Boura needs at least 2 VCs (one per network)");
        BouraAdaptive { ctx, vcs: budget }
    }

    /// The VC mask of the virtual network a message at `node` uses:
    /// lower half when traveling north or horizontally, upper half when
    /// traveling south. Re-evaluated per hop so that fault detours cannot
    /// strand a message in the wrong network.
    fn network_mask(&self, node: NodeId, dest: NodeId) -> VcMask {
        let mesh = self.ctx.mesh();
        let half = self.vcs / 2;
        if mesh.coord(dest).y >= mesh.coord(node).y {
            VcMask::range(0, half - 1)
        } else {
            VcMask::range(half, self.vcs - 1)
        }
    }
}

impl BaseRouting for BouraAdaptive {
    fn name(&self) -> &'static str {
        "Boura (Adaptive)"
    }

    fn base_vcs(&self) -> u8 {
        self.vcs
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mask = self.network_mask(node, st.dest);
        let mut out = Candidates::none();
        for dir in self.ctx.mesh().minimal_directions(node, st.dest).iter() {
            out.push_simple(dir, mask);
        }
        out
    }

    fn on_normal_hop(
        &self,
        _from: NodeId,
        _to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

/// Boura–Das fault-tolerant routing: the adaptive discipline plus node
/// labeling. Unsafe-labeled (but healthy) next nodes are avoided whenever a
/// safe shortest-path link exists, and used as a fallback tier otherwise —
/// at high fault rates the *safe* subgraph may be disconnected while the
/// healthy network is not, so unsafe nodes must remain usable. When every
/// shortest-path link is blocked by actual faults, the surrounding
/// fault-region traversal is delegated to the ring machinery of the
/// [`crate::BoppanaChalasani`] wrapper this base is built with (fault
/// blocks are convex rectangles, so ring traversal is exactly the detour
/// Boura–Das's labeling produces around them; see DESIGN.md §3.4).
pub struct BouraFaultTolerant {
    ctx: Arc<RoutingContext>,
    vcs: u8,
}

impl BouraFaultTolerant {
    /// Build with `budget` base VCs (the BC wrapper adds its 4 detour VCs
    /// on top).
    pub fn new(ctx: Arc<RoutingContext>, budget: u8) -> Self {
        assert!(budget >= 2);
        BouraFaultTolerant { ctx, vcs: budget }
    }

    fn network_mask(&self, node: NodeId, dest: NodeId) -> VcMask {
        let mesh = self.ctx.mesh();
        let half = self.vcs / 2;
        if mesh.coord(dest).y >= mesh.coord(node).y {
            VcMask::range(0, half - 1)
        } else {
            VcMask::range(half, self.vcs - 1)
        }
    }

    /// Minimal directions with non-faulty next nodes, split into
    /// (safe-or-destination, merely-non-faulty) preference tiers. Both
    /// tiers come from the context's precomputed direction sets: `any` is
    /// the healthy-minimal set, and the preferred tier intersects it with
    /// the safe-labeled set — except one hop out, where the single minimal
    /// link lands on the destination itself and is preferred regardless of
    /// its label.
    fn tiered_minimal(&self, node: NodeId, dest: NodeId) -> (DirectionSet, DirectionSet) {
        let any = self.ctx.healthy_minimal_directions(node, dest);
        let preferred = if self.ctx.mesh().distance(node, dest) == 1 {
            any
        } else {
            any.intersect(self.ctx.safe_directions(node))
        };
        (preferred, any)
    }
}

impl BaseRouting for BouraFaultTolerant {
    fn name(&self) -> &'static str {
        "Boura (Fault-Tolerant)"
    }

    fn base_vcs(&self) -> u8 {
        self.vcs
    }

    fn init_message(&self, src: NodeId, dest: NodeId) -> MessageState {
        MessageState::new(src, dest)
    }

    fn candidates(&self, node: NodeId, st: &mut MessageState) -> Candidates {
        let mut out = Candidates::none();
        if node == st.dest {
            return out;
        }
        let (safe, any) = self.tiered_minimal(node, st.dest);
        let mask = self.network_mask(node, st.dest);
        for dir in any.iter() {
            if safe.contains(dir) {
                out.push(crate::state::CandidateHop {
                    dir,
                    preferred: mask,
                    fallback: VcMask::EMPTY,
                });
            } else {
                out.push(crate::state::CandidateHop {
                    dir,
                    preferred: VcMask::EMPTY,
                    fallback: mask,
                });
            }
        }
        out
    }

    fn on_normal_hop(
        &self,
        _from: NodeId,
        _to: NodeId,
        _dir: Direction,
        _vc: u8,
        st: &mut MessageState,
    ) {
        st.normal_hops += 1;
    }

    fn is_deadlock_free(&self) -> bool {
        true
    }

    fn context(&self) -> &RoutingContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_fault::FaultPattern;
    use wormsim_topology::{Coord, Mesh, Rect};

    fn free_ctx() -> Arc<RoutingContext> {
        let mesh = Mesh::square(10);
        Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ))
    }

    #[test]
    fn adaptive_network_split() {
        let c = free_ctx();
        let mesh = c.mesh().clone();
        let b = BouraAdaptive::new(c, 20);
        // North-going message → lower half.
        let mut st = b.init_message(mesh.node(0, 0), mesh.node(5, 5));
        let cands = b.candidates(mesh.node(0, 0), &mut st);
        for h in cands.iter() {
            assert_eq!(h.preferred, VcMask::range(0, 9));
        }
        // South-going message → upper half.
        let mut st = b.init_message(mesh.node(5, 9), mesh.node(5, 0));
        let cands = b.candidates(mesh.node(5, 9), &mut st);
        for h in cands.iter() {
            assert_eq!(h.preferred, VcMask::range(10, 19));
        }
        // Row message → lower half.
        let mut st = b.init_message(mesh.node(0, 4), mesh.node(9, 4));
        let cands = b.candidates(mesh.node(0, 4), &mut st);
        assert_eq!(cands.iter().next().unwrap().preferred, VcMask::range(0, 9));
    }

    #[test]
    fn adaptive_is_minimal() {
        let c = free_ctx();
        let mesh = c.mesh().clone();
        let b = BouraAdaptive::new(c, 20);
        let mut st = b.init_message(mesh.node(3, 3), mesh.node(1, 7));
        let cands = b.candidates(mesh.node(3, 3), &mut st);
        assert_eq!(cands.len(), 2);
        assert!(cands.for_dir(Direction::West).is_some());
        assert!(cands.for_dir(Direction::North).is_some());
    }

    fn walled_ctx() -> (Arc<RoutingContext>, Mesh) {
        let mesh = Mesh::square(10);
        // A 1x3 wall at x=5 rows 4..6.
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(5, 4), Coord::new(5, 6))])
                .unwrap();
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
        (ctx, mesh)
    }

    #[test]
    fn ft_blocked_when_only_minimal_link_is_faulty() {
        let (c, mesh) = walled_ctx();
        let b = BouraFaultTolerant::new(c, 20);
        // At (4,5) heading to (6,5): the only minimal dir (East) is faulty;
        // the base has no candidates — the BC wrapper takes over with ring
        // traversal.
        let mut st = b.init_message(mesh.node(4, 5), mesh.node(6, 5));
        let cands = b.candidates(mesh.node(4, 5), &mut st);
        assert!(cands.is_empty());
    }

    #[test]
    fn ft_unblocked_routes_minimally() {
        let (c, mesh) = walled_ctx();
        let b = BouraFaultTolerant::new(c, 20);
        let mut st = b.init_message(mesh.node(0, 0), mesh.node(2, 2));
        let cands = b.candidates(mesh.node(0, 0), &mut st);
        assert_eq!(cands.len(), 2);
        for h in cands.iter() {
            assert!(
                !h.preferred.is_empty(),
                "safe hops sit in the preferred tier"
            );
        }
    }

    #[test]
    fn ft_prefers_safe_but_allows_unsafe_when_necessary() {
        let mesh = Mesh::square(10);
        // Two walls with a one-wide unsafe slot at column 4.
        let pattern = FaultPattern::from_rects(
            &mesh,
            &[
                Rect::new(Coord::new(3, 4), Coord::new(3, 6)),
                Rect::new(Coord::new(5, 4), Coord::new(5, 6)),
            ],
        )
        .unwrap();
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
        assert!(!ctx.labeling().is_safe(mesh.node(4, 5)));
        let b = BouraFaultTolerant::new(ctx, 20);
        // At (4,4) heading to (4,7): the only minimal dir (North) leads into
        // the unsafe slot — offered, but only as fallback.
        let mut st = b.init_message(mesh.node(4, 4), mesh.node(4, 7));
        let cands = b.candidates(mesh.node(4, 4), &mut st);
        assert_eq!(cands.len(), 1);
        let h = cands.iter().next().unwrap();
        assert_eq!(h.dir, Direction::North);
        assert!(h.preferred.is_empty());
        assert!(!h.fallback.is_empty());
        // With a safe alternative, only the safe hop carries the preferred
        // tier: at (4,3)→(6,7), North is unsafe (4,4), East is safe.
        let mut st = b.init_message(mesh.node(4, 3), mesh.node(6, 7));
        let cands = b.candidates(mesh.node(4, 3), &mut st);
        assert_eq!(cands.len(), 2);
        let north = cands.for_dir(Direction::North).unwrap();
        assert!(north.preferred.is_empty() && !north.fallback.is_empty());
        let east = cands.for_dir(Direction::East).unwrap();
        assert!(!east.preferred.is_empty() && east.fallback.is_empty());
    }

    #[test]
    fn ft_full_algorithm_delivers_through_bc_wrapper() {
        use crate::{build_algorithm, AlgorithmKind, VcConfig};
        let (c, mesh) = walled_ctx();
        let algo = build_algorithm(AlgorithmKind::BouraFaultTolerant, c, VcConfig::paper());
        assert_eq!(algo.num_vcs(), 24);
        let (src, dest) = (mesh.node(4, 5), mesh.node(6, 5));
        let mut st = algo.init_message(src, dest);
        let mut cur = src;
        let mut hops = 0;
        while cur != dest {
            let cands = algo.route(cur, &mut st);
            assert!(!cands.is_empty(), "stuck at {:?}", mesh.coord(cur));
            let h = cands.iter().next().unwrap();
            let mask = if h.preferred.is_empty() {
                h.fallback
            } else {
                h.preferred
            };
            let vc = mask.iter().next().unwrap();
            let next = mesh.neighbor(cur, h.dir).unwrap();
            algo.on_hop(cur, next, h.dir, vc, &mut st);
            cur = next;
            hops += 1;
            assert!(hops < 50, "detour did not terminate");
        }
        assert!(hops > mesh.distance(src, dest), "a detour was required");
    }
}
