//! # wormsim-routing
//!
//! The ten adaptive routing algorithms compared by the paper, plus the
//! Boppana–Chalasani (BC) f-ring fault-tolerance overlay that fortifies
//! them (paper §3–§4).
//!
//! ## Algorithm roster (paper §6)
//!
//! | Paper name | Type | VC discipline (24 VCs/PC on a 10×10 mesh) |
//! |---|---|---|
//! | PHop | basic, hop-based | 19 hop classes × 1 VC + 4 BC VCs |
//! | NHop | basic, hop-based | 10 negative-hop classes × 2 VCs + 4 BC VCs |
//! | Pbc | PHop + bonus cards | same layout as PHop |
//! | Nbc | NHop + bonus cards | same layout as NHop |
//! | Duato's routing | basic | 18 adaptive (class I) + 2 XY escape (class II) + 4 BC |
//! | Duato-Pbc | modified | 1 adaptive + 19 Pbc escape + 4 BC |
//! | Duato-Nbc | modified | 10 adaptive + 10 Nbc escape + 4 BC |
//! | Minimal-Adaptive | basic | 20 free VCs + 4 BC |
//! | Fully-Adaptive | basic | 20 free VCs + 4 BC, ≤ 10 misroutes |
//! | Boura (Adaptive) | basic | 2 × 10-VC Y-partitioned virtual networks + 4 BC |
//! | Boura (Fault-Tolerant) | comparison | node labeling instead of the BC overlay |
//!
//! Every algorithm implements [`RoutingAlgorithm`]; the simulation engine is
//! algorithm-agnostic. Use [`build_algorithm`] to construct any roster entry
//! bound to a [`RoutingContext`] (mesh + fault pattern + f-rings + labeling).
//!
//! ```
//! use std::sync::Arc;
//! use wormsim_topology::Mesh;
//! use wormsim_fault::FaultPattern;
//! use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
//!
//! let mesh = Mesh::square(10);
//! let pattern = FaultPattern::fault_free(&mesh);
//! let ctx = Arc::new(RoutingContext::new(mesh, pattern));
//! let algo = build_algorithm(AlgorithmKind::DuatoNbc, ctx, VcConfig::paper());
//! assert_eq!(algo.num_vcs(), 24);
//! let mut st = algo.init_message(wormsim_topology::NodeId(0), wormsim_topology::NodeId(99));
//! let cands = algo.route(wormsim_topology::NodeId(0), &mut st);
//! assert!(!cands.is_empty());
//! ```

mod adaptive;
mod bonus_cards;
mod boppana_chalasani;
mod boura;
mod context;
mod duato;
mod hop_based;
mod state;
mod table;
mod traits;
mod turn_model;

pub use adaptive::{FullyAdaptive, MinimalAdaptive};
pub use bonus_cards::{Nbc, Pbc};
pub use boppana_chalasani::BoppanaChalasani;
pub use boura::{BouraAdaptive, BouraFaultTolerant};
pub use context::RoutingContext;
pub use duato::{Duato, EscapeKind};
pub use hop_based::{NHop, PHop};
pub use state::{CandidateHop, Candidates, MessageState, MessageType, RingState, VcMask};
pub use table::{GeometryTable, PairEntry};
pub use traits::{greedy_trace, BaseRouting, Plain, RoutingAlgorithm, TraceError};
pub use turn_model::{DimensionOrder, TurnModel, TurnModelKind};

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The roster of algorithms evaluated by the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Positive-hop routing (buffer class = hops taken).
    PHop,
    /// Negative-hop routing (buffer class = negative hops taken).
    NHop,
    /// PHop with bonus cards.
    Pbc,
    /// NHop with bonus cards.
    Nbc,
    /// Duato's methodology with a dimension-order (XY) escape.
    Duato,
    /// Duato's methodology with a Pbc escape.
    DuatoPbc,
    /// Duato's methodology with an Nbc escape.
    DuatoNbc,
    /// Minimal adaptive routing with free VC choice.
    MinimalAdaptive,
    /// Fully adaptive routing (bounded misrouting) with free VC choice.
    FullyAdaptive,
    /// Boura–Das adaptive routing (Y-partitioned virtual networks).
    BouraAdaptive,
    /// Boura–Das fault-tolerant routing (node labeling, no BC overlay).
    BouraFaultTolerant,
    /// Deterministic dimension-order routing (extension baseline).
    Xy,
    /// Glass–Ni west-first turn model (extension baseline).
    WestFirst,
    /// Glass–Ni north-last turn model (extension baseline).
    NorthLast,
    /// Glass–Ni negative-first turn model (extension baseline).
    NegativeFirst,
}

impl AlgorithmKind {
    /// All eleven roster entries, in the paper's Figure 4/5 legend order.
    pub const ALL: [AlgorithmKind; 11] = [
        AlgorithmKind::BouraAdaptive,
        AlgorithmKind::FullyAdaptive,
        AlgorithmKind::Nbc,
        AlgorithmKind::NHop,
        AlgorithmKind::PHop,
        AlgorithmKind::Pbc,
        AlgorithmKind::MinimalAdaptive,
        AlgorithmKind::Duato,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::DuatoPbc,
        AlgorithmKind::BouraFaultTolerant,
    ];

    /// The ten algorithms of Figures 1–2 (everything except the
    /// fault-tolerant Boura variant, which only appears in fault cases).
    pub const FAULT_FREE_TEN: [AlgorithmKind; 10] = [
        AlgorithmKind::Duato,
        AlgorithmKind::BouraAdaptive,
        AlgorithmKind::FullyAdaptive,
        AlgorithmKind::Nbc,
        AlgorithmKind::NHop,
        AlgorithmKind::PHop,
        AlgorithmKind::Pbc,
        AlgorithmKind::DuatoPbc,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::MinimalAdaptive,
    ];

    /// The extension baselines (not part of the paper's roster): the
    /// deterministic and turn-model routings used by the ablation studies.
    pub const EXTENDED_BASELINES: [AlgorithmKind; 4] = [
        AlgorithmKind::Xy,
        AlgorithmKind::WestFirst,
        AlgorithmKind::NorthLast,
        AlgorithmKind::NegativeFirst,
    ];

    /// The display name used in the paper's figure legends.
    pub fn paper_name(self) -> &'static str {
        match self {
            AlgorithmKind::PHop => "PHop",
            AlgorithmKind::NHop => "NHop",
            AlgorithmKind::Pbc => "Pbc",
            AlgorithmKind::Nbc => "Nbc",
            AlgorithmKind::Duato => "Duato's routing",
            AlgorithmKind::DuatoPbc => "Duato-Pbc",
            AlgorithmKind::DuatoNbc => "Duato-Nbc",
            AlgorithmKind::MinimalAdaptive => "Minimal-Adaptive",
            AlgorithmKind::FullyAdaptive => "Fully-Adaptive",
            AlgorithmKind::BouraAdaptive => "Boura (Adaptive)",
            AlgorithmKind::BouraFaultTolerant => "Boura (Fault-Tolerant)",
            AlgorithmKind::Xy => "XY (dimension-order)",
            AlgorithmKind::WestFirst => "West-First",
            AlgorithmKind::NorthLast => "North-Last",
            AlgorithmKind::NegativeFirst => "Negative-First",
        }
    }
}

impl core::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Virtual-channel budget configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VcConfig {
    /// Total VCs per physical channel (paper: 24).
    pub total: u8,
    /// VCs reserved for the Boppana–Chalasani overlay (paper: 4).
    pub bc_vcs: u8,
    /// Fully-Adaptive misroute cap (paper: 10).
    pub misroute_limit: u8,
}

impl VcConfig {
    /// The paper's configuration: 24 VCs, 4 of them for the BC scheme,
    /// misroute cap 10.
    pub fn paper() -> Self {
        VcConfig {
            total: 24,
            bc_vcs: 4,
            misroute_limit: 10,
        }
    }

    /// A custom total with the paper's other parameters.
    pub fn with_total(total: u8) -> Self {
        VcConfig {
            total,
            ..VcConfig::paper()
        }
    }
}

/// The minimum total VC count (base + BC overlay) `kind` requires on
/// `mesh`. Used by the VC-budget and mesh-size ablations to skip
/// infeasible combinations.
pub fn min_total_vcs(kind: AlgorithmKind, mesh: &wormsim_topology::Mesh, bc_vcs: u8) -> u8 {
    let phop_classes = (mesh.diameter() + 1) as u8;
    let nhop_classes = (mesh.max_negative_hops_bound() + 1) as u8;
    let base = match kind {
        AlgorithmKind::PHop | AlgorithmKind::Pbc => phop_classes,
        AlgorithmKind::NHop | AlgorithmKind::Nbc => nhop_classes,
        AlgorithmKind::Duato => 3,
        AlgorithmKind::DuatoPbc => phop_classes + 1,
        AlgorithmKind::DuatoNbc => nhop_classes + 1,
        AlgorithmKind::MinimalAdaptive | AlgorithmKind::FullyAdaptive => 1,
        AlgorithmKind::BouraAdaptive | AlgorithmKind::BouraFaultTolerant => 2,
        AlgorithmKind::Xy
        | AlgorithmKind::WestFirst
        | AlgorithmKind::NorthLast
        | AlgorithmKind::NegativeFirst => 1,
    };
    base + bc_vcs
}

/// Construct any roster algorithm bound to a routing context.
///
/// All algorithms except `BouraFaultTolerant` are fortified with the
/// Boppana–Chalasani overlay (paper §3: "we incorporate the routing scheme
/// suggested by Boppana and Chalasani"); the Boura fault-tolerant scheme
/// uses its node labeling instead.
pub fn build_algorithm(
    kind: AlgorithmKind,
    ctx: Arc<RoutingContext>,
    cfg: VcConfig,
) -> Box<dyn RoutingAlgorithm> {
    assert!(cfg.total as u32 <= 32, "VcMask supports at most 32 VCs");
    assert!(cfg.bc_vcs <= cfg.total);
    let base_budget = cfg.total - cfg.bc_vcs;
    let bc = move |base: Box<dyn BaseRouting>| -> Box<dyn RoutingAlgorithm> {
        Box::new(BoppanaChalasani::new(base, base_budget, cfg.bc_vcs))
    };
    match kind {
        AlgorithmKind::PHop => bc(Box::new(PHop::new(ctx, base_budget))),
        AlgorithmKind::NHop => bc(Box::new(NHop::new(ctx, base_budget))),
        AlgorithmKind::Pbc => bc(Box::new(Pbc::new(ctx, base_budget))),
        AlgorithmKind::Nbc => bc(Box::new(Nbc::new(ctx, base_budget))),
        AlgorithmKind::Duato => bc(Box::new(Duato::new(ctx, base_budget, EscapeKind::Xy))),
        AlgorithmKind::DuatoPbc => bc(Box::new(Duato::new(ctx, base_budget, EscapeKind::Pbc))),
        AlgorithmKind::DuatoNbc => bc(Box::new(Duato::new(ctx, base_budget, EscapeKind::Nbc))),
        AlgorithmKind::MinimalAdaptive => bc(Box::new(MinimalAdaptive::new(ctx, base_budget))),
        AlgorithmKind::FullyAdaptive => bc(Box::new(FullyAdaptive::new(
            ctx,
            base_budget,
            cfg.misroute_limit,
        ))),
        AlgorithmKind::BouraAdaptive => bc(Box::new(BouraAdaptive::new(ctx, base_budget))),
        AlgorithmKind::BouraFaultTolerant => {
            bc(Box::new(BouraFaultTolerant::new(ctx, base_budget)))
        }
        AlgorithmKind::Xy => bc(Box::new(DimensionOrder::new(ctx, base_budget))),
        AlgorithmKind::WestFirst => bc(Box::new(TurnModel::new(
            ctx,
            base_budget,
            TurnModelKind::WestFirst,
        ))),
        AlgorithmKind::NorthLast => bc(Box::new(TurnModel::new(
            ctx,
            base_budget,
            TurnModelKind::NorthLast,
        ))),
        AlgorithmKind::NegativeFirst => bc(Box::new(TurnModel::new(
            ctx,
            base_budget,
            TurnModelKind::NegativeFirst,
        ))),
    }
}
