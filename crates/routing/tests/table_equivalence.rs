//! Property tests pinning the geometry-table fast path to the direct
//! computation it caches: for random fault patterns — including online
//! `extend` chains rebuilt incrementally via `with_pattern` — every
//! per-pair query and every algorithm's full `route()` answer must be
//! identical between a tabled context and a table-less one.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::{Mesh, NodeId};

/// A base pattern plus a chain of online extension events, all derived
/// deterministically from `seed`. Returns the chained-tabled context
/// (built fresh, then advanced with `with_pattern` once per event) and
/// the final pattern.
fn chained_context(
    mesh: &Mesh,
    seed: u64,
    faults: usize,
    events: usize,
) -> Option<(RoutingContext, FaultPattern)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pattern = if faults == 0 {
        FaultPattern::fault_free(mesh)
    } else {
        wormsim_fault::random_pattern(mesh, faults, &mut rng).ok()?
    };
    let mut ctx = RoutingContext::new(mesh.clone(), pattern.clone());
    let mut pattern = pattern;
    for _ in 0..events {
        let healthy: Vec<NodeId> = pattern.healthy_nodes(mesh).collect();
        let Some(&n) = healthy.choose(&mut rng) else {
            break;
        };
        let Ok(ext) = pattern.extend(mesh, [mesh.coord(n)]) else {
            continue; // event would disconnect the mesh — skip it
        };
        ctx = ctx.with_pattern(ext.clone());
        pattern = ext;
    }
    Some((ctx, pattern))
}

/// Entry-wise comparison of every tabled query against `direct` (which
/// must be table-less, i.e. computing from first principles).
fn assert_queries_match(
    tabled: &RoutingContext,
    direct: &RoutingContext,
    what: &str,
) -> Result<(), TestCaseError> {
    let mesh = tabled.mesh();
    for node in mesh.nodes() {
        prop_assert_eq!(
            tabled.safe_directions(node),
            direct.safe_directions(node),
            "{}: safe_directions({:?})",
            what,
            node
        );
        for dest in mesh.nodes() {
            prop_assert_eq!(
                tabled.healthy_minimal_directions(node, dest),
                direct.healthy_minimal_directions(node, dest),
                "{}: healthy_minimal({:?},{:?})",
                what,
                node,
                dest
            );
            prop_assert_eq!(
                tabled.blocked_by_fault(node, dest),
                direct.blocked_by_fault(node, dest),
                "{}: blocked({:?},{:?})",
                what,
                node,
                dest
            );
            prop_assert_eq!(
                tabled.ring_entry(node, dest),
                direct.ring_entry(node, dest),
                "{}: ring_entry({:?},{:?})",
                what,
                node,
                dest
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tabled contexts — fresh-built and incrementally rebuilt through a
    /// chain of fault-extension events — answer every geometry query
    /// exactly like the direct computation.
    #[test]
    fn table_queries_match_direct(
        seed in any::<u64>(),
        side in 6u16..=8,
        faults in 0usize..=6,
        events in 0usize..=3,
    ) {
        let mesh = Mesh::square(side);
        let Some((chained, pattern)) = chained_context(&mesh, seed, faults, events) else {
            return Ok(());
        };
        let direct = RoutingContext::new_direct(mesh.clone(), pattern.clone());
        let fresh = RoutingContext::new(mesh.clone(), pattern);
        assert_queries_match(&chained, &direct, "chained")?;
        assert_queries_match(&fresh, &direct, "fresh")?;
    }

    /// Every roster algorithm returns bit-identical candidates whether its
    /// context resolves geometry through the table or directly.
    #[test]
    fn route_matches_direct_for_all_algorithms(
        seed in any::<u64>(),
        faults in 0usize..=6,
        events in 0usize..=2,
    ) {
        let mesh = Mesh::square(6);
        let Some((chained, pattern)) = chained_context(&mesh, seed, faults, events) else {
            return Ok(());
        };
        let tabled = Arc::new(chained);
        let direct = Arc::new(RoutingContext::new_direct(mesh.clone(), pattern.clone()));
        let healthy: Vec<NodeId> = pattern.healthy_nodes(&mesh).collect();
        for kind in AlgorithmKind::ALL {
            let a = build_algorithm(kind, tabled.clone(), VcConfig::paper());
            let b = build_algorithm(kind, direct.clone(), VcConfig::paper());
            for &src in &healthy {
                for &dest in &healthy {
                    if src == dest {
                        continue;
                    }
                    let mut sa = a.init_message(src, dest);
                    let mut sb = b.init_message(src, dest);
                    let ca = a.route(src, &mut sa);
                    let cb = b.route(src, &mut sb);
                    prop_assert_eq!(
                        ca,
                        cb,
                        "{:?}: candidates diverge at {:?}->{:?}",
                        kind,
                        src,
                        dest
                    );
                    prop_assert_eq!(sa.ring, sb.ring, "{:?}: ring state diverges", kind);
                }
            }
        }
    }

    /// Lockstep greedy walks through tabled and direct contexts take the
    /// same path hop for hop (exercises on-ring traversal state, not just
    /// the first decision).
    #[test]
    fn greedy_walks_match_direct(
        seed in any::<u64>(),
        faults in 1usize..=6,
        events in 0usize..=2,
        a in 0usize..10_000,
        b in 0usize..10_000,
    ) {
        let mesh = Mesh::square(8);
        let Some((chained, pattern)) = chained_context(&mesh, seed, faults, events) else {
            return Ok(());
        };
        let tabled = Arc::new(chained);
        let direct = Arc::new(RoutingContext::new_direct(mesh.clone(), pattern.clone()));
        let healthy: Vec<NodeId> = pattern.healthy_nodes(&mesh).collect();
        let src = healthy[a % healthy.len()];
        let dest = healthy[b % healthy.len()];
        if src == dest {
            return Ok(());
        }
        for kind in AlgorithmKind::ALL {
            let ta = build_algorithm(kind, tabled.clone(), VcConfig::paper());
            let tb = build_algorithm(kind, direct.clone(), VcConfig::paper());
            let mut sa = ta.init_message(src, dest);
            let mut sb = tb.init_message(src, dest);
            let mut cur = src;
            let mut hops = 0u32;
            while cur != dest && hops <= 400 {
                let ca = ta.route(cur, &mut sa);
                let cb = tb.route(cur, &mut sb);
                prop_assert_eq!(&ca, &cb, "{:?}: walk diverges at {:?}", kind, cur);
                let Some(hop) = ca.iter().next() else { break };
                let mask = if hop.preferred.is_empty() {
                    hop.fallback
                } else {
                    hop.preferred
                };
                let vc = mask.iter().next().unwrap_or(0);
                let Some(next) = mesh.neighbor(cur, hop.dir) else { break };
                ta.on_hop(cur, next, hop.dir, vc, &mut sa);
                tb.on_hop(cur, next, hop.dir, vc, &mut sb);
                cur = next;
                hops += 1;
            }
        }
    }
}
