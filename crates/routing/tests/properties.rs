//! Property-based tests over the routing algorithms: delivery by greedy
//! walks, class-ladder monotonicity, and candidate well-formedness, on
//! random fault patterns and endpoint pairs.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::{Mesh, NodeId};

fn context(seed: u64, faults: usize) -> Option<Arc<RoutingContext>> {
    let mesh = Mesh::square(10);
    let pattern = if faults == 0 {
        FaultPattern::fault_free(&mesh)
    } else {
        let mut rng = SmallRng::seed_from_u64(seed);
        wormsim_fault::random_pattern(&mesh, faults, &mut rng).ok()?
    };
    Some(Arc::new(RoutingContext::new(mesh, pattern)))
}

fn pick_endpoints(ctx: &RoutingContext, a: usize, b: usize) -> Option<(NodeId, NodeId)> {
    let healthy: Vec<NodeId> = ctx.pattern().healthy_nodes(ctx.mesh()).collect();
    let src = healthy[a % healthy.len()];
    let dest = healthy[b % healthy.len()];
    (src != dest).then_some((src, dest))
}

/// Greedy walk: always take the first candidate direction and its lowest
/// permitted VC. Must reach the destination within a generous hop bound
/// without ever stepping on a faulty node or using an out-of-range VC.
fn greedy_walk(
    ctx: Arc<RoutingContext>,
    kind: AlgorithmKind,
    src: NodeId,
    dest: NodeId,
) -> Result<u32, String> {
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let mesh = ctx.mesh();
    let mut st = algo.init_message(src, dest);
    let mut cur = src;
    let mut hops = 0u32;
    let bound = 400;
    while cur != dest {
        let cands = algo.route(cur, &mut st);
        if cands.is_empty() {
            return Err(format!("{kind:?}: no candidates at {:?}", mesh.coord(cur)));
        }
        let hop = cands.iter().next().unwrap();
        let mask = if hop.preferred.is_empty() {
            hop.fallback
        } else {
            hop.preferred
        };
        let vc = mask
            .iter()
            .next()
            .ok_or_else(|| format!("{kind:?}: empty mask"))?;
        if vc >= algo.num_vcs() {
            return Err(format!("{kind:?}: vc {vc} out of range"));
        }
        let next = mesh
            .neighbor(cur, hop.dir)
            .ok_or_else(|| format!("{kind:?}: off-mesh candidate"))?;
        if ctx.pattern().is_faulty(next) {
            return Err(format!(
                "{kind:?}: routed into fault at {:?}",
                mesh.coord(next)
            ));
        }
        algo.on_hop(cur, next, hop.dir, vc, &mut st);
        cur = next;
        hops += 1;
        if hops > bound {
            return Err(format!("{kind:?}: exceeded {bound} hops"));
        }
    }
    Ok(hops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_walks_deliver_everywhere(
        seed in any::<u64>(),
        faults in 0usize..=10,
        a in 0usize..10_000,
        b in 0usize..10_000,
    ) {
        let Some(ctx) = context(seed, faults) else { return Ok(()); };
        let Some((src, dest)) = pick_endpoints(&ctx, a, b) else { return Ok(()); };
        for kind in AlgorithmKind::ALL {
            match greedy_walk(ctx.clone(), kind, src, dest) {
                Ok(hops) => {
                    let dist = ctx.mesh().distance(src, dest);
                    prop_assert!(hops >= dist, "{:?} arrived in fewer hops than distance", kind);
                    if faults == 0 && kind != AlgorithmKind::FullyAdaptive {
                        prop_assert_eq!(hops, dist, "{:?} non-minimal without faults", kind);
                    }
                }
                Err(e) => return Err(TestCaseError::fail(e)),
            }
        }
    }

    #[test]
    fn phop_vc_ladder_strictly_increases(
        seed in any::<u64>(),
        a in 0usize..10_000,
        b in 0usize..10_000,
    ) {
        let Some(ctx) = context(seed, 0) else { return Ok(()); };
        let Some((src, dest)) = pick_endpoints(&ctx, a, b) else { return Ok(()); };
        let algo = build_algorithm(AlgorithmKind::PHop, ctx.clone(), VcConfig::paper());
        let mesh = ctx.mesh();
        let mut st = algo.init_message(src, dest);
        let mut cur = src;
        let mut prev: Option<u8> = None;
        while cur != dest {
            let cands = algo.route(cur, &mut st);
            let hop = cands.iter().next().unwrap();
            prop_assert_eq!(hop.preferred.count(), 1, "PHop offers exactly one class");
            let vc = hop.preferred.iter().next().unwrap();
            if let Some(p) = prev {
                prop_assert!(vc > p, "ladder not increasing: {p} then {vc}");
            }
            prev = Some(vc);
            let next = mesh.neighbor(cur, hop.dir).unwrap();
            algo.on_hop(cur, next, hop.dir, vc, &mut st);
            cur = next;
        }
    }

    #[test]
    fn bonus_card_masks_respect_class_spaces(
        seed in any::<u64>(),
        a in 0usize..10_000,
        b in 0usize..10_000,
    ) {
        let Some(ctx) = context(seed, 0) else { return Ok(()); };
        let Some((src, dest)) = pick_endpoints(&ctx, a, b) else { return Ok(()); };
        let mesh = ctx.mesh();
        // Pbc: classes = VCs 0..19; mask must sit within and start at or
        // after the previous class + 1.
        let algo = build_algorithm(AlgorithmKind::Pbc, ctx.clone(), VcConfig::paper());
        let mut st = algo.init_message(src, dest);
        let mut cur = src;
        let mut prev_class: Option<u8> = None;
        while cur != dest {
            let cands = algo.route(cur, &mut st);
            let hop = cands.iter().next().unwrap();
            let lo = hop.preferred.iter().next().unwrap();
            let hi = hop.preferred.iter().last().unwrap();
            prop_assert!(hi < 19, "Pbc mask beyond class space: {hi}");
            if let Some(p) = prev_class {
                prop_assert!(lo > p, "Pbc floor {lo} not above previous class {p}");
            }
            // Greedy: take the highest class this time (stresses the cap).
            let vc = hi;
            prev_class = Some(vc);
            let next = mesh.neighbor(cur, hop.dir).unwrap();
            algo.on_hop(cur, next, hop.dir, vc, &mut st);
            cur = next;
        }

        // Nbc: classes × 2 VCs → VCs 0..19, mask floor tracks negative hops.
        let algo = build_algorithm(AlgorithmKind::Nbc, ctx.clone(), VcConfig::paper());
        let mut st = algo.init_message(src, dest);
        let mut cur = src;
        while cur != dest {
            let cands = algo.route(cur, &mut st);
            let hop = cands.iter().next().unwrap();
            let lo = hop.preferred.iter().next().unwrap();
            let hi = hop.preferred.iter().last().unwrap();
            prop_assert!(hi < 20);
            prop_assert!(lo / 2 >= st.negative_hops.min(9), "class below requirement");
            let next = mesh.neighbor(cur, hop.dir).unwrap();
            algo.on_hop(cur, next, hop.dir, lo, &mut st);
            cur = next;
        }
    }

    #[test]
    fn candidates_are_well_formed(
        seed in any::<u64>(),
        faults in 0usize..=8,
        a in 0usize..10_000,
        b in 0usize..10_000,
    ) {
        let Some(ctx) = context(seed, faults) else { return Ok(()); };
        let Some((src, dest)) = pick_endpoints(&ctx, a, b) else { return Ok(()); };
        let mesh = ctx.mesh();
        for kind in AlgorithmKind::ALL {
            let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
            let mut st = algo.init_message(src, dest);
            let cands = algo.route(src, &mut st);
            for hop in cands.iter() {
                // Every candidate stays in-mesh and off faults.
                let next = mesh.neighbor(src, hop.dir);
                prop_assert!(next.is_some(), "{:?} proposed off-mesh hop", kind);
                prop_assert!(
                    !ctx.pattern().is_faulty(next.unwrap()),
                    "{:?} proposed faulty hop",
                    kind
                );
                // Masks stay within the VC budget.
                let all = hop.preferred.union(hop.fallback);
                prop_assert!(!all.is_empty());
                for vc in all.iter() {
                    prop_assert!(vc < algo.num_vcs());
                }
            }
            // Routing twice without a hop is idempotent.
            let again = algo.route(src, &mut st);
            prop_assert_eq!(cands, again, "{:?} route() not idempotent", kind);
        }
    }
}
