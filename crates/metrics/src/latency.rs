//! Message latency accumulation.

use serde::{Deserialize, Serialize};

/// Running statistics over message latencies (flit cycles, generation to
/// tail delivery — source queueing included, as is standard).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: u64,
    max: u64,
    /// Log2-bucketed histogram (bucket i counts latencies in
    /// `[2^i, 2^(i+1))`).
    histogram: Vec<u64>,
}

impl LatencyStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        LatencyStats {
            min: u64::MAX,
            histogram: vec![0; 32],
            ..Default::default()
        }
    }

    /// Rewind to the empty state in place, keeping the histogram
    /// allocation (used by `Simulator::reset` to stay allocation-free).
    pub fn reset(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.min = u64::MAX;
        self.max = 0;
        self.histogram.iter_mut().for_each(|b| *b = 0);
    }

    /// Record one delivered message's latency.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency as f64;
        self.sum_sq += (latency as f64) * (latency as f64);
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(31);
        self.histogram[bucket] += 1;
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
    }

    /// Number of recorded messages.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = (self.sum_sq / self.count as f64 - m * m).max(0.0);
            var.sqrt()
        })
    }

    /// Minimum recorded latency; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum recorded latency; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The log2 histogram (bucket i = `[2^i, 2^(i+1))`).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Approximate p-th percentile (0..=100) from the log2 histogram:
    /// returns the upper bound of the bucket containing the percentile.
    pub fn percentile_upper_bound(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (self.count as f64 * p / 100.0).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << (i + 1));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn mean_and_extremes() {
        let mut s = LatencyStats::new();
        for l in [100, 200, 300] {
            s.record(l);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(200.0));
        assert_eq!(s.min(), Some(100));
        assert_eq!(s.max(), Some(300));
    }

    #[test]
    fn std_dev() {
        let mut s = LatencyStats::new();
        for l in [10, 10, 10] {
            s.record(l);
        }
        assert!(s.std_dev().unwrap() < 1e-9);
        let mut s2 = LatencyStats::new();
        s2.record(0);
        s2.record(20);
        assert!((s2.std_dev().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(100);
        let mut b = LatencyStats::new();
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(200.0));
        assert_eq!(a.max(), Some(300));
    }

    #[test]
    fn histogram_buckets() {
        let mut s = LatencyStats::new();
        s.record(1); // bucket 0
        s.record(2); // bucket 1
        s.record(3); // bucket 1
        s.record(1024); // bucket 10
        assert_eq!(s.histogram()[0], 1);
        assert_eq!(s.histogram()[1], 2);
        assert_eq!(s.histogram()[10], 1);
    }

    #[test]
    fn percentile_bound() {
        let mut s = LatencyStats::new();
        for _ in 0..99 {
            s.record(100); // bucket 6: [64,128)
        }
        s.record(100_000); // bucket 16
        assert_eq!(s.percentile_upper_bound(50.0), Some(128));
        assert!(s.percentile_upper_bound(100.0).unwrap() >= 100_000 / 2);
    }
}
