//! Per-virtual-channel utilization (paper Figure 3).

use serde::{Deserialize, Serialize};

/// Accumulates, per VC index, the number of (physical channel × cycle)
/// slots in which that VC was held by a message. Normalizing by the number
/// of existing physical channels and measured cycles yields the paper's
/// "average usage of virtual channels".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VcUsageStats {
    busy: Vec<u64>,
    channels: u64,
    cycles: u64,
}

impl VcUsageStats {
    /// Accumulator for `num_vcs` VC indices over `channels` physical
    /// channels.
    pub fn new(num_vcs: u8, channels: usize) -> Self {
        VcUsageStats {
            busy: vec![0; num_vcs as usize],
            channels: channels as u64,
            cycles: 0,
        }
    }

    /// Record that VC `vc` (on some channel) was busy this cycle.
    #[inline]
    pub fn record_busy(&mut self, vc: u8) {
        self.busy[vc as usize] += 1;
    }

    /// Advance the measured-cycle count.
    #[inline]
    pub fn tick(&mut self) {
        self.cycles += 1;
    }

    /// Number of VC indices tracked.
    pub fn num_vcs(&self) -> usize {
        self.busy.len()
    }

    /// Busy-slot counts per VC index.
    pub fn busy_counts(&self) -> &[u64] {
        &self.busy
    }

    /// Utilization fraction (0..=1) of each VC index, averaged over all
    /// physical channels and measured cycles.
    pub fn utilization(&self) -> Vec<f64> {
        let denom = (self.channels * self.cycles) as f64;
        self.busy
            .iter()
            .map(|&b| if denom > 0.0 { b as f64 / denom } else { 0.0 })
            .collect()
    }

    /// Utilization as percentages (the paper's Fig 3 y-axis).
    pub fn utilization_percent(&self) -> Vec<f64> {
        self.utilization().into_iter().map(|u| u * 100.0).collect()
    }

    /// Coefficient of variation of the per-VC utilizations — a scalar
    /// "balance" measure (0 = perfectly even use; large = a few VCs hog).
    pub fn imbalance(&self) -> f64 {
        let u = self.utilization();
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = u.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / u.len() as f64;
        var.sqrt() / mean
    }

    /// Merge another accumulator (same shape) into this one.
    pub fn merge(&mut self, other: &VcUsageStats) {
        assert_eq!(self.busy.len(), other.busy.len());
        assert_eq!(self.channels, other.channels);
        for (a, b) in self.busy.iter_mut().zip(&other.busy) {
            *a += b;
        }
        self.cycles += other.cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_normalizes_by_channels_and_cycles() {
        let mut v = VcUsageStats::new(4, 10);
        for _ in 0..100 {
            v.tick();
        }
        // VC 0 busy on 5 channels for all 100 cycles.
        for _ in 0..500 {
            v.record_busy(0);
        }
        let u = v.utilization();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
        assert_eq!(v.utilization_percent()[0], 50.0);
    }

    #[test]
    fn imbalance_zero_when_even() {
        let mut v = VcUsageStats::new(3, 1);
        v.tick();
        for vc in 0..3 {
            v.record_busy(vc);
        }
        assert!(v.imbalance() < 1e-12);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let mut v = VcUsageStats::new(3, 1);
        v.tick();
        v.record_busy(0);
        assert!(v.imbalance() > 1.0);
    }

    #[test]
    fn merge_adds_busy_and_cycles() {
        let mut a = VcUsageStats::new(2, 5);
        a.tick();
        a.record_busy(0);
        let mut b = VcUsageStats::new(2, 5);
        b.tick();
        b.record_busy(0);
        b.record_busy(1);
        a.merge(&b);
        assert_eq!(a.busy_counts(), &[2, 1]);
        let u = a.utilization();
        assert!((u[0] - 0.2).abs() < 1e-12); // 2 / (5 channels × 2 cycles)
    }
}
