//! Per-virtual-channel utilization (paper Figure 3).

use serde::{DeError, Deserialize, Serialize, Serializer, Value};

/// Accumulates, per VC index, the number of (physical channel × cycle)
/// slots in which that VC was held by a message. Normalizing by the number
/// of existing physical channels and measured cycles yields the paper's
/// "average usage of virtual channels".
///
/// Counting is incremental: the engine calls [`VcUsageStats::acquire`] /
/// [`VcUsageStats::release`] as messages claim and free VC slots, and
/// [`VcUsageStats::tick`] folds the currently-held counts into the busy
/// totals once per measured cycle — no per-cycle scan over message paths.
/// The explicit [`VcUsageStats::record_busy`] remains for accumulators
/// fed from an external scan.
#[derive(Clone, Debug)]
pub struct VcUsageStats {
    busy: Vec<u64>,
    channels: u64,
    cycles: u64,
    /// Slots currently held per VC index — live engine state, not a
    /// statistic. Excluded from serialization and `merge`.
    held: Vec<u64>,
}

impl VcUsageStats {
    /// Accumulator for `num_vcs` VC indices over `channels` physical
    /// channels.
    pub fn new(num_vcs: u8, channels: usize) -> Self {
        VcUsageStats {
            busy: vec![0; num_vcs as usize],
            channels: channels as u64,
            cycles: 0,
            held: vec![0; num_vcs as usize],
        }
    }

    /// Rewind to the empty state for `num_vcs` VC indices over `channels`
    /// physical channels, reusing the existing allocations when the shape
    /// is unchanged (used by `Simulator::reset`).
    pub fn reset(&mut self, num_vcs: u8, channels: usize) {
        self.busy.resize(num_vcs as usize, 0);
        self.held.resize(num_vcs as usize, 0);
        self.busy.iter_mut().for_each(|b| *b = 0);
        self.held.iter_mut().for_each(|h| *h = 0);
        self.channels = channels as u64;
        self.cycles = 0;
    }

    /// Record that VC `vc` (on some channel) was busy this cycle.
    #[inline]
    pub fn record_busy(&mut self, vc: u8) {
        self.busy[vc as usize] += 1;
    }

    /// A message claimed a slot on VC `vc` (any channel).
    #[inline]
    pub fn acquire(&mut self, vc: u8) {
        self.held[vc as usize] += 1;
    }

    /// A message freed a slot on VC `vc` (any channel).
    #[inline]
    pub fn release(&mut self, vc: u8) {
        let h = &mut self.held[vc as usize];
        debug_assert!(*h > 0, "release of VC {vc} with no held slot");
        *h -= 1;
    }

    /// A message freed `n` slots on VC `vc` in one update — the sharded
    /// engine defers per-shard release counts to the cycle boundary and
    /// applies them in bulk.
    #[inline]
    pub fn release_n(&mut self, vc: u8, n: u64) {
        let h = &mut self.held[vc as usize];
        debug_assert!(*h >= n, "release of {n} slots on VC {vc} with {h} held");
        *h -= n;
    }

    /// Slots currently held per VC index (live state; see `acquire`).
    pub fn held_counts(&self) -> &[u64] {
        &self.held
    }

    /// Advance the measured-cycle count, folding the currently-held slot
    /// counts into the busy totals.
    #[inline]
    pub fn tick(&mut self) {
        self.cycles += 1;
        for (b, &h) in self.busy.iter_mut().zip(&self.held) {
            *b += h;
        }
    }

    /// Number of VC indices tracked.
    pub fn num_vcs(&self) -> usize {
        self.busy.len()
    }

    /// Busy-slot counts per VC index.
    pub fn busy_counts(&self) -> &[u64] {
        &self.busy
    }

    /// Utilization fraction (0..=1) of each VC index, averaged over all
    /// physical channels and measured cycles.
    pub fn utilization(&self) -> Vec<f64> {
        let denom = (self.channels * self.cycles) as f64;
        self.busy
            .iter()
            .map(|&b| if denom > 0.0 { b as f64 / denom } else { 0.0 })
            .collect()
    }

    /// Utilization as percentages (the paper's Fig 3 y-axis).
    pub fn utilization_percent(&self) -> Vec<f64> {
        self.utilization().into_iter().map(|u| u * 100.0).collect()
    }

    /// Coefficient of variation of the per-VC utilizations — a scalar
    /// "balance" measure (0 = perfectly even use; large = a few VCs hog).
    pub fn imbalance(&self) -> f64 {
        let u = self.utilization();
        let mean = u.iter().sum::<f64>() / u.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = u.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / u.len() as f64;
        var.sqrt() / mean
    }

    /// Merge another accumulator (same shape) into this one. Only the
    /// statistics merge; live held counts are per-engine state.
    pub fn merge(&mut self, other: &VcUsageStats) {
        assert_eq!(self.busy.len(), other.busy.len());
        assert_eq!(self.channels, other.channels);
        for (a, b) in self.busy.iter_mut().zip(&other.busy) {
            *a += b;
        }
        self.cycles += other.cycles;
    }
}

// Manual impls rather than derives: `held` is live engine state, not a
// statistic, and keeping it out of the wire format preserves report
// compatibility (and byte-identity for fixed-seed runs).
impl Serialize for VcUsageStats {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_map();
        s.field("busy", &self.busy);
        s.field("channels", &self.channels);
        s.field("cycles", &self.cycles);
        s.end_map();
    }
}

impl Deserialize for VcUsageStats {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let busy: Vec<u64> = serde::__field(v, "busy")?;
        let held = vec![0; busy.len()];
        Ok(VcUsageStats {
            busy,
            channels: serde::__field(v, "channels")?,
            cycles: serde::__field(v, "cycles")?,
            held,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_normalizes_by_channels_and_cycles() {
        let mut v = VcUsageStats::new(4, 10);
        for _ in 0..100 {
            v.tick();
        }
        // VC 0 busy on 5 channels for all 100 cycles.
        for _ in 0..500 {
            v.record_busy(0);
        }
        let u = v.utilization();
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
        assert_eq!(v.utilization_percent()[0], 50.0);
    }

    #[test]
    fn imbalance_zero_when_even() {
        let mut v = VcUsageStats::new(3, 1);
        v.tick();
        for vc in 0..3 {
            v.record_busy(vc);
        }
        assert!(v.imbalance() < 1e-12);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let mut v = VcUsageStats::new(3, 1);
        v.tick();
        v.record_busy(0);
        assert!(v.imbalance() > 1.0);
    }

    #[test]
    fn incremental_acquire_release_drives_tick() {
        let mut v = VcUsageStats::new(4, 10);
        v.acquire(0);
        v.acquire(0);
        v.acquire(2);
        v.tick(); // busy += held: [2, 0, 1, 0]
        v.release(0);
        v.tick(); // busy += held: [1, 0, 1, 0]
        v.release(0);
        v.release(2);
        v.tick(); // nothing held
        assert_eq!(v.busy_counts(), &[3, 0, 2, 0]);
        assert_eq!(v.held_counts(), &[0, 0, 0, 0]);
    }

    #[test]
    fn held_state_stays_out_of_serialization() {
        let mut v = VcUsageStats::new(2, 5);
        v.acquire(1);
        v.tick();
        let json = {
            let mut s = serde::Serializer::compact();
            v.serialize(&mut s);
            s.finish()
        };
        assert_eq!(json, r#"{"busy":[0,1],"channels":5,"cycles":1}"#);
        let back = VcUsageStats::deserialize(&serde::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.busy_counts(), v.busy_counts());
        assert_eq!(back.held_counts(), &[0, 0], "held resets on deserialize");
    }

    #[test]
    fn merge_adds_busy_and_cycles() {
        let mut a = VcUsageStats::new(2, 5);
        a.tick();
        a.record_busy(0);
        let mut b = VcUsageStats::new(2, 5);
        b.tick();
        b.record_busy(0);
        b.record_busy(1);
        a.merge(&b);
        assert_eq!(a.busy_counts(), &[2, 1]);
        let u = a.utilization();
        assert!((u[0] - 0.2).abs() < 1e-12); // 2 / (5 channels × 2 cycles)
    }
}
