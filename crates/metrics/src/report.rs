//! The combined per-simulation report.

use crate::{
    CycleTelemetry, LatencyStats, NodeLoadStats, RecoveryStats, RingLoadSummary, ThroughputStats,
    VcUsageStats,
};
use serde::{DeError, Deserialize, Serialize, Serializer, Value};

/// Everything one simulation run measured. Produced by the engine,
/// consumed by the experiment harness and benches.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Algorithm display name.
    pub algorithm: String,
    /// Offered generation rate (messages/node/cycle).
    pub offered_rate: f64,
    /// Message length in flits.
    pub message_length: u32,
    /// Number of seed-faulty nodes in the pattern.
    pub seed_faults: usize,
    /// Number of unusable (faulty + disabled) nodes.
    pub total_faults: usize,
    /// Measured cycles (after warm-up).
    pub measured_cycles: u64,
    /// Total latency (generation → tail delivery, source queueing
    /// included) over messages delivered in the measurement window.
    pub latency: LatencyStats,
    /// Network latency (first flit injected → tail delivery) over the same
    /// messages — the paper's "message latency (flit cycles)" measure.
    pub network_latency: LatencyStats,
    /// Delivered-traffic statistics.
    pub throughput: ThroughputStats,
    /// Per-VC utilization.
    pub vc_usage: VcUsageStats,
    /// Per-node flit arrivals.
    pub node_load: NodeLoadStats,
    /// Watchdog recoveries (messages dropped & retried). Nonzero values for
    /// provably deadlock-free algorithms indicate a model violation.
    pub recoveries: u64,
    /// Hops taken on fault-tolerance overlay (ring detour) VCs, whole run.
    pub ring_hops: u64,
    /// Misroutes summed over delivered messages, whole run.
    pub total_misroutes: u64,
    /// Messages still in flight when the run ended.
    pub in_flight_at_end: u64,
    /// The f-ring/other load split (only meaningful with faults).
    pub ring_load: Option<RingLoadSummary>,
    /// Online fault-recovery statistics (`None` for static-fault runs
    /// without a chaos driver installed).
    pub recovery: Option<RecoveryStats>,
    /// Per-window cycle telemetry (`None` unless the run enabled a
    /// telemetry window). Skipped entirely on the wire when absent, so
    /// telemetry-off runs keep their historical report bytes — see the
    /// fingerprint policy note in `results/`.
    pub telemetry: Option<CycleTelemetry>,
}

// Manual impls rather than derives: `telemetry` must be *absent* (not
// `null`) when unset, so the committed bench fingerprint over the
// serialized report survives this field's addition. The vendored derive
// has no `skip_serializing_if`, hence the hand-written mirror of the
// field list.
impl Serialize for SimReport {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_map();
        s.field("algorithm", &self.algorithm);
        s.field("offered_rate", &self.offered_rate);
        s.field("message_length", &self.message_length);
        s.field("seed_faults", &self.seed_faults);
        s.field("total_faults", &self.total_faults);
        s.field("measured_cycles", &self.measured_cycles);
        s.field("latency", &self.latency);
        s.field("network_latency", &self.network_latency);
        s.field("throughput", &self.throughput);
        s.field("vc_usage", &self.vc_usage);
        s.field("node_load", &self.node_load);
        s.field("recoveries", &self.recoveries);
        s.field("ring_hops", &self.ring_hops);
        s.field("total_misroutes", &self.total_misroutes);
        s.field("in_flight_at_end", &self.in_flight_at_end);
        s.field("ring_load", &self.ring_load);
        s.field("recovery", &self.recovery);
        if let Some(t) = &self.telemetry {
            s.field("telemetry", t);
        }
        s.end_map();
    }
}

impl Deserialize for SimReport {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let telemetry = match v.get("telemetry") {
            None => None,
            Some(t) => Deserialize::deserialize(t)?,
        };
        Ok(SimReport {
            algorithm: serde::__field(v, "algorithm")?,
            offered_rate: serde::__field(v, "offered_rate")?,
            message_length: serde::__field(v, "message_length")?,
            seed_faults: serde::__field(v, "seed_faults")?,
            total_faults: serde::__field(v, "total_faults")?,
            measured_cycles: serde::__field(v, "measured_cycles")?,
            latency: serde::__field(v, "latency")?,
            network_latency: serde::__field(v, "network_latency")?,
            throughput: serde::__field(v, "throughput")?,
            vc_usage: serde::__field(v, "vc_usage")?,
            node_load: serde::__field(v, "node_load")?,
            recoveries: serde::__field(v, "recoveries")?,
            ring_hops: serde::__field(v, "ring_hops")?,
            total_misroutes: serde::__field(v, "total_misroutes")?,
            in_flight_at_end: serde::__field(v, "in_flight_at_end")?,
            ring_load: serde::__field(v, "ring_load")?,
            recovery: serde::__field(v, "recovery")?,
            telemetry,
        })
    }
}

impl SimReport {
    /// Mean total latency, or `f64::NAN` when nothing was delivered.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean().unwrap_or(f64::NAN)
    }

    /// Mean network latency (the paper's figure measure), or `f64::NAN`
    /// when nothing was delivered.
    pub fn mean_network_latency(&self) -> f64 {
        self.network_latency.mean().unwrap_or(f64::NAN)
    }

    /// Normalized throughput (delivered flits / node / cycle).
    pub fn normalized_throughput(&self) -> f64 {
        self.throughput.normalized()
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<24} rate={:.4} thr={:.4} lat={:.1} delivered={} recov={}",
            self.algorithm,
            self.offered_rate,
            self.normalized_throughput(),
            self.mean_latency(),
            self.throughput.messages_delivered(),
            self.recoveries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut latency = LatencyStats::new();
        latency.record(120);
        let mut network_latency = LatencyStats::new();
        network_latency.record(110);
        let mut throughput = ThroughputStats::new(100);
        throughput.record_delivery(100);
        throughput.set_cycles(1000);
        SimReport {
            algorithm: "PHop".into(),
            offered_rate: 0.001,
            message_length: 100,
            seed_faults: 0,
            total_faults: 0,
            measured_cycles: 1000,
            latency,
            network_latency,
            throughput,
            vc_usage: VcUsageStats::new(24, 360),
            node_load: NodeLoadStats::new(100),
            recoveries: 0,
            ring_hops: 0,
            total_misroutes: 0,
            in_flight_at_end: 0,
            ring_load: None,
            recovery: None,
            telemetry: None,
        }
    }

    #[test]
    fn accessors() {
        let r = report();
        assert_eq!(r.mean_latency(), 120.0);
        assert_eq!(r.mean_network_latency(), 110.0);
        assert!((r.normalized_throughput() - 0.001).abs() < 1e-12);
        assert!(r.summary_line().contains("PHop"));
    }

    #[test]
    fn serializes_to_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.algorithm, "PHop");
        assert_eq!(back.latency.count(), 1);
    }

    #[test]
    fn absent_telemetry_stays_off_the_wire() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("telemetry"),
            "None telemetry must not appear in the report JSON (fingerprint policy): {json}"
        );
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert!(back.telemetry.is_none());
    }

    #[test]
    fn telemetry_round_trips_when_present() {
        let mut r = report();
        let mut c = crate::TelemetryCollector::new(100);
        for cycle in 0..250 {
            c.record_cycle(cycle, 2, 1, 100, 4, 12, cycle / 10);
        }
        r.telemetry = Some(c.snapshot());
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"telemetry\""));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        let t = back.telemetry.expect("telemetry survives the round trip");
        assert_eq!(t, r.telemetry.unwrap());
        assert_eq!(t.windows.len(), 3);
    }
}
