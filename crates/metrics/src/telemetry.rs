//! Per-window cycle telemetry: coarse time series over a run.
//!
//! The scalar statistics elsewhere in this crate answer "how did the run
//! do overall"; telemetry answers "when did it change". The engine folds
//! a handful of per-cycle counters into fixed-width windows so a report
//! can show injection/delivery/blocking rates, VC occupancy, and f-ring
//! crossing rates *over time* — the view that makes fault activations
//! and congestion collapses visible.

use serde::{Deserialize, Serialize};

/// Aggregates for one window of consecutive cycles.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetryWindow {
    /// First cycle of the window (measured from simulation start).
    pub start_cycle: u64,
    /// Cycles covered (the final window may be shorter).
    pub cycles: u64,
    /// Messages injected into the network (queue → injection port).
    pub injected: u64,
    /// Messages whose tail flit drained at the destination.
    pub delivered_messages: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Blocked-cycle count: one per message per cycle spent waiting.
    pub blocked_waits: u64,
    /// Mean VC slots held across the window's cycles.
    pub mean_vc_held: f64,
    /// Hops taken on fault-ring overlay VCs during the window.
    pub ring_crossings: u64,
}

impl TelemetryWindow {
    /// Injection rate in messages/cycle over this window.
    pub fn injection_rate(&self) -> f64 {
        self.injected as f64 / self.cycles.max(1) as f64
    }

    /// Delivery rate in messages/cycle over this window.
    pub fn delivery_rate(&self) -> f64 {
        self.delivered_messages as f64 / self.cycles.max(1) as f64
    }

    /// Mean messages blocked per cycle over this window.
    pub fn mean_blocked(&self) -> f64 {
        self.blocked_waits as f64 / self.cycles.max(1) as f64
    }
}

/// The complete time series for one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CycleTelemetry {
    /// Configured window width in cycles.
    pub window: u64,
    /// Consecutive windows, oldest first; the last may be partial.
    pub windows: Vec<TelemetryWindow>,
}

impl CycleTelemetry {
    /// Total messages injected across all windows.
    pub fn total_injected(&self) -> u64 {
        self.windows.iter().map(|w| w.injected).sum()
    }

    /// Total messages delivered across all windows.
    pub fn total_delivered(&self) -> u64 {
        self.windows.iter().map(|w| w.delivered_messages).sum()
    }

    /// The window with the highest mean blocked-message count.
    pub fn peak_blocked_window(&self) -> Option<&TelemetryWindow> {
        self.windows
            .iter()
            .max_by(|a, b| a.mean_blocked().total_cmp(&b.mean_blocked()))
    }
}

/// The engine-side accumulator: fed once per cycle, emits
/// [`TelemetryWindow`]s every `window` cycles.
#[derive(Clone, Debug)]
pub struct TelemetryCollector {
    window: u64,
    windows: Vec<TelemetryWindow>,
    /// Cycles folded into the current (open) window.
    cycles_in_window: u64,
    /// First cycle of the open window.
    window_start: u64,
    injected: u64,
    delivered_messages: u64,
    delivered_flits: u64,
    blocked_waits: u64,
    vc_held_sum: u64,
    /// Cumulative ring-hop count at the start of the open window.
    ring_base: u64,
    /// Most recent cumulative ring-hop count observed.
    ring_last: u64,
}

impl TelemetryCollector {
    /// A collector emitting one window per `window` cycles (`window ≥ 1`).
    pub fn new(window: u64) -> Self {
        assert!(window >= 1, "telemetry window must be at least 1 cycle");
        TelemetryCollector {
            window,
            windows: Vec::new(),
            cycles_in_window: 0,
            window_start: 0,
            injected: 0,
            delivered_messages: 0,
            delivered_flits: 0,
            blocked_waits: 0,
            vc_held_sum: 0,
            ring_base: 0,
            ring_last: 0,
        }
    }

    /// Configured window width.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Fold one cycle's counters in. `cycle` is the cycle just simulated;
    /// `ring_hops_total` is the engine's *cumulative* ring-hop counter
    /// (the collector differences it per window).
    #[allow(clippy::too_many_arguments)]
    pub fn record_cycle(
        &mut self,
        cycle: u64,
        injected: u64,
        delivered_messages: u64,
        delivered_flits: u64,
        blocked_waits: u64,
        vc_held: u64,
        ring_hops_total: u64,
    ) {
        if self.cycles_in_window == 0 {
            self.window_start = cycle;
            self.ring_base = self.ring_last;
        }
        self.cycles_in_window += 1;
        self.injected += injected;
        self.delivered_messages += delivered_messages;
        self.delivered_flits += delivered_flits;
        self.blocked_waits += blocked_waits;
        self.vc_held_sum += vc_held;
        self.ring_last = ring_hops_total;
        if self.cycles_in_window == self.window {
            self.close_window();
        }
    }

    fn close_window(&mut self) {
        let cycles = self.cycles_in_window;
        self.windows.push(TelemetryWindow {
            start_cycle: self.window_start,
            cycles,
            injected: self.injected,
            delivered_messages: self.delivered_messages,
            delivered_flits: self.delivered_flits,
            blocked_waits: self.blocked_waits,
            mean_vc_held: self.vc_held_sum as f64 / cycles as f64,
            ring_crossings: self.ring_last - self.ring_base,
        });
        self.cycles_in_window = 0;
        self.injected = 0;
        self.delivered_messages = 0;
        self.delivered_flits = 0;
        self.blocked_waits = 0;
        self.vc_held_sum = 0;
    }

    /// The time series so far, including the open partial window.
    pub fn snapshot(&self) -> CycleTelemetry {
        let mut windows = self.windows.clone();
        if self.cycles_in_window > 0 {
            windows.push(TelemetryWindow {
                start_cycle: self.window_start,
                cycles: self.cycles_in_window,
                injected: self.injected,
                delivered_messages: self.delivered_messages,
                delivered_flits: self.delivered_flits,
                blocked_waits: self.blocked_waits,
                mean_vc_held: self.vc_held_sum as f64 / self.cycles_in_window as f64,
                ring_crossings: self.ring_last - self.ring_base,
            });
        }
        CycleTelemetry {
            window: self.window,
            windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_at_width_and_partial_tail_survives() {
        let mut c = TelemetryCollector::new(4);
        for cycle in 0..10 {
            c.record_cycle(cycle, 1, 0, 0, 2, 5, cycle + 1);
        }
        let t = c.snapshot();
        assert_eq!(t.window, 4);
        assert_eq!(t.windows.len(), 3, "two full windows + partial tail");
        assert_eq!(t.windows[0].start_cycle, 0);
        assert_eq!(t.windows[0].cycles, 4);
        assert_eq!(t.windows[0].injected, 4);
        assert_eq!(t.windows[0].blocked_waits, 8);
        assert_eq!(t.windows[0].mean_vc_held, 5.0);
        assert_eq!(t.windows[1].start_cycle, 4);
        assert_eq!(t.windows[2].start_cycle, 8);
        assert_eq!(t.windows[2].cycles, 2);
        assert_eq!(t.total_injected(), 10);
    }

    #[test]
    fn ring_crossings_are_differenced_per_window() {
        let mut c = TelemetryCollector::new(2);
        // Cumulative ring hops: 0, 3, 3, 10 → windows see 3 and 7.
        c.record_cycle(0, 0, 0, 0, 0, 0, 0);
        c.record_cycle(1, 0, 0, 0, 0, 0, 3);
        c.record_cycle(2, 0, 0, 0, 0, 0, 3);
        c.record_cycle(3, 0, 0, 0, 0, 0, 10);
        let t = c.snapshot();
        assert_eq!(t.windows.len(), 2);
        assert_eq!(t.windows[0].ring_crossings, 3);
        assert_eq!(t.windows[1].ring_crossings, 7);
    }

    #[test]
    fn rates_and_peak_window() {
        let mut c = TelemetryCollector::new(2);
        c.record_cycle(0, 4, 2, 40, 0, 0, 0);
        c.record_cycle(1, 0, 0, 0, 0, 0, 0);
        c.record_cycle(2, 0, 0, 0, 6, 0, 0);
        c.record_cycle(3, 0, 0, 0, 6, 0, 0);
        let t = c.snapshot();
        assert_eq!(t.windows[0].injection_rate(), 2.0);
        assert_eq!(t.windows[0].delivery_rate(), 1.0);
        assert_eq!(t.windows[1].mean_blocked(), 6.0);
        let peak = t.peak_blocked_window().unwrap();
        assert_eq!(peak.start_cycle, 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut c = TelemetryCollector::new(3);
        for cycle in 0..7 {
            c.record_cycle(cycle, 1, 1, 20, 3, 8, cycle);
        }
        let t = c.snapshot();
        let json = serde_json::to_string(&t).unwrap();
        let back: CycleTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
