//! # wormsim-metrics
//!
//! Statistics collected by the simulator, matching the paper's measures
//! (§5): average message latency, (normalized) throughput, per-VC
//! utilization (Fig 3), and per-node traffic load with the f-ring/other
//! split (Fig 6).

mod latency;
mod node_load;
mod recovery;
mod report;
mod telemetry;
mod throughput;
mod vc_usage;

pub use latency::LatencyStats;
pub use node_load::{NodeLoadStats, RingLoadSummary};
pub use recovery::{RecoveryEvent, RecoveryStats, SETTLE_FRACTION};
pub use report::SimReport;
pub use telemetry::{CycleTelemetry, TelemetryCollector, TelemetryWindow};
pub use throughput::ThroughputStats;
pub use vc_usage::VcUsageStats;
