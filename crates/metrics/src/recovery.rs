//! Online fault-recovery statistics (the `wormsim-chaos` measures).
//!
//! One [`RecoveryEvent`] is recorded per fault activation: how many nodes
//! turned faulty, what happened to the traffic in flight (aborted and
//! re-injected, requeued with a re-sampled route, or permanently lost
//! because an endpoint died), the recovery latency of each aborted message
//! (abort cycle → tail delivery after re-injection), and the post-fault
//! *settling time* — how many cycles the delivered-flit rate needed to
//! climb back within 5 % of the pre-fault steady state.

use serde::{Deserialize, Serialize};

/// Fraction of the pre-fault delivered rate the post-fault rate must reach
/// for the network to count as settled (ISSUE 2: "within 5 %").
pub const SETTLE_FRACTION: f64 = 0.95;

/// What one online fault activation did to the network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Cycle the fault activated.
    pub cycle: u64,
    /// Nodes that turned unusable with this event (seed + newly disabled).
    pub newly_faulty: usize,
    /// In-flight messages aborted (VCs released, re-injected with backoff).
    pub aborted: u64,
    /// Queued messages whose route was re-sampled against the new pattern.
    pub requeued: u64,
    /// Messages permanently lost (source or destination died).
    pub lost: u64,
    /// Aborted messages that have since been delivered.
    pub recovered: u64,
    /// Sum of recovery latencies (abort cycle → tail delivery) over
    /// `recovered` messages.
    pub recovery_latency_total: u64,
    /// Delivered flits/cycle averaged over the window ending at `cycle`.
    pub pre_fault_rate: f64,
    /// Cycles from `cycle` until the windowed delivered rate first returned
    /// to within 5 % of `pre_fault_rate`. `None` = never settled in-run.
    pub settle_cycles: Option<u64>,
}

impl RecoveryEvent {
    /// Mean recovery latency of this event's recovered messages.
    pub fn mean_recovery_latency(&self) -> Option<f64> {
        (self.recovered > 0).then(|| self.recovery_latency_total as f64 / self.recovered as f64)
    }
}

/// All recovery events of one run, in activation order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    events: Vec<RecoveryEvent>,
    /// Width (cycles) of the sliding delivered-rate window used for
    /// `pre_fault_rate` and settling detection.
    window: u64,
}

impl RecoveryStats {
    /// Empty stats with the given rate-window width.
    pub fn new(window: u64) -> Self {
        RecoveryStats {
            events: Vec::new(),
            window: window.max(1),
        }
    }

    /// The delivered-rate window width in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Record a fault activation; returns its event index.
    pub fn begin_event(&mut self, cycle: u64, newly_faulty: usize, pre_fault_rate: f64) -> usize {
        self.events.push(RecoveryEvent {
            cycle,
            newly_faulty,
            aborted: 0,
            requeued: 0,
            lost: 0,
            recovered: 0,
            recovery_latency_total: 0,
            pre_fault_rate,
            settle_cycles: None,
        });
        self.events.len() - 1
    }

    /// Count one aborted in-flight message against event `i`.
    pub fn record_abort(&mut self, i: usize) {
        self.events[i].aborted += 1;
    }

    /// Count one requeued (route re-sampled) message against event `i`.
    pub fn record_requeued(&mut self, i: usize) {
        self.events[i].requeued += 1;
    }

    /// Count one permanently lost message against event `i`.
    pub fn record_lost(&mut self, i: usize) {
        self.events[i].lost += 1;
    }

    /// An aborted message of event `i` was delivered `latency` cycles after
    /// its abort.
    pub fn record_recovered(&mut self, i: usize, latency: u64) {
        let e = &mut self.events[i];
        e.recovered += 1;
        e.recovery_latency_total += latency;
    }

    /// Event `i`'s delivered rate returned to the settle band `cycles`
    /// after activation. Idempotent: only the first call sticks.
    pub fn set_settled(&mut self, i: usize, cycles: u64) {
        let slot = &mut self.events[i].settle_cycles;
        if slot.is_none() {
            *slot = Some(cycles);
        }
    }

    /// The recorded events, in activation order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Number of recorded fault activations.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// True when no fault ever activated.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total aborted in-flight messages across events.
    pub fn total_aborted(&self) -> u64 {
        self.events.iter().map(|e| e.aborted).sum()
    }

    /// Total requeued messages across events.
    pub fn total_requeued(&self) -> u64 {
        self.events.iter().map(|e| e.requeued).sum()
    }

    /// Total permanently lost messages across events.
    pub fn total_lost(&self) -> u64 {
        self.events.iter().map(|e| e.lost).sum()
    }

    /// Total recovered (aborted then delivered) messages across events.
    pub fn total_recovered(&self) -> u64 {
        self.events.iter().map(|e| e.recovered).sum()
    }

    /// Mean recovery latency over every recovered message of the run.
    pub fn mean_recovery_latency(&self) -> Option<f64> {
        let n = self.total_recovered();
        (n > 0).then(|| {
            self.events
                .iter()
                .map(|e| e.recovery_latency_total)
                .sum::<u64>() as f64
                / n as f64
        })
    }

    /// Mean settling time over the events that did settle.
    pub fn mean_settle_cycles(&self) -> Option<f64> {
        let settled: Vec<u64> = self.events.iter().filter_map(|e| e.settle_cycles).collect();
        (!settled.is_empty()).then(|| settled.iter().sum::<u64>() as f64 / settled.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lifecycle_and_aggregates() {
        let mut s = RecoveryStats::new(500);
        assert!(s.is_empty());
        let e0 = s.begin_event(1000, 3, 0.8);
        s.record_abort(e0);
        s.record_abort(e0);
        s.record_requeued(e0);
        s.record_lost(e0);
        s.record_recovered(e0, 40);
        s.record_recovered(e0, 60);
        let e1 = s.begin_event(2000, 1, 0.7);
        s.record_abort(e1);
        assert_eq!(s.num_events(), 2);
        assert_eq!(s.total_aborted(), 3);
        assert_eq!(s.total_requeued(), 1);
        assert_eq!(s.total_lost(), 1);
        assert_eq!(s.total_recovered(), 2);
        assert_eq!(s.mean_recovery_latency(), Some(50.0));
        assert_eq!(s.events()[0].mean_recovery_latency(), Some(50.0));
        assert_eq!(s.events()[1].mean_recovery_latency(), None);
    }

    #[test]
    fn settle_is_first_write_wins() {
        let mut s = RecoveryStats::new(500);
        let e = s.begin_event(100, 1, 1.0);
        assert_eq!(s.events()[e].settle_cycles, None);
        s.set_settled(e, 700);
        s.set_settled(e, 900);
        assert_eq!(s.events()[e].settle_cycles, Some(700));
        assert_eq!(s.mean_settle_cycles(), Some(700.0));
    }

    #[test]
    fn serializes_round_trip() {
        let mut s = RecoveryStats::new(500);
        let e = s.begin_event(100, 2, 0.5);
        s.record_abort(e);
        s.record_recovered(e, 33);
        s.set_settled(e, 250);
        let json = serde_json::to_string(&s).unwrap();
        let back: RecoveryStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // Unsettled events round-trip the None.
        let mut s2 = RecoveryStats::new(500);
        s2.begin_event(5, 1, 0.1);
        let back2: RecoveryStats =
            serde_json::from_str(&serde_json::to_string(&s2).unwrap()).unwrap();
        assert_eq!(back2, s2);
    }
}
