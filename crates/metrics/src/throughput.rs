//! Throughput accounting.

use serde::{Deserialize, Serialize};

/// Delivered-traffic statistics over a measurement window.
///
/// The paper's *normalized throughput* is "the number of messages received
/// over the number of messages that can be transmitted at the maximum load"
/// (§5.1). With one ejection port of 1 flit/cycle per node, the maximum is
/// `cycles × nodes / message_length` messages; normalized throughput is
/// therefore the delivered flit rate per node per cycle.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ThroughputStats {
    messages_delivered: u64,
    flits_delivered: u64,
    messages_injected: u64,
    cycles: u64,
    nodes: u64,
}

impl ThroughputStats {
    /// Accumulator for a window over `nodes` traffic-generating nodes.
    pub fn new(nodes: usize) -> Self {
        ThroughputStats {
            nodes: nodes as u64,
            ..Default::default()
        }
    }

    /// Rewind to the empty state for a window over `nodes` nodes
    /// (allocation-free; used by `Simulator::reset`).
    pub fn reset(&mut self, nodes: usize) {
        self.messages_delivered = 0;
        self.flits_delivered = 0;
        self.messages_injected = 0;
        self.cycles = 0;
        self.nodes = nodes as u64;
    }

    /// Record a delivered message of `flits` flits.
    pub fn record_delivery(&mut self, flits: u32) {
        self.messages_delivered += 1;
        self.flits_delivered += flits as u64;
    }

    /// Record a newly generated message.
    pub fn record_injection(&mut self) {
        self.messages_injected += 1;
    }

    /// Set the measurement window length.
    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Messages delivered in the window.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Messages generated in the window.
    pub fn messages_injected(&self) -> u64 {
        self.messages_injected
    }

    /// Flits delivered in the window.
    pub fn flits_delivered(&self) -> u64 {
        self.flits_delivered
    }

    /// Delivered messages per node per cycle.
    pub fn message_rate(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.messages_delivered as f64 / self.cycles as f64 / self.nodes as f64
    }

    /// Delivered flits per node per cycle — the paper's normalized
    /// throughput (1.0 = every node ejects a flit every cycle).
    pub fn normalized(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / self.cycles as f64 / self.nodes as f64
    }

    /// Fraction of generated messages that were delivered inside the window
    /// (an acceptance proxy; > 1 is possible when warm-up messages drain
    /// into the window).
    pub fn acceptance(&self) -> f64 {
        if self.messages_injected == 0 {
            return 0.0;
        }
        self.messages_delivered as f64 / self.messages_injected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_zero() {
        let t = ThroughputStats::new(100);
        assert_eq!(t.normalized(), 0.0);
        assert_eq!(t.message_rate(), 0.0);
        assert_eq!(t.acceptance(), 0.0);
    }

    #[test]
    fn normalized_throughput() {
        let mut t = ThroughputStats::new(100);
        // 200 messages of 100 flits over 20k cycles on 100 nodes:
        // 20000 flits / 20000 cycles / 100 nodes = 0.01.
        for _ in 0..200 {
            t.record_delivery(100);
        }
        t.set_cycles(20_000);
        assert!((t.normalized() - 0.01).abs() < 1e-12);
        assert!((t.message_rate() - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn acceptance_ratio() {
        let mut t = ThroughputStats::new(10);
        for _ in 0..10 {
            t.record_injection();
        }
        for _ in 0..8 {
            t.record_delivery(50);
        }
        assert!((t.acceptance() - 0.8).abs() < 1e-12);
    }
}
