//! Per-node traffic load and the f-ring/other split (paper §5.2, Figure 6).

use serde::{Deserialize, Serialize};
use wormsim_topology::NodeId;

/// Counts flit arrivals at every node's input buffers over the measurement
/// window. The paper's Figure 6 compares the load on f-ring nodes against
/// the other (non-faulty, non-ring) nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeLoadStats {
    arrivals: Vec<u64>,
    cycles: u64,
}

impl NodeLoadStats {
    /// Accumulator over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        NodeLoadStats {
            arrivals: vec![0; num_nodes],
            cycles: 0,
        }
    }

    /// Rewind to the empty state over `num_nodes` nodes, reusing the
    /// existing allocation when the node count is unchanged (used by
    /// `Simulator::reset`).
    pub fn reset(&mut self, num_nodes: usize) {
        self.arrivals.resize(num_nodes, 0);
        self.arrivals.iter_mut().for_each(|a| *a = 0);
        self.cycles = 0;
    }

    /// Record one flit arriving at node `n`.
    #[inline]
    pub fn record_arrival(&mut self, n: NodeId) {
        self.arrivals[n.index()] += 1;
    }

    /// Record `k` flit arrivals at node `n` in one update. `k` may be 0:
    /// branchless callers (the engine's pipeline loop) fold their move
    /// condition into `k` instead of branching around the call.
    #[inline]
    pub fn record_arrivals(&mut self, n: NodeId, k: u64) {
        self.arrivals[n.index()] += k;
    }

    /// Advance the measured-cycle count.
    #[inline]
    pub fn tick(&mut self) {
        self.cycles += 1;
    }

    /// Raw arrival counts.
    pub fn arrivals(&self) -> &[u64] {
        &self.arrivals
    }

    /// Mutable view of the raw arrival counters. Used by the engine's
    /// sharded movement phase, where each shard adds to a disjoint set of
    /// node indices directly instead of routing every flit arrival
    /// through [`NodeLoadStats::record_arrivals`].
    pub fn arrivals_mut(&mut self) -> &mut [u64] {
        &mut self.arrivals
    }

    /// Per-node load in flits per cycle.
    pub fn load_per_cycle(&self) -> Vec<f64> {
        self.arrivals
            .iter()
            .map(|&a| {
                if self.cycles > 0 {
                    a as f64 / self.cycles as f64
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Summarize the split between nodes on f-rings (`on_ring[n] == true`)
    /// and the remaining usable nodes. `usable[n]` excludes faulty nodes
    /// from the "other" class. Loads are normalized to the busiest node
    /// (= 100%), matching the paper's percentage presentation.
    pub fn ring_summary(&self, on_ring: &[bool], usable: &[bool]) -> RingLoadSummary {
        assert_eq!(on_ring.len(), self.arrivals.len());
        assert_eq!(usable.len(), self.arrivals.len());
        let peak = self
            .arrivals
            .iter()
            .enumerate()
            .filter(|&(i, _)| usable[i])
            .map(|(_, &a)| a)
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        let mut ring = ClassAccum::default();
        let mut other = ClassAccum::default();
        for (i, &a) in self.arrivals.iter().enumerate() {
            if !usable[i] {
                continue;
            }
            let share = a as f64 / peak;
            if on_ring[i] {
                ring.add(share);
            } else {
                other.add(share);
            }
        }
        RingLoadSummary {
            ring_mean_percent: ring.mean() * 100.0,
            ring_peak_percent: ring.peak * 100.0,
            other_mean_percent: other.mean() * 100.0,
            other_peak_percent: other.peak * 100.0,
            ring_nodes: ring.count,
            other_nodes: other.count,
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &NodeLoadStats) {
        assert_eq!(self.arrivals.len(), other.arrivals.len());
        for (a, b) in self.arrivals.iter_mut().zip(&other.arrivals) {
            *a += b;
        }
        self.cycles += other.cycles;
    }
}

#[derive(Default)]
struct ClassAccum {
    sum: f64,
    peak: f64,
    count: usize,
}

impl ClassAccum {
    fn add(&mut self, share: f64) {
        self.sum += share;
        self.peak = self.peak.max(share);
        self.count += 1;
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The Figure 6 data point: traffic load (as a percentage of the busiest
/// node) on f-ring nodes versus the other usable nodes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RingLoadSummary {
    /// Mean load of f-ring nodes, % of peak.
    pub ring_mean_percent: f64,
    /// Peak load among f-ring nodes, % of peak.
    pub ring_peak_percent: f64,
    /// Mean load of non-ring usable nodes, % of peak.
    pub other_mean_percent: f64,
    /// Peak load among non-ring usable nodes, % of peak.
    pub other_peak_percent: f64,
    /// Number of f-ring nodes.
    pub ring_nodes: usize,
    /// Number of other usable nodes.
    pub other_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_per_cycle() {
        let mut s = NodeLoadStats::new(4);
        for _ in 0..10 {
            s.tick();
        }
        for _ in 0..20 {
            s.record_arrival(NodeId(2));
        }
        let l = s.load_per_cycle();
        assert_eq!(l[2], 2.0);
        assert_eq!(l[0], 0.0);
    }

    #[test]
    fn ring_summary_splits_classes() {
        let mut s = NodeLoadStats::new(4);
        s.tick();
        // Node 0: ring, 100 arrivals (peak). Node 1: ring, 50.
        // Node 2: other, 25. Node 3: faulty, 999 (ignored).
        for _ in 0..100 {
            s.record_arrival(NodeId(0));
        }
        for _ in 0..50 {
            s.record_arrival(NodeId(1));
        }
        for _ in 0..25 {
            s.record_arrival(NodeId(2));
        }
        for _ in 0..999 {
            s.record_arrival(NodeId(3));
        }
        let on_ring = [true, true, false, false];
        let usable = [true, true, true, false];
        let sum = s.ring_summary(&on_ring, &usable);
        // Peak is over usable nodes only (node 3's count is ignored).
        assert!((sum.ring_peak_percent - 100.0).abs() < 1e-9);
        assert!((sum.ring_mean_percent - 75.0).abs() < 1e-9);
        assert!((sum.other_mean_percent - 25.0).abs() < 1e-9);
        assert_eq!(sum.ring_nodes, 2);
        assert_eq!(sum.other_nodes, 1);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = NodeLoadStats::new(2);
        let sum = s.ring_summary(&[false, false], &[true, true]);
        assert_eq!(sum.ring_mean_percent, 0.0);
        assert_eq!(sum.other_mean_percent, 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = NodeLoadStats::new(2);
        a.tick();
        a.record_arrival(NodeId(0));
        let mut b = NodeLoadStats::new(2);
        b.tick();
        b.record_arrival(NodeId(0));
        b.record_arrival(NodeId(1));
        a.merge(&b);
        assert_eq!(a.arrivals(), &[2, 1]);
        assert_eq!(a.load_per_cycle()[0], 1.0);
    }
}
