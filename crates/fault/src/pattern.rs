//! Static block fault patterns: construction, convex coalescing, random
//! generation, and connectivity checking.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wormsim_topology::{Coord, Mesh, NodeId, Rect, ALL_DIRECTIONS};

/// Index of a fault region within a [`FaultPattern`].
pub type RegionId = usize;

/// Errors from fault-pattern construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// The healthy part of the network is disconnected by the faults
    /// (the paper's model excludes such patterns, §2.2).
    Disconnects,
    /// Every node ended up faulty/disabled.
    AllFaulty,
    /// A faulty coordinate lies outside the mesh.
    OutOfBounds(Coord),
    /// Random generation failed to find an acceptable pattern within the
    /// attempt budget.
    GenerationFailed,
}

impl core::fmt::Display for PatternError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PatternError::Disconnects => write!(f, "fault pattern disconnects the network"),
            PatternError::AllFaulty => write!(f, "fault pattern leaves no healthy node"),
            PatternError::OutOfBounds(c) => write!(f, "faulty coordinate {c:?} outside mesh"),
            PatternError::GenerationFailed => {
                write!(f, "could not generate an acceptable fault pattern")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A static pattern of node faults coalesced into convex (block) regions.
///
/// Per the paper's model (§2.2): only nodes fail; a failed node takes all its
/// incident links with it; adjacent faults coalesce into rectangular regions
/// (the *block fault model*); patterns are static and never disconnect the
/// healthy part of the network.
///
/// Nodes swallowed by the convex closure but not originally faulty are
/// *disabled*: they behave exactly like faulty nodes for routing and traffic
/// (turned off), but are distinguishable for reporting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultPattern {
    width: u16,
    height: u16,
    /// Per-node: true if the node is unusable (originally faulty or disabled).
    faulty: Vec<bool>,
    /// Per-node: true only for seed (originally failed) nodes.
    seed_faulty: Vec<bool>,
    /// Convex block regions, disjoint, pairwise non-touching (Chebyshev > 1).
    regions: Vec<Rect>,
    /// Per-node region membership (`usize::MAX` = healthy).
    region_of: Vec<usize>,
}

impl FaultPattern {
    /// The fault-free pattern.
    pub fn fault_free(mesh: &Mesh) -> Self {
        FaultPattern {
            width: mesh.width(),
            height: mesh.height(),
            faulty: vec![false; mesh.num_nodes()],
            seed_faulty: vec![false; mesh.num_nodes()],
            regions: Vec::new(),
            region_of: vec![usize::MAX; mesh.num_nodes()],
        }
    }

    /// Build a pattern from an explicit set of faulty coordinates. The set is
    /// coalesced into convex blocks (bounding-box closure, merging blocks
    /// whose rings would overlap faults); connectivity is verified.
    pub fn from_faulty_coords(
        mesh: &Mesh,
        coords: impl IntoIterator<Item = Coord>,
    ) -> Result<Self, PatternError> {
        let mut seed = vec![false; mesh.num_nodes()];
        for c in coords {
            let n = mesh.try_node_at(c).ok_or(PatternError::OutOfBounds(c))?;
            seed[n.index()] = true;
        }
        Self::from_seed_vec(mesh, seed)
    }

    /// Build a pattern from explicit rectangular blocks (used by the paper's
    /// §5.2 fixed layout). Blocks that touch are merged; the full covered
    /// area is treated as seed-faulty.
    pub fn from_rects(mesh: &Mesh, rects: &[Rect]) -> Result<Self, PatternError> {
        let mut seed = vec![false; mesh.num_nodes()];
        for r in rects {
            for c in r.coords() {
                let n = mesh.try_node_at(c).ok_or(PatternError::OutOfBounds(c))?;
                seed[n.index()] = true;
            }
        }
        Self::from_seed_vec(mesh, seed)
    }

    fn from_seed_vec(mesh: &Mesh, seed: Vec<bool>) -> Result<Self, PatternError> {
        let regions = coalesce_blocks(mesh, &seed);
        let mut faulty = seed.clone();
        let mut region_of = vec![usize::MAX; mesh.num_nodes()];
        for (i, r) in regions.iter().enumerate() {
            for c in r.coords() {
                let n = mesh.node_at(c);
                faulty[n.index()] = true;
                region_of[n.index()] = i;
            }
        }
        let pattern = FaultPattern {
            width: mesh.width(),
            height: mesh.height(),
            faulty,
            seed_faulty: seed,
            regions,
            region_of,
        };
        if pattern.num_healthy() == 0 {
            return Err(PatternError::AllFaulty);
        }
        if !pattern.healthy_connected(mesh) {
            return Err(PatternError::Disconnects);
        }
        Ok(pattern)
    }

    /// Whether node `n` is unusable (faulty or disabled).
    #[inline]
    pub fn is_faulty(&self, n: NodeId) -> bool {
        self.faulty[n.index()]
    }

    /// Whether node `n` was an original (seed) failure, as opposed to a node
    /// disabled by the convex closure.
    #[inline]
    pub fn is_seed_faulty(&self, n: NodeId) -> bool {
        self.seed_faulty[n.index()]
    }

    /// The block region containing `n`, if any.
    #[inline]
    pub fn region_of(&self, n: NodeId) -> Option<RegionId> {
        let r = self.region_of[n.index()];
        (r != usize::MAX).then_some(r)
    }

    /// The convex block regions (disjoint, pairwise Chebyshev-distance > 1).
    #[inline]
    pub fn regions(&self) -> &[Rect] {
        &self.regions
    }

    /// Number of unusable nodes.
    pub fn num_faulty(&self) -> usize {
        self.faulty.iter().filter(|&&f| f).count()
    }

    /// Number of original (seed) failures.
    pub fn num_seed_faulty(&self) -> usize {
        self.seed_faulty.iter().filter(|&&f| f).count()
    }

    /// Number of healthy (usable) nodes.
    pub fn num_healthy(&self) -> usize {
        self.faulty.len() - self.num_faulty()
    }

    /// Iterator over healthy node ids.
    pub fn healthy_nodes<'a>(&'a self, mesh: &'a Mesh) -> impl Iterator<Item = NodeId> + 'a {
        mesh.nodes().filter(move |n| !self.is_faulty(*n))
    }

    /// True when there are no faults at all.
    pub fn is_fault_free(&self) -> bool {
        self.regions.is_empty()
    }

    /// Extend this pattern with additional seed failures appearing at
    /// runtime (the online fault model of `wormsim-chaos`).
    ///
    /// Incremental coalescing: instead of re-clustering every seed from
    /// scratch, the merge fixpoint starts from the existing (already
    /// coalesced) regions plus one point rectangle per new fault —
    /// O(regions + new faults) rectangles rather than O(total seeds).
    /// Because block coalescing is confluent (the fixpoint of
    /// "merge touching rectangles into their union" does not depend on the
    /// starting partition), the result is identical to rebuilding from the
    /// union of all seeds — a property the chaos crate's proptest suite
    /// checks against the from-scratch constructor.
    ///
    /// The same acceptability rules apply as at construction: the extended
    /// pattern is rejected if it disconnects the healthy mesh or leaves no
    /// healthy node. `self` is untouched on rejection, so a caller can
    /// drop an unacceptable event and keep running.
    pub fn extend(
        &self,
        mesh: &Mesh,
        new_faults: impl IntoIterator<Item = Coord>,
    ) -> Result<Self, PatternError> {
        debug_assert_eq!((mesh.width(), mesh.height()), (self.width, self.height));
        let mut seed = self.seed_faulty.clone();
        let mut boxes = self.regions.clone();
        for c in new_faults {
            let n = mesh.try_node_at(c).ok_or(PatternError::OutOfBounds(c))?;
            if !seed[n.index()] {
                seed[n.index()] = true;
                boxes.push(Rect::point(c));
            }
        }
        let regions = merge_to_fixpoint(boxes);
        let mut faulty = seed.clone();
        let mut region_of = vec![usize::MAX; mesh.num_nodes()];
        for (i, r) in regions.iter().enumerate() {
            for c in r.coords() {
                let n = mesh.node_at(c);
                faulty[n.index()] = true;
                region_of[n.index()] = i;
            }
        }
        let pattern = FaultPattern {
            width: self.width,
            height: self.height,
            faulty,
            seed_faulty: seed,
            regions,
            region_of,
        };
        if pattern.num_healthy() == 0 {
            return Err(PatternError::AllFaulty);
        }
        if !pattern.healthy_connected(mesh) {
            return Err(PatternError::Disconnects);
        }
        Ok(pattern)
    }

    /// BFS connectivity check over healthy nodes (paper §2.2: a pattern is
    /// acceptable only if every healthy pair remains connected).
    pub fn healthy_connected(&self, mesh: &Mesh) -> bool {
        let Some(start) = mesh.nodes().find(|n| !self.is_faulty(*n)) else {
            return false;
        };
        let mut seen = vec![false; mesh.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            for d in ALL_DIRECTIONS {
                if let Some(v) = mesh.neighbor(u, d) {
                    if !self.is_faulty(v) && !seen[v.index()] {
                        seen[v.index()] = true;
                        visited += 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        visited == self.num_healthy()
    }
}

/// Coalesce a seed fault set into convex blocks:
/// 1. group seeds into Chebyshev-adjacent clusters,
/// 2. replace each cluster by its bounding box (convex closure),
/// 3. merge any two boxes that *touch* (Chebyshev distance ≤ 1 — their
///    f-rings would otherwise contain faulty nodes), and repeat to fixpoint.
fn coalesce_blocks(mesh: &Mesh, seed: &[bool]) -> Vec<Rect> {
    let boxes: Vec<Rect> = mesh
        .nodes()
        .filter(|n| seed[n.index()])
        .map(|n| Rect::point(mesh.coord(n)))
        .collect();
    merge_to_fixpoint(boxes)
}

/// Merge any two rectangles that touch (Chebyshev distance ≤ 1) into their
/// union, repeated to fixpoint, sorted by `(min.y, min.x)`. The fixpoint is
/// independent of the starting partition of the covered area, which is what
/// lets [`FaultPattern::extend`] start from already-coalesced regions.
fn merge_to_fixpoint(mut boxes: Vec<Rect>) -> Vec<Rect> {
    loop {
        let mut merged_any = false;
        let mut out: Vec<Rect> = Vec::with_capacity(boxes.len());
        'outer: for b in boxes.drain(..) {
            for existing in out.iter_mut() {
                if existing.touches(&b) {
                    *existing = existing.union(&b);
                    merged_any = true;
                    continue 'outer;
                }
            }
            out.push(b);
        }
        boxes = out;
        if !merged_any {
            break;
        }
    }
    boxes.sort_by_key(|r| (r.min.y, r.min.x));
    boxes
}

/// Configurable random fault-pattern generator. Mirrors the paper's §5
/// methodology: a given number of node failures placed uniformly at random,
/// subject to the block fault model and the network staying connected.
///
/// ```
/// use rand::SeedableRng;
/// use wormsim_topology::Mesh;
/// use wormsim_fault::FaultPatternBuilder;
///
/// let mesh = Mesh::square(10);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let pattern = FaultPatternBuilder::new(5)
///     .interior_only(true)
///     .generate(&mesh, &mut rng)
///     .unwrap();
/// assert_eq!(pattern.num_seed_faulty(), 5);
/// assert!(pattern.healthy_connected(&mesh));
/// ```
#[derive(Clone, Debug)]
pub struct FaultPatternBuilder {
    num_seed_faults: usize,
    /// Reject patterns whose convex closure disables more than
    /// `max_total_factor ×` the seed count (guards against runaway closure).
    max_total_factor: f64,
    /// Require all fault blocks to avoid the mesh boundary (closed f-rings
    /// only, no f-chains).
    interior_only: bool,
    /// Rejection-sampling attempt budget.
    max_attempts: usize,
}

impl FaultPatternBuilder {
    /// A generator for `num_seed_faults` random node failures.
    pub fn new(num_seed_faults: usize) -> Self {
        FaultPatternBuilder {
            num_seed_faults,
            max_total_factor: 3.0,
            interior_only: false,
            max_attempts: 1000,
        }
    }

    /// Limit how much the convex closure may inflate the fault count.
    pub fn max_total_factor(mut self, f: f64) -> Self {
        self.max_total_factor = f;
        self
    }

    /// Only accept patterns whose blocks avoid the mesh boundary.
    pub fn interior_only(mut self, yes: bool) -> Self {
        self.interior_only = yes;
        self
    }

    /// Set the rejection-sampling attempt budget.
    pub fn max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n;
        self
    }

    /// Sample a pattern.
    pub fn generate<R: Rng>(&self, mesh: &Mesh, rng: &mut R) -> Result<FaultPattern, PatternError> {
        if self.num_seed_faults == 0 {
            return Ok(FaultPattern::fault_free(mesh));
        }
        let all: Vec<NodeId> = mesh.nodes().collect();
        let cap = ((self.num_seed_faults as f64) * self.max_total_factor).ceil() as usize;
        for _ in 0..self.max_attempts {
            let picks: Vec<NodeId> = all
                .choose_multiple(rng, self.num_seed_faults)
                .copied()
                .collect();
            let mut seed = vec![false; mesh.num_nodes()];
            for n in &picks {
                seed[n.index()] = true;
            }
            let Ok(pattern) = FaultPattern::from_seed_vec(mesh, seed) else {
                continue;
            };
            if pattern.num_faulty() > cap {
                continue;
            }
            if self.interior_only && pattern.regions().iter().any(|r| touches_boundary(mesh, r)) {
                continue;
            }
            return Ok(pattern);
        }
        Err(PatternError::GenerationFailed)
    }
}

fn touches_boundary(mesh: &Mesh, r: &Rect) -> bool {
    r.min.x == 0 || r.min.y == 0 || r.max.x == mesh.width() - 1 || r.max.y == mesh.height() - 1
}

/// Convenience wrapper: a random pattern with `num_faults` seed failures
/// using default builder settings.
pub fn random_pattern<R: Rng>(
    mesh: &Mesh,
    num_faults: usize,
    rng: &mut R,
) -> Result<FaultPattern, PatternError> {
    FaultPatternBuilder::new(num_faults).generate(mesh, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mesh() -> Mesh {
        Mesh::square(10)
    }

    #[test]
    fn fault_free_pattern() {
        let m = mesh();
        let p = FaultPattern::fault_free(&m);
        assert!(p.is_fault_free());
        assert_eq!(p.num_healthy(), 100);
        assert!(p.healthy_connected(&m));
    }

    #[test]
    fn single_fault_is_1x1_block() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        assert_eq!(p.regions().len(), 1);
        assert_eq!(p.regions()[0], Rect::point(Coord::new(5, 5)));
        assert!(p.is_faulty(m.node(5, 5)));
        assert!(p.is_seed_faulty(m.node(5, 5)));
        assert_eq!(p.num_faulty(), 1);
    }

    #[test]
    fn adjacent_faults_coalesce() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(4, 4), Coord::new(5, 4)]).unwrap();
        assert_eq!(p.regions().len(), 1);
        assert_eq!(p.regions()[0].area(), 2);
    }

    #[test]
    fn diagonal_faults_coalesce_and_convexify() {
        let m = mesh();
        // Diagonal pair: Chebyshev-adjacent, so one 2x2 block; the two
        // off-diagonal nodes become disabled (not seed-faulty).
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(4, 4), Coord::new(5, 5)]).unwrap();
        assert_eq!(p.regions().len(), 1);
        assert_eq!(p.regions()[0].area(), 4);
        assert_eq!(p.num_faulty(), 4);
        assert_eq!(p.num_seed_faulty(), 2);
        assert!(p.is_faulty(m.node(5, 4)));
        assert!(!p.is_seed_faulty(m.node(5, 4)));
    }

    #[test]
    fn near_blocks_merge_when_rings_would_overlap_faults() {
        let m = mesh();
        // Two seeds at Chebyshev distance 1 via a gap? (4,4) and (6,4) are
        // Chebyshev distance 2: they stay separate blocks with overlapping
        // rings (the paper's overlapping f-ring case).
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(4, 4), Coord::new(6, 4)]).unwrap();
        assert_eq!(p.regions().len(), 2);
        // Distance-1 seeds merge.
        let p2 =
            FaultPattern::from_faulty_coords(&m, [Coord::new(4, 4), Coord::new(5, 4)]).unwrap();
        assert_eq!(p2.regions().len(), 1);
    }

    #[test]
    fn regions_never_touch_each_other() {
        let m = mesh();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = random_pattern(&m, 10, &mut rng).unwrap();
            let regions = p.regions();
            for i in 0..regions.len() {
                for j in i + 1..regions.len() {
                    assert!(
                        !regions[i].touches(&regions[j]),
                        "regions {i} and {j} touch: {:?} {:?}",
                        regions[i],
                        regions[j]
                    );
                }
            }
        }
    }

    #[test]
    fn disconnecting_pattern_rejected() {
        let m = Mesh::new(3, 3);
        // Full middle row kills connectivity between top and bottom.
        let err = FaultPattern::from_faulty_coords(
            &m,
            [Coord::new(0, 1), Coord::new(1, 1), Coord::new(2, 1)],
        )
        .unwrap_err();
        assert_eq!(err, PatternError::Disconnects);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let m = mesh();
        let err = FaultPattern::from_faulty_coords(&m, [Coord::new(10, 0)]).unwrap_err();
        assert_eq!(err, PatternError::OutOfBounds(Coord::new(10, 0)));
    }

    #[test]
    fn all_faulty_rejected() {
        let m = Mesh::new(2, 2);
        let err = FaultPattern::from_faulty_coords(
            &m,
            [
                Coord::new(0, 0),
                Coord::new(0, 1),
                Coord::new(1, 0),
                Coord::new(1, 1),
            ],
        )
        .unwrap_err();
        assert_eq!(err, PatternError::AllFaulty);
    }

    #[test]
    fn random_generation_respects_count_and_connectivity() {
        let m = mesh();
        let mut rng = SmallRng::seed_from_u64(42);
        for faults in [1, 5, 10] {
            let p = random_pattern(&m, faults, &mut rng).unwrap();
            assert_eq!(p.num_seed_faulty(), faults);
            assert!(p.num_faulty() >= faults);
            assert!(p.healthy_connected(&m));
        }
    }

    #[test]
    fn interior_only_generation() {
        let m = mesh();
        let mut rng = SmallRng::seed_from_u64(3);
        let builder = FaultPatternBuilder::new(5).interior_only(true);
        for _ in 0..20 {
            let p = builder.generate(&m, &mut rng).unwrap();
            for r in p.regions() {
                assert!(r.min.x > 0 && r.min.y > 0);
                assert!(r.max.x < 9 && r.max.y < 9);
            }
        }
    }

    #[test]
    fn zero_faults_generates_fault_free() {
        let m = mesh();
        let mut rng = SmallRng::seed_from_u64(1);
        let p = random_pattern(&m, 0, &mut rng).unwrap();
        assert!(p.is_fault_free());
    }

    #[test]
    fn paper_5_2_layout() {
        // Paper §5.2: "Three fault regions overlapping in a row are
        // considered as a block fault region with height 3 and width 2, and
        // two block fault regions with height and width 1."
        let m = mesh();
        let p = FaultPattern::from_rects(
            &m,
            &[
                Rect::new(Coord::new(3, 3), Coord::new(4, 5)), // 2 wide, 3 tall
                Rect::point(Coord::new(7, 7)),
                Rect::point(Coord::new(7, 1)),
            ],
        )
        .unwrap();
        assert_eq!(p.regions().len(), 3);
        assert_eq!(p.num_faulty(), 8);
        assert!(p.healthy_connected(&m));
    }

    #[test]
    fn extend_merges_with_existing_region() {
        let m = mesh();
        let base = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let ext = base.extend(&m, [Coord::new(6, 6)]).unwrap();
        // Diagonal neighbor touches the existing block: one 2x2 region.
        assert_eq!(ext.regions().len(), 1);
        assert_eq!(
            ext.regions()[0],
            Rect::new(Coord::new(5, 5), Coord::new(6, 6))
        );
        // Identical to the from-scratch construction over all seeds.
        let fresh =
            FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5), Coord::new(6, 6)]).unwrap();
        assert_eq!(ext.regions(), fresh.regions());
        assert_eq!(ext.num_faulty(), fresh.num_faulty());
        assert_eq!(ext.num_seed_faulty(), fresh.num_seed_faulty());
    }

    #[test]
    fn extend_far_fault_adds_new_region() {
        let m = mesh();
        let base = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let ext = base.extend(&m, [Coord::new(1, 1)]).unwrap();
        assert_eq!(ext.regions().len(), 2);
        // Regions stay sorted by (min.y, min.x).
        assert_eq!(ext.regions()[0], Rect::point(Coord::new(1, 1)));
        assert_eq!(ext.regions()[1], Rect::point(Coord::new(5, 5)));
    }

    #[test]
    fn extend_rejects_disconnecting_event_without_mutating_base() {
        let m = Mesh::new(3, 3);
        let base = FaultPattern::from_faulty_coords(&m, [Coord::new(0, 1)]).unwrap();
        let err = base
            .extend(&m, [Coord::new(1, 1), Coord::new(2, 1)])
            .unwrap_err();
        assert_eq!(err, PatternError::Disconnects);
        assert_eq!(base.num_seed_faulty(), 1);
        assert_eq!(base.regions().len(), 1);
    }

    #[test]
    fn extend_with_already_faulty_coord_is_identity() {
        let m = mesh();
        let base = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let ext = base.extend(&m, [Coord::new(5, 5)]).unwrap();
        assert_eq!(ext.regions(), base.regions());
        assert_eq!(ext.num_seed_faulty(), base.num_seed_faulty());
    }

    #[test]
    fn region_of_lookup() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(2, 2)]).unwrap();
        assert_eq!(p.region_of(m.node(2, 2)), Some(0));
        assert_eq!(p.region_of(m.node(3, 3)), None);
    }
}
