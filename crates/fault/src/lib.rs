//! # wormsim-fault
//!
//! The block (convex) node-fault model of the paper (§2.2) and the f-ring /
//! f-chain machinery of the Boppana–Chalasani fault-tolerance scheme (§2.3).
//!
//! - [`FaultPattern`] — a static set of faulty nodes coalesced into convex
//!   rectangular *fault regions*; non-faulty nodes swallowed by the convex
//!   closure are *disabled* (powered off) as in the block-fault literature.
//! - [`FaultPatternBuilder`] / [`random_pattern`] — random generation of
//!   patterns with a given faulty-node count, with rejection of patterns
//!   that disconnect the network (paper §2.2 assumes connectedness).
//! - [`FRing`] / [`FRingSet`] — the ring (or boundary-clipped chain) of
//!   fault-free nodes around each region, with clockwise/counterclockwise
//!   navigation used by the routing overlay.
//! - [`NodeLabeling`] — the Boura–Das safe/unsafe/faulty node labeling used
//!   by the comparison fault-tolerant routing scheme (paper ref \[7\]).
//!
//! ```
//! use wormsim_topology::{Mesh, Coord};
//! use wormsim_fault::FaultPattern;
//!
//! let mesh = Mesh::square(10);
//! // A 2x3 fault block in the interior.
//! let pattern = FaultPattern::from_faulty_coords(
//!     &mesh,
//!     [(4, 4), (5, 4), (4, 5), (5, 5), (4, 6), (5, 6)].map(Coord::from),
//! )
//! .unwrap();
//! assert_eq!(pattern.regions().len(), 1);
//! let rings = wormsim_fault::FRingSet::build(&mesh, &pattern);
//! assert!(rings.ring(0).is_closed());
//! assert_eq!(rings.ring(0).nodes().len(), 14); // ring around a 2x3 block
//! ```

mod labeling;
mod pattern;
mod ring;

pub use labeling::{NodeLabel, NodeLabeling};
pub use pattern::{random_pattern, FaultPattern, FaultPatternBuilder, PatternError, RegionId};
pub use ring::{FRing, FRingSet, Orientation, RingPosition};
