//! Boura–Das node labeling (paper ref [7]).
//!
//! Boura and Das tolerate faults by *labeling* nodes rather than building
//! f-rings: a healthy node becomes **unsafe** when faults hem it in enough
//! that messages routed through it may be trapped — operationally, when two
//! or more of its neighbors are faulty or unsafe. Iterating this rule to a
//! fixpoint fills in one-wide slots and concave pockets between fault
//! clusters; messages are then routed adaptively in the remaining *safe*
//! region, treating unsafe nodes as obstacles.

use crate::pattern::FaultPattern;
use serde::{Deserialize, Serialize};
use wormsim_topology::{Mesh, NodeId, ALL_DIRECTIONS};

/// The label assigned to each node by the Boura–Das procedure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeLabel {
    /// Healthy and routable-through.
    Safe,
    /// Healthy but excluded from routing (may cause routing difficulty).
    Unsafe,
    /// Failed (or disabled by the block model).
    Faulty,
}

/// The complete labeling of a mesh under a fault pattern.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeLabeling {
    labels: Vec<NodeLabel>,
    num_unsafe: usize,
}

impl NodeLabeling {
    /// Run the labeling to fixpoint: a safe node with ≥ 2 faulty/unsafe
    /// neighbors becomes unsafe. The mesh boundary does not count as a
    /// blocked neighbor.
    pub fn compute(mesh: &Mesh, pattern: &FaultPattern) -> Self {
        let mut labels: Vec<NodeLabel> = mesh
            .nodes()
            .map(|n| {
                if pattern.is_faulty(n) {
                    NodeLabel::Faulty
                } else {
                    NodeLabel::Safe
                }
            })
            .collect();
        loop {
            let mut changed = false;
            for n in mesh.nodes() {
                if labels[n.index()] != NodeLabel::Safe {
                    continue;
                }
                let blocked = ALL_DIRECTIONS
                    .iter()
                    .filter_map(|&d| mesh.neighbor(n, d))
                    .filter(|v| labels[v.index()] != NodeLabel::Safe)
                    .count();
                if blocked >= 2 {
                    labels[n.index()] = NodeLabel::Unsafe;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let num_unsafe = labels.iter().filter(|&&l| l == NodeLabel::Unsafe).count();
        NodeLabeling { labels, num_unsafe }
    }

    /// The label of node `n`.
    #[inline]
    pub fn label(&self, n: NodeId) -> NodeLabel {
        self.labels[n.index()]
    }

    /// Whether `n` may route traffic (is `Safe`).
    #[inline]
    pub fn is_safe(&self, n: NodeId) -> bool {
        self.labels[n.index()] == NodeLabel::Safe
    }

    /// Number of healthy nodes labeled `Unsafe`.
    pub fn num_unsafe(&self) -> usize {
        self.num_unsafe
    }

    /// Whether the safe subgraph is connected (required for the Boura–Das
    /// scheme to deliver between all safe nodes).
    pub fn safe_connected(&self, mesh: &Mesh) -> bool {
        let Some(start) = mesh.nodes().find(|&n| self.is_safe(n)) else {
            return false;
        };
        let total = self
            .labels
            .iter()
            .filter(|&&l| l == NodeLabel::Safe)
            .count();
        let mut seen = vec![false; mesh.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            for d in ALL_DIRECTIONS {
                if let Some(v) = mesh.neighbor(u, d) {
                    if self.is_safe(v) && !seen[v.index()] {
                        seen[v.index()] = true;
                        visited += 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        visited == total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_topology::{Coord, Rect};

    #[test]
    fn fault_free_all_safe() {
        let m = Mesh::square(10);
        let p = FaultPattern::fault_free(&m);
        let l = NodeLabeling::compute(&m, &p);
        assert_eq!(l.num_unsafe(), 0);
        assert!(m.nodes().all(|n| l.is_safe(n)));
        assert!(l.safe_connected(&m));
    }

    #[test]
    fn single_fault_creates_no_unsafe() {
        let m = Mesh::square(10);
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let l = NodeLabeling::compute(&m, &p);
        assert_eq!(l.num_unsafe(), 0);
        assert_eq!(l.label(m.node(5, 5)), NodeLabel::Faulty);
    }

    #[test]
    fn one_wide_slot_between_blocks_becomes_unsafe() {
        let m = Mesh::square(10);
        // Two 1x3 wall blocks with a one-node-wide slot (column 4) between.
        let p = FaultPattern::from_rects(
            &m,
            &[
                Rect::new(Coord::new(3, 4), Coord::new(3, 6)),
                Rect::new(Coord::new(5, 4), Coord::new(5, 6)),
            ],
        )
        .unwrap();
        let l = NodeLabeling::compute(&m, &p);
        for y in 4..=6 {
            assert_eq!(
                l.label(m.node(4, y)),
                NodeLabel::Unsafe,
                "slot cell (4,{y}) should be unsafe"
            );
        }
        // Cells just outside the slot stay safe (only one blocked neighbor).
        assert!(l.is_safe(m.node(4, 7)));
        assert!(l.is_safe(m.node(4, 3)));
        assert!(l.safe_connected(&m));
    }

    #[test]
    fn diagonal_blocks_leave_corner_safe() {
        let m = Mesh::square(12);
        // 1x1 blocks kitty-corner at Chebyshev distance 2: every healthy
        // node has at most one faulty neighbor, so no unsafe labels.
        let p = FaultPattern::from_rects(
            &m,
            &[Rect::point(Coord::new(4, 4)), Rect::point(Coord::new(6, 6))],
        )
        .unwrap();
        let l = NodeLabeling::compute(&m, &p);
        assert_eq!(l.num_unsafe(), 0);
    }

    #[test]
    fn cascade_fills_pocket() {
        let m = Mesh::square(12);
        // U-shaped cavity built from three walls around columns 4..6:
        // west wall x=3, east wall x=7, floor y=3 (x=4..6 is the cavity
        // mouth at the top). Walls are Chebyshev distance >1 from each
        // other? x=3 wall to floor (4..6,3): Chebyshev distance 1 → they
        // coalesce into one block. Use a labeling-only scenario instead:
        // walls x=3 and x=5 (slot col 4), then extend: after the slot
        // becomes unsafe, the cell above a 2-blocked-by-unsafe spot
        // cascades only if it sees two non-safe neighbors.
        let p = FaultPattern::from_rects(
            &m,
            &[
                Rect::new(Coord::new(3, 2), Coord::new(3, 6)),
                Rect::new(Coord::new(5, 2), Coord::new(5, 6)),
                Rect::new(Coord::new(4, 8), Coord::new(4, 8)),
            ],
        )
        .unwrap();
        let l = NodeLabeling::compute(&m, &p);
        // Slot cells (4, 2..=6) are unsafe directly.
        for y in 2..=6 {
            assert_eq!(l.label(m.node(4, y)), NodeLabel::Unsafe);
        }
        // (4,7) sees unsafe (4,6) below and faulty (4,8) above → cascades.
        assert_eq!(l.label(m.node(4, 7)), NodeLabel::Unsafe);
        assert!(l.safe_connected(&m));
    }

    #[test]
    fn unsafe_count_matches_labels() {
        let m = Mesh::square(10);
        let p = FaultPattern::from_rects(
            &m,
            &[
                Rect::new(Coord::new(2, 2), Coord::new(2, 4)),
                Rect::new(Coord::new(4, 2), Coord::new(4, 4)),
            ],
        )
        .unwrap();
        let l = NodeLabeling::compute(&m, &p);
        let counted = m
            .nodes()
            .filter(|&n| l.label(n) == NodeLabel::Unsafe)
            .count();
        assert_eq!(l.num_unsafe(), counted);
        assert!(l.num_unsafe() >= 3);
    }
}
