//! f-ring / f-chain construction and navigation (paper §2.3).
//!
//! Around every convex fault region sits a ring of fault-free nodes — the
//! *f-ring* — that the Boppana–Chalasani scheme uses to route messages
//! around the region. When the region touches the mesh boundary the ring is
//! clipped into an open path, an *f-chain*.

use crate::pattern::{FaultPattern, RegionId};
use serde::{Deserialize, Serialize};
use wormsim_topology::{Direction, Mesh, NodeId};

/// Traversal orientation along a ring, in the standard drawing (+x east,
/// +y north). On a closed ring, `Clockwise` visits the top edge west→east.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Orientation {
    /// Follow the ring clockwise.
    Clockwise,
    /// Follow the ring counterclockwise.
    Counterclockwise,
}

impl Orientation {
    /// The reverse orientation.
    pub fn reversed(self) -> Orientation {
        match self {
            Orientation::Clockwise => Orientation::Counterclockwise,
            Orientation::Counterclockwise => Orientation::Clockwise,
        }
    }
}

/// A node's position on a particular ring.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RingPosition {
    /// Which ring.
    pub ring: RegionId,
    /// Index into [`FRing::nodes`].
    pub pos: u16,
}

/// The f-ring (or boundary-clipped f-chain) of one fault region: fault-free
/// nodes listed in clockwise order. On a closed ring the list is cyclic; on
/// a chain it is an open path whose ends stop at the mesh boundary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FRing {
    region: RegionId,
    nodes: Vec<NodeId>,
    closed: bool,
}

impl FRing {
    /// The fault region this ring encloses.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Ring nodes in clockwise order (cyclic when [`FRing::is_closed`]).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `true` for a full ring, `false` for a boundary-clipped chain.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Number of ring nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring is degenerate (shouldn't happen for valid patterns).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The next node along the ring from position `pos` in `orient`, and its
    /// new position. `None` at the end of an open chain (the traversal must
    /// then reverse).
    pub fn next(&self, pos: u16, orient: Orientation) -> Option<(NodeId, u16)> {
        let len = self.nodes.len() as u16;
        debug_assert!(pos < len);
        let next = match orient {
            Orientation::Clockwise => {
                if pos + 1 < len {
                    pos + 1
                } else if self.closed {
                    0
                } else {
                    return None;
                }
            }
            Orientation::Counterclockwise => {
                if pos > 0 {
                    pos - 1
                } else if self.closed {
                    len - 1
                } else {
                    return None;
                }
            }
        };
        Some((self.nodes[next as usize], next))
    }

    /// Steps from `from` to `to` moving in `orient` (ring distance). `None`
    /// if unreachable in that orientation (open chain).
    pub fn distance(&self, from: u16, to: u16, orient: Orientation) -> Option<u32> {
        let len = self.nodes.len() as i64;
        let (from, to) = (from as i64, to as i64);
        let fwd = (to - from).rem_euclid(len);
        match orient {
            Orientation::Clockwise => {
                if self.closed || to >= from {
                    Some(fwd as u32)
                } else {
                    None
                }
            }
            Orientation::Counterclockwise => {
                if self.closed || to <= from {
                    Some(((from - to).rem_euclid(len)) as u32)
                } else {
                    None
                }
            }
        }
    }
}

/// All f-rings of a fault pattern, plus a per-node membership index.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FRingSet {
    rings: Vec<FRing>,
    /// For each node, the (possibly several, when f-rings overlap) ring
    /// positions it occupies.
    membership: Vec<Vec<RingPosition>>,
}

impl FRingSet {
    /// Build the f-ring of every region of `pattern`.
    ///
    /// Construction: take the region's bounding box dilated by one (clamped
    /// to the mesh), walk its border clockwise, keep in-mesh fault-free
    /// cells. For interior regions this yields the closed f-ring; for
    /// boundary regions the faulty/clipped stretch is removed and the list
    /// rotated so the remaining nodes form one contiguous open chain.
    pub fn build(mesh: &Mesh, pattern: &FaultPattern) -> Self {
        let mut rings = Vec::with_capacity(pattern.regions().len());
        let mut membership = vec![Vec::new(); mesh.num_nodes()];
        for (region, rect) in pattern.regions().iter().enumerate() {
            let ring = build_ring(mesh, pattern, region, rect);
            for (i, &n) in ring.nodes.iter().enumerate() {
                membership[n.index()].push(RingPosition {
                    ring: region,
                    pos: i as u16,
                });
            }
            rings.push(ring);
        }
        FRingSet { rings, membership }
    }

    /// Rebuild the ring set after an online pattern change (see
    /// [`FaultPattern::extend`]), reusing the node walk of every region whose
    /// rectangle is unchanged from `prev_pattern`.
    ///
    /// Reuse is sound because a ring node sits at Chebyshev distance 1 from
    /// its rectangle: any new fault landing on it would *touch* the
    /// rectangle and therefore merge into it, changing the rect — so an
    /// unchanged rect implies an unchanged, still-healthy ring. Region ids
    /// are re-assigned (regions are kept sorted), so reused rings get the
    /// new index; the membership index is regenerated in full (cheap, one
    /// pass over ring nodes). The result is identical to
    /// [`FRingSet::build`] on the new pattern — checked by the chaos
    /// crate's property tests.
    pub fn rebuild(
        mesh: &Mesh,
        pattern: &FaultPattern,
        prev_pattern: &FaultPattern,
        prev: &FRingSet,
    ) -> Self {
        let mut rings = Vec::with_capacity(pattern.regions().len());
        let mut membership = vec![Vec::new(); mesh.num_nodes()];
        for (region, rect) in pattern.regions().iter().enumerate() {
            let ring = match prev_pattern.regions().iter().position(|r| r == rect) {
                Some(j) => FRing {
                    region,
                    nodes: prev.rings[j].nodes.clone(),
                    closed: prev.rings[j].closed,
                },
                None => build_ring(mesh, pattern, region, rect),
            };
            for (i, &n) in ring.nodes.iter().enumerate() {
                membership[n.index()].push(RingPosition {
                    ring: region,
                    pos: i as u16,
                });
            }
            rings.push(ring);
        }
        FRingSet { rings, membership }
    }

    /// The ring around region `r`.
    pub fn ring(&self, r: RegionId) -> &FRing {
        &self.rings[r]
    }

    /// All rings.
    pub fn rings(&self) -> &[FRing] {
        &self.rings
    }

    /// Ring positions of node `n` (empty when `n` is on no ring; more than
    /// one entry when f-rings overlap — paper §5.2).
    pub fn positions_of(&self, n: NodeId) -> &[RingPosition] {
        &self.membership[n.index()]
    }

    /// Whether node `n` lies on at least one f-ring.
    pub fn on_any_ring(&self, n: NodeId) -> bool {
        !self.membership[n.index()].is_empty()
    }

    /// `n`'s position on the ring of a specific region, if it is on it.
    pub fn position_on(&self, n: NodeId, region: RegionId) -> Option<RingPosition> {
        self.membership[n.index()]
            .iter()
            .copied()
            .find(|p| p.ring == region)
    }

    /// Whether node `n`'s ring membership — its set of `(ring id, position)`
    /// pairs — differs between `prev` and `self`. This is the structural
    /// half of the seed set for incremental routing-table invalidation
    /// after an online pattern extension: it catches nodes whose ring was
    /// re-walked, merged away, or merely re-numbered by the region re-sort.
    pub fn membership_changed(&self, prev: &FRingSet, n: NodeId) -> bool {
        self.positions_of(n) != prev.positions_of(n)
    }

    /// Ring-touch propagation for incremental invalidation: for every ring
    /// that contains a node flagged in `seeds`, flag **all** of that ring's
    /// nodes in `marks`. A node's precomputed ring-entry state depends on
    /// the whole ring walk (orientation choice scans every ring node), so
    /// touching one ring node dirties the entire ring. Reads only `seeds`,
    /// so the propagation is a single pass — marks never cascade.
    pub fn mark_touched_rings(&self, seeds: &[bool], marks: &mut [bool]) {
        for ring in &self.rings {
            if ring.nodes.iter().any(|&n| seeds[n.index()]) {
                for &n in &ring.nodes {
                    marks[n.index()] = true;
                }
            }
        }
    }

    /// The direction of the physical hop from ring position `pos` to the
    /// next ring node in `orient`, or `None` at a chain end. Consecutive
    /// ring nodes are always mesh-adjacent, except across the clipped gap of
    /// a chain — which `next` never crosses.
    pub fn hop_direction(
        &self,
        mesh: &Mesh,
        p: RingPosition,
        orient: Orientation,
    ) -> Option<(Direction, NodeId, u16)> {
        let ring = &self.rings[p.ring];
        let (next_node, next_pos) = ring.next(p.pos, orient)?;
        let here = ring.nodes[p.pos as usize];
        let dir = direction_between(mesh, here, next_node)?;
        Some((dir, next_node, next_pos))
    }
}

/// Direction of the single hop from `a` to adjacent node `b`.
fn direction_between(mesh: &Mesh, a: NodeId, b: NodeId) -> Option<Direction> {
    let (ca, cb) = (mesh.coord(a), mesh.coord(b));
    if ca.manhattan(cb) != 1 {
        return None;
    }
    Some(if cb.x > ca.x {
        Direction::East
    } else if cb.x < ca.x {
        Direction::West
    } else if cb.y > ca.y {
        Direction::North
    } else {
        Direction::South
    })
}

fn build_ring(
    mesh: &Mesh,
    pattern: &FaultPattern,
    region: RegionId,
    rect: &wormsim_topology::Rect,
) -> FRing {
    let dilated = rect.dilate();
    // Clamp to mesh bounds (dilate already clamps at 0).
    let max = wormsim_topology::Coord::new(
        dilated.max.x.min(mesh.width() - 1),
        dilated.max.y.min(mesh.height() - 1),
    );
    let clamped = wormsim_topology::Rect::new(dilated.min, max);
    let border = clamped.border_clockwise();
    // Mark usable cells: in-mesh (guaranteed) and fault-free.
    let usable: Vec<bool> = border
        .iter()
        .map(|&c| !pattern.is_faulty(mesh.node_at(c)))
        .collect();
    let n = border.len();
    if usable.iter().all(|&u| u) {
        // Closed ring: verify cyclic contiguity in debug builds.
        let nodes: Vec<NodeId> = border.iter().map(|&c| mesh.node_at(c)).collect();
        debug_assert!(nodes
            .iter()
            .zip(nodes.iter().cycle().skip(1))
            .take(nodes.len())
            .all(|(&a, &b)| mesh.distance(a, b) == 1));
        return FRing {
            region,
            nodes,
            closed: true,
        };
    }
    // Open chain: the unusable cells form one cyclically-contiguous run
    // (they are the region cells swallowed by clamping). Rotate so the run
    // sits at the end, then drop it.
    let start = (0..n)
        .find(|&i| usable[i] && !usable[(i + n - 1) % n])
        .expect("chain must have a usable cell after an unusable one");
    let mut nodes = Vec::with_capacity(n);
    for k in 0..n {
        let i = (start + k) % n;
        if usable[i] {
            nodes.push(mesh.node_at(border[i]));
        } else {
            break;
        }
    }
    debug_assert!(
        nodes.windows(2).all(|w| mesh.distance(w[0], w[1]) == 1),
        "f-chain nodes not contiguous for region {region}"
    );
    FRing {
        region,
        nodes,
        closed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::FaultPattern;
    use wormsim_topology::{Coord, Mesh, Rect};

    fn mesh() -> Mesh {
        Mesh::square(10)
    }

    #[test]
    fn ring_around_single_interior_fault() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        assert!(r.is_closed());
        assert_eq!(r.len(), 8);
        for &n in r.nodes() {
            assert!(!p.is_faulty(n));
            assert!(m.distance(n, m.node(5, 5)) <= 2);
        }
    }

    #[test]
    fn ring_nodes_are_cyclically_adjacent() {
        let m = mesh();
        let p =
            FaultPattern::from_rects(&m, &[Rect::new(Coord::new(3, 3), Coord::new(5, 6))]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        assert!(r.is_closed());
        // 3-wide, 4-tall block → dilated border is (5+2)x(6+2)... ring length
        // = 2*(w+2) + 2*(h+2) - 4 with w=3,h=4 → 2*5+2*6-4 = 18.
        assert_eq!(r.len(), 18);
        for i in 0..r.len() {
            let a = r.nodes()[i];
            let b = r.nodes()[(i + 1) % r.len()];
            assert_eq!(m.distance(a, b), 1);
        }
    }

    #[test]
    fn chain_when_block_touches_boundary() {
        let m = mesh();
        let p =
            FaultPattern::from_rects(&m, &[Rect::new(Coord::new(0, 4), Coord::new(1, 5))]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        assert!(!r.is_closed());
        // Chain wraps the three exposed sides: x=2 column (y 3..=6) plus
        // (0,3),(1,3),(0,6),(1,6) → 8 nodes.
        assert_eq!(r.len(), 8);
        for w in r.nodes().windows(2) {
            assert_eq!(m.distance(w[0], w[1]), 1);
        }
        for &n in r.nodes() {
            assert!(!p.is_faulty(n));
        }
    }

    #[test]
    fn chain_at_corner() {
        let m = mesh();
        let p =
            FaultPattern::from_rects(&m, &[Rect::new(Coord::new(0, 0), Coord::new(1, 1))]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        assert!(!r.is_closed());
        // Exposed sides: column x=2 (y 0..=2) and row y=2 (x 0..=2) → 5 nodes.
        assert_eq!(r.len(), 5);
        for w in r.nodes().windows(2) {
            assert_eq!(m.distance(w[0], w[1]), 1);
        }
    }

    #[test]
    fn closed_ring_navigation_wraps() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        // Walk all the way around clockwise.
        let mut pos = 0u16;
        for _ in 0..r.len() {
            let (_, next) = r.next(pos, Orientation::Clockwise).unwrap();
            pos = next;
        }
        assert_eq!(pos, 0);
        // And counterclockwise.
        for _ in 0..r.len() {
            let (_, next) = r.next(pos, Orientation::Counterclockwise).unwrap();
            pos = next;
        }
        assert_eq!(pos, 0);
    }

    #[test]
    fn chain_navigation_stops_at_ends() {
        let m = mesh();
        let p =
            FaultPattern::from_rects(&m, &[Rect::new(Coord::new(0, 4), Coord::new(1, 5))]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        let last = (r.len() - 1) as u16;
        assert!(r.next(last, Orientation::Clockwise).is_none());
        assert!(r.next(0, Orientation::Counterclockwise).is_none());
        assert!(r.next(0, Orientation::Clockwise).is_some());
    }

    #[test]
    fn membership_index() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let rings = FRingSet::build(&m, &p);
        assert!(rings.on_any_ring(m.node(4, 4)));
        assert!(rings.on_any_ring(m.node(5, 6)));
        assert!(!rings.on_any_ring(m.node(0, 0)));
        assert!(!rings.on_any_ring(m.node(5, 5))); // the fault itself
        let pos = rings.position_on(m.node(4, 4), 0).unwrap();
        assert_eq!(rings.ring(0).nodes()[pos.pos as usize], m.node(4, 4));
    }

    #[test]
    fn overlapping_rings_share_nodes() {
        let m = mesh();
        // Two 1x1 blocks at Chebyshev distance 2: rings overlap on the
        // column between them (paper §5.2 discusses exactly this case).
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(4, 4), Coord::new(6, 4)]).unwrap();
        assert_eq!(p.regions().len(), 2);
        let rings = FRingSet::build(&m, &p);
        let shared = m.node(5, 4);
        assert_eq!(rings.positions_of(shared).len(), 2);
    }

    #[test]
    fn hop_direction_is_mesh_adjacent() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        for (i, &n) in r.nodes().iter().enumerate() {
            let p0 = RingPosition {
                ring: 0,
                pos: i as u16,
            };
            for orient in [Orientation::Clockwise, Orientation::Counterclockwise] {
                let (dir, next, _) = rings.hop_direction(&m, p0, orient).unwrap();
                assert_eq!(m.neighbor(n, dir), Some(next));
            }
        }
    }

    #[test]
    fn ring_distance() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        assert_eq!(r.distance(0, 3, Orientation::Clockwise), Some(3));
        assert_eq!(r.distance(0, 3, Orientation::Counterclockwise), Some(5));
        assert_eq!(r.distance(3, 3, Orientation::Clockwise), Some(0));
    }

    #[test]
    fn rebuild_matches_fresh_build_after_extend() {
        let m = mesh();
        let base =
            FaultPattern::from_faulty_coords(&m, [Coord::new(2, 7), Coord::new(6, 2)]).unwrap();
        let base_rings = FRingSet::build(&m, &base);
        // A far fault leaves both regions' rects unchanged; a touching fault
        // merges into one of them.
        for event in [[Coord::new(8, 8)], [Coord::new(7, 2)]] {
            let ext = base.extend(&m, event).unwrap();
            let rebuilt = FRingSet::rebuild(&m, &ext, &base, &base_rings);
            let fresh = FRingSet::build(&m, &ext);
            assert_eq!(rebuilt.rings().len(), fresh.rings().len());
            for (a, b) in rebuilt.rings().iter().zip(fresh.rings()) {
                assert_eq!(a.region(), b.region());
                assert_eq!(a.nodes(), b.nodes());
                assert_eq!(a.is_closed(), b.is_closed());
            }
            for n in m.nodes() {
                assert_eq!(rebuilt.positions_of(n), fresh.positions_of(n));
            }
        }
    }

    #[test]
    fn membership_changed_tracks_extend() {
        let m = mesh();
        let base = FaultPattern::from_faulty_coords(&m, [Coord::new(2, 2)]).unwrap();
        let base_rings = FRingSet::build(&m, &base);
        let ext = base.extend(&m, [Coord::new(7, 7)]).unwrap();
        let rebuilt = FRingSet::rebuild(&m, &ext, &base, &base_rings);
        // A node on the new ring changed membership; one far from both did
        // not; nodes on the surviving ring keep theirs only if the region id
        // did not shift.
        assert!(rebuilt.membership_changed(&base_rings, m.node(7, 8)));
        assert!(!rebuilt.membership_changed(&base_rings, m.node(0, 9)));
    }

    #[test]
    fn mark_touched_rings_dirties_whole_ring_from_one_seed() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(2, 2), Coord::new(7, 7)]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let mut seeds = vec![false; m.num_nodes()];
        let first_ring_node = rings.ring(0).nodes()[0];
        seeds[first_ring_node.index()] = true;
        let mut marks = vec![false; m.num_nodes()];
        rings.mark_touched_rings(&seeds, &mut marks);
        for &n in rings.ring(0).nodes() {
            assert!(marks[n.index()], "ring 0 node not marked");
        }
        for &n in rings.ring(1).nodes() {
            assert!(!marks[n.index()], "untouched ring 1 node marked");
        }
    }

    #[test]
    fn clockwise_order_top_edge_goes_east() {
        let m = mesh();
        let p = FaultPattern::from_faulty_coords(&m, [Coord::new(5, 5)]).unwrap();
        let rings = FRingSet::build(&m, &p);
        let r = rings.ring(0);
        // First nodes of border_clockwise of the dilated rect are the top
        // edge west→east at y=6.
        let c0 = m.coord(r.nodes()[0]);
        let c1 = m.coord(r.nodes()[1]);
        assert_eq!(c0.y, 6);
        assert_eq!(c1.y, 6);
        assert_eq!(c1.x, c0.x + 1);
    }
}
