//! Property-based tests for the fault model: convexity, coalescing,
//! connectivity, and f-ring invariants over random fault sets.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wormsim_fault::{FRingSet, FaultPattern, NodeLabeling, Orientation};
use wormsim_topology::{Mesh, NodeId, ALL_DIRECTIONS};

/// Independent BFS oracle for healthy-subgraph connectivity.
fn connected_oracle(mesh: &Mesh, pattern: &FaultPattern) -> bool {
    let healthy: Vec<NodeId> = pattern.healthy_nodes(mesh).collect();
    let Some(&start) = healthy.first() else {
        return false;
    };
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(u) = stack.pop() {
        for d in ALL_DIRECTIONS {
            if let Some(v) = mesh.neighbor(u, d) {
                if !pattern.is_faulty(v) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
    }
    seen.len() == healthy.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_patterns_satisfy_block_model(seed in any::<u64>(), faults in 1usize..=10) {
        let mesh = Mesh::square(10);
        let mut rng = SmallRng::seed_from_u64(seed);
        let Ok(pattern) = wormsim_fault::random_pattern(&mesh, faults, &mut rng) else {
            // Generation may exhaust its attempt budget for unlucky seeds;
            // that is an explicit, accepted outcome.
            return Ok(());
        };
        // Every seed fault is inside some region.
        for n in mesh.nodes() {
            if pattern.is_seed_faulty(n) {
                prop_assert!(pattern.region_of(n).is_some());
            }
        }
        // Regions are convex (all covered nodes faulty) and pairwise
        // non-touching.
        let regions = pattern.regions();
        for (i, r) in regions.iter().enumerate() {
            for c in r.coords() {
                let n = mesh.node_at(c);
                prop_assert!(pattern.is_faulty(n));
                prop_assert_eq!(pattern.region_of(n), Some(i));
            }
            for other in regions.iter().skip(i + 1) {
                prop_assert!(!r.touches(other));
            }
        }
        // Faulty set is exactly the union of regions.
        let union_area: u32 = regions.iter().map(|r| r.area()).sum();
        prop_assert_eq!(union_area as usize, pattern.num_faulty());
        // Connectivity invariant upheld, and it matches the oracle.
        prop_assert!(pattern.healthy_connected(&mesh));
        prop_assert!(connected_oracle(&mesh, &pattern));
    }

    #[test]
    fn rings_enclose_regions(seed in any::<u64>(), faults in 1usize..=10) {
        let mesh = Mesh::square(10);
        let mut rng = SmallRng::seed_from_u64(seed);
        let Ok(pattern) = wormsim_fault::random_pattern(&mesh, faults, &mut rng) else {
            return Ok(());
        };
        let rings = FRingSet::build(&mesh, &pattern);
        prop_assert_eq!(rings.rings().len(), pattern.regions().len());
        for (i, ring) in rings.rings().iter().enumerate() {
            let rect = pattern.regions()[i];
            prop_assert!(!ring.is_empty());
            for &n in ring.nodes() {
                // Ring nodes are healthy and Chebyshev-adjacent to the
                // region (inside the dilated rectangle, outside the region).
                prop_assert!(!pattern.is_faulty(n));
                let c = mesh.coord(n);
                prop_assert!(rect.dilate().contains(c));
                prop_assert!(!rect.contains(c));
                // Membership index agrees.
                prop_assert!(rings.positions_of(n).iter().any(|p| p.ring == i));
            }
            // Consecutive ring nodes are mesh-adjacent; closed rings wrap.
            let nodes = ring.nodes();
            for w in nodes.windows(2) {
                prop_assert_eq!(mesh.distance(w[0], w[1]), 1);
            }
            if ring.is_closed() {
                prop_assert_eq!(mesh.distance(nodes[0], nodes[nodes.len() - 1]), 1);
                // A closed ring exists iff the dilated rect fits the mesh.
                let d = rect.dilate();
                prop_assert!(d.max.x < mesh.width() && d.max.y < mesh.height());
                prop_assert!(rect.min.x > 0 && rect.min.y > 0);
            }
            // Full traversal returns to the start on closed rings.
            if ring.is_closed() {
                let mut pos = 0u16;
                for _ in 0..ring.len() {
                    let (_, np) = ring.next(pos, Orientation::Clockwise).unwrap();
                    pos = np;
                }
                prop_assert_eq!(pos, 0);
            }
        }
    }

    #[test]
    fn labeling_is_a_fixpoint(seed in any::<u64>(), faults in 0usize..=10) {
        let mesh = Mesh::square(10);
        let mut rng = SmallRng::seed_from_u64(seed);
        let pattern = if faults == 0 {
            FaultPattern::fault_free(&mesh)
        } else {
            match wormsim_fault::random_pattern(&mesh, faults, &mut rng) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            }
        };
        let labeling = NodeLabeling::compute(&mesh, &pattern);
        for n in mesh.nodes() {
            if labeling.is_safe(n) {
                // Fixpoint: no safe node has two or more non-safe neighbors.
                let blocked = ALL_DIRECTIONS
                    .iter()
                    .filter_map(|&d| mesh.neighbor(n, d))
                    .filter(|v| !labeling.is_safe(*v))
                    .count();
                prop_assert!(blocked < 2, "safe node with {blocked} blocked neighbors");
            }
            // Faulty nodes are labeled faulty; labels partition the nodes.
            prop_assert_eq!(
                pattern.is_faulty(n),
                labeling.label(n) == wormsim_fault::NodeLabel::Faulty
            );
        }
    }

    #[test]
    fn explicit_coords_roundtrip(coords in proptest::collection::btree_set((0u16..10, 0u16..10), 1..8)) {
        let mesh = Mesh::square(10);
        let coords: Vec<_> = coords
            .into_iter()
            .map(|(x, y)| wormsim_topology::Coord::new(x, y))
            .collect();
        match FaultPattern::from_faulty_coords(&mesh, coords.iter().copied()) {
            Ok(pattern) => {
                for c in &coords {
                    prop_assert!(pattern.is_seed_faulty(mesh.node_at(*c)));
                }
                prop_assert!(pattern.num_faulty() >= coords.len());
                prop_assert!(pattern.healthy_connected(&mesh));
            }
            Err(e) => {
                // The only legal failures for in-bounds inputs.
                prop_assert!(matches!(
                    e,
                    wormsim_fault::PatternError::Disconnects
                        | wormsim_fault::PatternError::AllFaulty
                ));
            }
        }
    }
}
