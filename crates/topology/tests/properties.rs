//! Property-based tests for the topology substrate.

use proptest::prelude::*;
use wormsim_topology::{Coord, Direction, DirectionSet, Mesh, Rect, ALL_DIRECTIONS};

fn mesh_strategy() -> impl Strategy<Value = Mesh> {
    (2u16..=16, 2u16..=16).prop_map(|(w, h)| Mesh::new(w, h))
}

proptest! {
    #[test]
    fn node_coord_roundtrip(mesh in mesh_strategy(), xy in (0u16..16, 0u16..16)) {
        let c = Coord::new(xy.0 % mesh.width(), xy.1 % mesh.height());
        let n = mesh.node_at(c);
        prop_assert_eq!(mesh.coord(n), c);
    }

    #[test]
    fn neighbors_symmetric_and_unit_distance(mesh in mesh_strategy(), xy in (0u16..16, 0u16..16)) {
        let c = Coord::new(xy.0 % mesh.width(), xy.1 % mesh.height());
        let n = mesh.node_at(c);
        for d in ALL_DIRECTIONS {
            if let Some(v) = mesh.neighbor(n, d) {
                prop_assert_eq!(mesh.neighbor(v, d.opposite()), Some(n));
                prop_assert_eq!(mesh.distance(n, v), 1);
                prop_assert_ne!(mesh.color(n), mesh.color(v));
            }
        }
    }

    #[test]
    fn minimal_steps_reduce_distance(
        mesh in mesh_strategy(),
        a in (0u16..16, 0u16..16),
        b in (0u16..16, 0u16..16),
    ) {
        let from = mesh.node(a.0 % mesh.width(), a.1 % mesh.height());
        let to = mesh.node(b.0 % mesh.width(), b.1 % mesh.height());
        let dirs = mesh.minimal_directions(from, to);
        prop_assert_eq!(dirs.is_empty(), from == to);
        for d in dirs.iter() {
            let v = mesh.neighbor(from, d).expect("minimal dir stays in mesh");
            prop_assert_eq!(mesh.distance(v, to) + 1, mesh.distance(from, to));
        }
    }

    #[test]
    fn distance_is_a_metric(
        mesh in mesh_strategy(),
        a in (0u16..16, 0u16..16),
        b in (0u16..16, 0u16..16),
        c in (0u16..16, 0u16..16),
    ) {
        let na = mesh.node(a.0 % mesh.width(), a.1 % mesh.height());
        let nb = mesh.node(b.0 % mesh.width(), b.1 % mesh.height());
        let nc = mesh.node(c.0 % mesh.width(), c.1 % mesh.height());
        prop_assert_eq!(mesh.distance(na, nb), mesh.distance(nb, na));
        prop_assert_eq!(mesh.distance(na, nb) == 0, na == nb);
        prop_assert!(mesh.distance(na, nc) <= mesh.distance(na, nb) + mesh.distance(nb, nc));
        prop_assert!(mesh.distance(na, nb) <= mesh.diameter());
    }

    #[test]
    fn direction_set_matches_reference(dirs in proptest::collection::vec(0usize..4, 0..12)) {
        let mut set = DirectionSet::empty();
        let mut reference = std::collections::BTreeSet::new();
        for i in dirs {
            let d = Direction::from_index(i);
            set.insert(d);
            reference.insert(d);
        }
        prop_assert_eq!(set.len(), reference.len());
        for d in ALL_DIRECTIONS {
            prop_assert_eq!(set.contains(d), reference.contains(&d));
        }
        let collected: Vec<_> = set.iter().collect();
        let reference: Vec<_> = reference.into_iter().collect();
        prop_assert_eq!(collected, reference);
    }

    #[test]
    fn rect_union_contains_operands(
        a in (0u16..12, 0u16..12, 0u16..4, 0u16..4),
        b in (0u16..12, 0u16..12, 0u16..4, 0u16..4),
    ) {
        let ra = Rect::new(Coord::new(a.0, a.1), Coord::new(a.0 + a.2, a.1 + a.3));
        let rb = Rect::new(Coord::new(b.0, b.1), Coord::new(b.0 + b.2, b.1 + b.3));
        let u = ra.union(&rb);
        for c in ra.coords().chain(rb.coords()) {
            prop_assert!(u.contains(c));
        }
        prop_assert!(u.area() >= ra.area().max(rb.area()));
        prop_assert_eq!(ra.touches(&rb), rb.touches(&ra));
        prop_assert_eq!(ra.intersects(&rb), rb.intersects(&ra));
        if ra.intersects(&rb) {
            prop_assert!(ra.touches(&rb));
        }
    }

    #[test]
    fn rect_border_is_contiguous_subset(
        r in (0u16..12, 0u16..12, 0u16..5, 0u16..5),
    ) {
        let rect = Rect::new(Coord::new(r.0, r.1), Coord::new(r.0 + r.2, r.1 + r.3));
        let border = rect.border_clockwise();
        let unique: std::collections::HashSet<_> = border.iter().copied().collect();
        prop_assert_eq!(unique.len(), border.len(), "no duplicates");
        for c in &border {
            prop_assert!(rect.contains(*c));
            // Border cells touch the rectangle's bounding edge.
            prop_assert!(
                c.x == rect.min.x || c.x == rect.max.x || c.y == rect.min.y || c.y == rect.max.y
            );
        }
        for w in border.windows(2) {
            prop_assert_eq!(w[0].manhattan(w[1]), 1);
        }
        if rect.width() > 1 && rect.height() > 1 {
            // Cyclic closure for 2-D rectangles.
            prop_assert_eq!(border[0].manhattan(border[border.len() - 1]), 1);
        }
    }

    #[test]
    fn max_negative_hops_bounded_by_half_distance(
        mesh in mesh_strategy(),
        a in (0u16..16, 0u16..16),
        b in (0u16..16, 0u16..16),
    ) {
        let na = mesh.node(a.0 % mesh.width(), a.1 % mesh.height());
        let nb = mesh.node(b.0 % mesh.width(), b.1 % mesh.height());
        let neg = mesh.max_negative_hops(na, nb);
        let d = mesh.distance(na, nb);
        prop_assert!(neg <= d.div_ceil(2));
        prop_assert!(neg <= mesh.max_negative_hops_bound());
    }
}
