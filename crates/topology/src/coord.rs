//! Node coordinates and the four mesh directions.

use serde::{Deserialize, Serialize};

/// A node address `(x, y)` in the mesh, `x` increasing eastward and `y`
/// increasing northward. `x ∈ [0, width)`, `y ∈ [0, height)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column (dimension 0).
    pub x: u16,
    /// Row (dimension 1).
    pub y: u16,
}

impl Coord {
    /// Construct a coordinate.
    #[inline]
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (L1) distance between two coordinates — the minimal hop
    /// count between the corresponding mesh nodes.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// The coordinate one step in `dir`, without bounds checking against any
    /// particular mesh. Returns `None` when the step would leave the
    /// non-negative quadrant.
    #[inline]
    pub fn step(self, dir: Direction) -> Option<Coord> {
        let (dx, dy) = dir.offset();
        let x = self.x.checked_add_signed(dx)?;
        let y = self.y.checked_add_signed(dy)?;
        Some(Coord { x, y })
    }

    /// Directions of minimal progress from `self` toward `dest`
    /// (0, 1, or 2 directions; empty iff `self == dest`).
    #[inline]
    pub fn minimal_directions(self, dest: Coord) -> DirectionSet {
        let mut set = DirectionSet::empty();
        if dest.x > self.x {
            set.insert(Direction::East);
        } else if dest.x < self.x {
            set.insert(Direction::West);
        }
        if dest.y > self.y {
            set.insert(Direction::North);
        } else if dest.y < self.y {
            set.insert(Direction::South);
        }
        set
    }
}

impl core::fmt::Debug for Coord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Coord::new(x, y)
    }
}

/// The four mesh directions. `East`/`West` move along dimension 0 (`x`),
/// `North`/`South` along dimension 1 (`y`).
///
/// The discriminant values are stable and used as channel sub-indices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// +x
    East = 0,
    /// −x
    West = 1,
    /// +y
    North = 2,
    /// −y
    South = 3,
}

/// All four directions in discriminant order.
pub const ALL_DIRECTIONS: [Direction; 4] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
];

impl Direction {
    /// `(dx, dy)` offset of one hop in this direction.
    #[inline]
    pub const fn offset(self) -> (i16, i16) {
        match self {
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
            Direction::North => (0, 1),
            Direction::South => (0, -1),
        }
    }

    /// The 180° opposite direction.
    #[inline]
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// Stable dense index in `0..4`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Direction::index`]. Panics if `i >= 4`.
    #[inline]
    pub fn from_index(i: usize) -> Direction {
        ALL_DIRECTIONS[i]
    }

    /// True for `East`/`West` (dimension 0).
    #[inline]
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }

    /// Next direction going clockwise when the mesh is drawn with +x east
    /// and +y north: E → S → W → N → E.
    #[inline]
    pub const fn clockwise(self) -> Direction {
        match self {
            Direction::East => Direction::South,
            Direction::South => Direction::West,
            Direction::West => Direction::North,
            Direction::North => Direction::East,
        }
    }

    /// Next direction going counterclockwise: E → N → W → S → E.
    #[inline]
    pub const fn counterclockwise(self) -> Direction {
        match self {
            Direction::East => Direction::North,
            Direction::North => Direction::West,
            Direction::West => Direction::South,
            Direction::South => Direction::East,
        }
    }
}

/// A small set of directions packed into one byte. Cheap to copy and iterate;
/// used for routing candidate direction sets.
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DirectionSet(u8);

impl DirectionSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        DirectionSet(0)
    }

    /// Set containing every direction.
    #[inline]
    pub const fn all() -> Self {
        DirectionSet(0b1111)
    }

    /// Insert a direction.
    #[inline]
    pub fn insert(&mut self, dir: Direction) {
        self.0 |= 1 << dir.index();
    }

    /// Remove a direction.
    #[inline]
    pub fn remove(&mut self, dir: Direction) {
        self.0 &= !(1 << dir.index());
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, dir: Direction) -> bool {
        self.0 & (1 << dir as usize) != 0
    }

    /// Number of directions in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no direction is present.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(self, other: DirectionSet) -> DirectionSet {
        DirectionSet(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: DirectionSet) -> DirectionSet {
        DirectionSet(self.0 | other.0)
    }

    /// Iterate over members in discriminant order.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = Direction> {
        ALL_DIRECTIONS
            .into_iter()
            .filter(move |d| self.contains(*d))
    }
}

impl core::fmt::Debug for DirectionSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Direction> for DirectionSet {
    fn from_iter<T: IntoIterator<Item = Direction>>(iter: T) -> Self {
        let mut s = DirectionSet::empty();
        for d in iter {
            s.insert(d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(3, 4).manhattan(Coord::new(0, 0)), 7);
        assert_eq!(Coord::new(5, 5).manhattan(Coord::new(5, 5)), 0);
    }

    #[test]
    fn step_in_each_direction() {
        let c = Coord::new(2, 2);
        assert_eq!(c.step(Direction::East), Some(Coord::new(3, 2)));
        assert_eq!(c.step(Direction::West), Some(Coord::new(1, 2)));
        assert_eq!(c.step(Direction::North), Some(Coord::new(2, 3)));
        assert_eq!(c.step(Direction::South), Some(Coord::new(2, 1)));
    }

    #[test]
    fn step_out_of_quadrant_is_none() {
        assert_eq!(Coord::new(0, 0).step(Direction::West), None);
        assert_eq!(Coord::new(0, 0).step(Direction::South), None);
    }

    #[test]
    fn opposite_is_involution() {
        for d in ALL_DIRECTIONS {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn rotations_are_cyclic_of_order_four() {
        for d in ALL_DIRECTIONS {
            assert_eq!(d.clockwise().clockwise().clockwise().clockwise(), d);
            assert_eq!(
                d.counterclockwise()
                    .counterclockwise()
                    .counterclockwise()
                    .counterclockwise(),
                d
            );
            assert_eq!(d.clockwise().counterclockwise(), d);
            // cw and ccw are perpendicular to d
            assert_ne!(d.clockwise().is_horizontal(), d.is_horizontal());
        }
    }

    #[test]
    fn minimal_directions_quadrants() {
        let c = Coord::new(5, 5);
        let ne = c.minimal_directions(Coord::new(8, 9));
        assert!(ne.contains(Direction::East) && ne.contains(Direction::North));
        assert_eq!(ne.len(), 2);

        let w = c.minimal_directions(Coord::new(1, 5));
        assert!(w.contains(Direction::West));
        assert_eq!(w.len(), 1);

        assert!(c.minimal_directions(c).is_empty());
    }

    #[test]
    fn direction_set_operations() {
        let mut s = DirectionSet::empty();
        assert!(s.is_empty());
        s.insert(Direction::East);
        s.insert(Direction::South);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Direction::East));
        assert!(!s.contains(Direction::West));
        s.remove(Direction::East);
        assert_eq!(s.len(), 1);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![Direction::South]);
        assert_eq!(DirectionSet::all().len(), 4);
    }

    #[test]
    fn direction_set_algebra() {
        let ew: DirectionSet = [Direction::East, Direction::West].into_iter().collect();
        let wn: DirectionSet = [Direction::West, Direction::North].into_iter().collect();
        let both = ew.intersect(wn);
        assert_eq!(both.len(), 1);
        assert!(both.contains(Direction::West));
        let either = ew.union(wn);
        assert_eq!(either.len(), 3);
        assert!(!either.contains(Direction::South));
        assert_eq!(ew.intersect(DirectionSet::empty()), DirectionSet::empty());
        assert_eq!(ew.union(DirectionSet::empty()), ew);
    }

    #[test]
    fn direction_index_roundtrip() {
        for d in ALL_DIRECTIONS {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }
}
