//! Axis-aligned rectangles of nodes — the shape of block (convex) fault
//! regions (paper §2.2).

use crate::coord::Coord;
use serde::{Deserialize, Serialize};

/// An inclusive axis-aligned rectangle `[min.x..=max.x] × [min.y..=max.y]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// South-west (minimum) corner, inclusive.
    pub min: Coord,
    /// North-east (maximum) corner, inclusive.
    pub max: Coord,
}

impl Rect {
    /// Construct from two corners. Panics unless `min <= max` component-wise.
    pub fn new(min: Coord, max: Coord) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "invalid rectangle corners"
        );
        Rect { min, max }
    }

    /// The 1×1 rectangle covering a single coordinate.
    pub fn point(c: Coord) -> Self {
        Rect { min: c, max: c }
    }

    /// Width in nodes (≥ 1).
    #[inline]
    pub const fn width(&self) -> u16 {
        self.max.x - self.min.x + 1
    }

    /// Height in nodes (≥ 1).
    #[inline]
    pub const fn height(&self) -> u16 {
        self.max.y - self.min.y + 1
    }

    /// Number of nodes covered.
    #[inline]
    pub const fn area(&self) -> u32 {
        self.width() as u32 * self.height() as u32
    }

    /// Whether `c` lies inside the rectangle.
    #[inline]
    pub const fn contains(&self, c: Coord) -> bool {
        c.x >= self.min.x && c.x <= self.max.x && c.y >= self.min.y && c.y <= self.max.y
    }

    /// Whether two rectangles share at least one node.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Whether two rectangles intersect, touch side-by-side, or touch
    /// diagonally — i.e. whether their Chebyshev-dilated footprints overlap.
    /// Adjacent fault blocks in this sense share f-ring nodes, so the
    /// pattern generator coalesces them (paper §2.2: "adjacent faulty nodes
    /// are coalesced into fault regions").
    pub fn touches(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x.saturating_add(1)
            && other.min.x <= self.max.x.saturating_add(1)
            && self.min.y <= other.max.y.saturating_add(1)
            && other.min.y <= self.max.y.saturating_add(1)
    }

    /// Smallest rectangle containing both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Coord::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Coord::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grow by one node on every side, clamped to the non-negative quadrant.
    /// The result's border is where the f-ring lives.
    pub fn dilate(&self) -> Rect {
        Rect {
            min: Coord::new(self.min.x.saturating_sub(1), self.min.y.saturating_sub(1)),
            max: Coord::new(self.max.x.saturating_add(1), self.max.y.saturating_add(1)),
        }
    }

    /// Iterate over all covered coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (self.min.y..=self.max.y)
            .flat_map(move |y| (self.min.x..=self.max.x).map(move |x| Coord::new(x, y)))
    }

    /// Iterate over the coordinates of the rectangle's border (its own
    /// outermost cells), clockwise starting from the north-west corner.
    /// For a 1-wide or 1-tall rectangle this degenerates gracefully to the
    /// full cell list without duplicates.
    pub fn border_clockwise(&self) -> Vec<Coord> {
        let mut out = Vec::new();
        let (w, h) = (self.width(), self.height());
        if w == 1 {
            // Single column: top to bottom.
            for y in (self.min.y..=self.max.y).rev() {
                out.push(Coord::new(self.min.x, y));
            }
            return out;
        }
        if h == 1 {
            for x in self.min.x..=self.max.x {
                out.push(Coord::new(x, self.min.y));
            }
            return out;
        }
        // Top edge, west→east.
        for x in self.min.x..=self.max.x {
            out.push(Coord::new(x, self.max.y));
        }
        // East edge, top→bottom (excluding corners already emitted).
        for y in (self.min.y + 1..self.max.y).rev() {
            out.push(Coord::new(self.max.x, y));
        }
        // Bottom edge, east→west.
        for x in (self.min.x..=self.max.x).rev() {
            out.push(Coord::new(x, self.min.y));
        }
        // West edge, bottom→top (excluding corners).
        for y in self.min.y + 1..self.max.y {
            out.push(Coord::new(self.min.x, y));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: u16, ay: u16, bx: u16, by: u16) -> Rect {
        Rect::new(Coord::new(ax, ay), Coord::new(bx, by))
    }

    #[test]
    fn dimensions() {
        let rect = r(2, 3, 4, 7);
        assert_eq!(rect.width(), 3);
        assert_eq!(rect.height(), 5);
        assert_eq!(rect.area(), 15);
        assert_eq!(rect.coords().count(), 15);
    }

    #[test]
    fn containment() {
        let rect = r(2, 2, 4, 4);
        assert!(rect.contains(Coord::new(2, 2)));
        assert!(rect.contains(Coord::new(4, 4)));
        assert!(rect.contains(Coord::new(3, 3)));
        assert!(!rect.contains(Coord::new(5, 3)));
        assert!(!rect.contains(Coord::new(1, 3)));
    }

    #[test]
    fn intersection_and_touching() {
        let a = r(0, 0, 2, 2);
        assert!(a.intersects(&r(2, 2, 4, 4)));
        assert!(!a.intersects(&r(3, 3, 4, 4)));
        // Side-adjacent and diagonal-adjacent count as touching.
        assert!(a.touches(&r(3, 0, 4, 2)));
        assert!(a.touches(&r(3, 3, 4, 4)));
        assert!(!a.touches(&r(4, 4, 5, 5)));
    }

    #[test]
    fn union_covers_both() {
        let a = r(1, 1, 2, 2);
        let b = r(4, 0, 5, 1);
        let u = a.union(&b);
        assert_eq!(u, r(1, 0, 5, 2));
    }

    #[test]
    fn dilate_grows_and_clamps() {
        assert_eq!(r(1, 1, 2, 2).dilate(), r(0, 0, 3, 3));
        assert_eq!(r(0, 0, 1, 1).dilate(), r(0, 0, 2, 2));
    }

    #[test]
    fn border_of_interior_rect() {
        let rect = r(1, 1, 3, 3);
        let border = rect.border_clockwise();
        // 3x3 rectangle: 8 border cells (center excluded).
        assert_eq!(border.len(), 8);
        let unique: std::collections::HashSet<_> = border.iter().copied().collect();
        assert_eq!(unique.len(), 8);
        // Consecutive border cells are adjacent (Manhattan distance 1),
        // including the wrap-around pair.
        for i in 0..border.len() {
            let a = border[i];
            let b = border[(i + 1) % border.len()];
            assert_eq!(a.manhattan(b), 1, "border not contiguous at {i}");
        }
        assert!(!border.contains(&Coord::new(2, 2)));
    }

    #[test]
    fn border_degenerate_shapes() {
        assert_eq!(r(2, 2, 2, 2).border_clockwise(), vec![Coord::new(2, 2)]);
        let row = r(1, 5, 4, 5).border_clockwise();
        assert_eq!(row.len(), 4);
        let col = r(5, 1, 5, 4).border_clockwise();
        assert_eq!(col.len(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid rectangle corners")]
    fn bad_corners_panic() {
        Rect::new(Coord::new(3, 0), Coord::new(1, 0));
    }
}
