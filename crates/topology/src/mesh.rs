//! The mesh graph: dense node/channel indexing and neighborhood queries.

use crate::coord::{Coord, Direction, DirectionSet, ALL_DIRECTIONS};
use serde::{Deserialize, Serialize};

/// Dense node identifier: `id = y * width + x` (row-major).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The dense index as `usize`, for vector addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Dense identifier of a *directed physical channel*: the output link of
/// `node` in `direction`. `id = node * 4 + direction`. Channel ids exist for
/// all (node, direction) pairs; boundary channels that would leave the mesh
/// simply have no destination (see [`Mesh::channel_dest`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The dense index as `usize`, for vector addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Debug for ChannelId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A router port: one of the four direction ports or the local
/// injection/ejection port connecting the processing element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Port {
    /// Link port toward a neighbor.
    Dir(Direction),
    /// The processing-element (injection/ejection) port.
    Local,
}

impl Port {
    /// Dense index: directions map to `0..4`, `Local` to 4.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Port::Dir(d) => d as usize,
            Port::Local => 4,
        }
    }
}

/// A `width × height` 2-D mesh (paper §2.1). Immutable once constructed;
/// shared by reference everywhere.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Construct a mesh. Panics if either side is zero or the node count
    /// would overflow `u16` indexing.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width >= 1 && height >= 1, "mesh sides must be >= 1");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32 + 1,
            "mesh too large for u16 node ids"
        );
        Mesh { width, height }
    }

    /// The radix-`k` square mesh `G(k, k)` used in the paper (`k = 10`).
    pub fn square(k: u16) -> Self {
        Mesh::new(k, k)
    }

    /// Mesh width (dimension 0 extent).
    #[inline]
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height (dimension 1 extent).
    #[inline]
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// Total node count `width * height`.
    #[inline]
    pub const fn num_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total directed channel-slot count (`num_nodes * 4`); includes boundary
    /// slots with no destination so that [`ChannelId`]s stay dense.
    #[inline]
    pub const fn num_channel_slots(&self) -> usize {
        self.num_nodes() * 4
    }

    /// Network diameter `(width-1) + (height-1)` (paper §2.1).
    #[inline]
    pub const fn diameter(&self) -> u32 {
        (self.width as u32 - 1) + (self.height as u32 - 1)
    }

    /// Node id at `(x, y)`. Panics when out of bounds.
    #[inline]
    pub fn node(&self, x: u16, y: u16) -> NodeId {
        assert!(
            x < self.width && y < self.height,
            "coordinate out of bounds"
        );
        NodeId(y * self.width + x)
    }

    /// Node id at a coordinate. Panics when out of bounds.
    #[inline]
    pub fn node_at(&self, c: Coord) -> NodeId {
        self.node(c.x, c.y)
    }

    /// Checked lookup: `None` when `c` lies outside the mesh.
    #[inline]
    pub fn try_node_at(&self, c: Coord) -> Option<NodeId> {
        (c.x < self.width && c.y < self.height).then(|| NodeId(c.y * self.width + c.x))
    }

    /// Coordinate of a node id.
    #[inline]
    pub fn coord(&self, n: NodeId) -> Coord {
        Coord::new(n.0 % self.width, n.0 / self.width)
    }

    /// Whether a coordinate lies inside the mesh.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// The neighbor of `n` in `dir`, or `None` at the mesh boundary.
    #[inline]
    pub fn neighbor(&self, n: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(n).step(dir)?;
        self.try_node_at(c)
    }

    /// Minimal hop count between two nodes.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord(a).manhattan(self.coord(b))
    }

    /// Directions of minimal progress from `from` toward `to`.
    #[inline]
    pub fn minimal_directions(&self, from: NodeId, to: NodeId) -> DirectionSet {
        self.coord(from).minimal_directions(self.coord(to))
    }

    /// The directed output channel of `n` in `dir` (always a valid id; may
    /// have no destination at the boundary).
    #[inline]
    pub fn channel(&self, n: NodeId, dir: Direction) -> ChannelId {
        ChannelId(n.0 as u32 * 4 + dir as u32)
    }

    /// Source node of a channel.
    #[inline]
    pub fn channel_src(&self, c: ChannelId) -> NodeId {
        NodeId((c.0 / 4) as u16)
    }

    /// Direction of a channel.
    #[inline]
    pub fn channel_dir(&self, c: ChannelId) -> Direction {
        Direction::from_index((c.0 % 4) as usize)
    }

    /// Destination node of a channel, or `None` for boundary slots.
    #[inline]
    pub fn channel_dest(&self, c: ChannelId) -> Option<NodeId> {
        self.neighbor(self.channel_src(c), self.channel_dir(c))
    }

    /// Whether the channel physically exists (its destination is in-mesh).
    #[inline]
    pub fn channel_exists(&self, c: ChannelId) -> bool {
        self.channel_dest(c).is_some()
    }

    /// Node degree (2 at corners, 3 on edges, 4 in the interior).
    pub fn degree(&self, n: NodeId) -> usize {
        ALL_DIRECTIONS
            .iter()
            .filter(|&&d| self.neighbor(n, d).is_some())
            .count()
    }

    /// Whether `n` lies on the mesh boundary.
    pub fn on_boundary(&self, n: NodeId) -> bool {
        let c = self.coord(n);
        c.x == 0 || c.y == 0 || c.x == self.width - 1 || c.y == self.height - 1
    }

    /// Iterate over all node ids in dense order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u16).map(NodeId)
    }

    /// Iterate over all physically existing directed channels.
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.num_channel_slots() as u32)
            .map(ChannelId)
            .filter(move |&c| self.channel_exists(c))
    }

    /// Column (x coordinate) of the node a channel slot hangs off. The
    /// sharded engine partitions simulator state into vertical column
    /// bands, so a channel belongs to the band of its source node.
    #[inline]
    pub fn channel_column(&self, c: ChannelId) -> u16 {
        self.channel_src(c).0 % self.width
    }

    /// The column band (shard index in `0..bands`) a column falls into
    /// when the mesh's `width` columns are split into `bands` nearly-equal
    /// contiguous vertical strips. With `bands > width` the surplus bands
    /// are simply empty; `bands` must be >= 1.
    #[inline]
    pub fn column_band(&self, col: u16, bands: u16) -> u16 {
        debug_assert!(bands >= 1, "at least one band");
        debug_assert!(col < self.width, "column in range");
        ((col as u32 * bands as u32) / self.width as u32) as u16
    }

    /// The half-open column range `[start, end)` covered by `band` under
    /// [`Mesh::column_band`]'s partition — the inverse mapping, used to
    /// enumerate a shard's own columns and its boundary columns.
    pub fn band_columns(&self, band: u16, bands: u16) -> core::ops::Range<u16> {
        debug_assert!(bands >= 1 && band < bands, "band in range");
        let w = self.width as u32;
        let b = bands as u32;
        // Smallest col with col*b/w == band is ceil(band*w / b).
        let start = ((band as u32 * w).div_ceil(b)).min(w) as u16;
        let end = (((band as u32 + 1) * w).div_ceil(b)).min(w) as u16;
        start..end
    }

    /// The node-coloring used by negative-hop routing: a standard
    /// checkerboard 2-coloring; a hop is *negative* when it moves from a
    /// higher-labeled node to a lower-labeled one (paper §3). With two
    /// colors, negative hops are exactly the 1→0 moves, so at most
    /// `⌈dist/2⌉` of any path's hops are negative, giving the paper's
    /// `1 + ⌊n(k−1)/2⌋` buffer-class bound.
    #[inline]
    pub fn color(&self, n: NodeId) -> u8 {
        let c = self.coord(n);
        ((c.x + c.y) % 2) as u8
    }

    /// Maximum number of negative hops any minimal path can take between two
    /// nodes under the checkerboard coloring: one negative hop per
    /// higher→lower transition, i.e. `⌊d/2⌋` or `⌈d/2⌉` depending on the
    /// endpoint colors.
    pub fn max_negative_hops(&self, from: NodeId, to: NodeId) -> u32 {
        let d = self.distance(from, to);
        match (self.color(from), self.color(to)) {
            // Starting on a high (1) node: the first hop can already be
            // negative; alternation yields ceil(d/2).
            (1, _) => d.div_ceil(2),
            // Starting low: first hop is non-negative; floor(d/2).
            _ => d / 2,
        }
    }

    /// Upper bound on negative hops across the whole mesh — the NHop
    /// buffer-class count is this plus one (paper §3:
    /// `1 + ⌊n(k−1)/2⌋` classes for an n-D radix-k mesh).
    pub fn max_negative_hops_bound(&self) -> u32 {
        self.diameter().div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh::new(10, 10);
        for n in m.nodes() {
            assert_eq!(m.node_at(m.coord(n)), n);
        }
    }

    #[test]
    fn ten_by_ten_counts() {
        let m = Mesh::square(10);
        assert_eq!(m.num_nodes(), 100);
        assert_eq!(m.diameter(), 18);
        // Directed channel count of a k×k mesh: 2 * 2*k*(k-1) = 360 for k=10.
        assert_eq!(m.channels().count(), 360);
    }

    #[test]
    fn degrees() {
        let m = Mesh::square(10);
        assert_eq!(m.degree(m.node(0, 0)), 2);
        assert_eq!(m.degree(m.node(5, 0)), 3);
        assert_eq!(m.degree(m.node(5, 5)), 4);
        let interior = m.nodes().filter(|&n| m.degree(n) == 4).count();
        assert_eq!(interior, 64);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let m = Mesh::new(7, 5);
        for n in m.nodes() {
            for d in ALL_DIRECTIONS {
                if let Some(v) = m.neighbor(n, d) {
                    assert_eq!(m.neighbor(v, d.opposite()), Some(n));
                    assert_eq!(m.distance(n, v), 1);
                }
            }
        }
    }

    #[test]
    fn channel_roundtrip() {
        let m = Mesh::new(6, 6);
        for n in m.nodes() {
            for d in ALL_DIRECTIONS {
                let c = m.channel(n, d);
                assert_eq!(m.channel_src(c), n);
                assert_eq!(m.channel_dir(c), d);
                assert_eq!(m.channel_dest(c), m.neighbor(n, d));
            }
        }
    }

    #[test]
    fn boundary_detection() {
        let m = Mesh::square(4);
        assert!(m.on_boundary(m.node(0, 2)));
        assert!(m.on_boundary(m.node(3, 1)));
        assert!(!m.on_boundary(m.node(1, 1)));
    }

    #[test]
    fn checkerboard_coloring() {
        let m = Mesh::square(10);
        for n in m.nodes() {
            for d in ALL_DIRECTIONS {
                if let Some(v) = m.neighbor(n, d) {
                    assert_ne!(m.color(n), m.color(v), "adjacent nodes share color");
                }
            }
        }
    }

    #[test]
    fn negative_hop_bounds() {
        let m = Mesh::square(10);
        // Paper: 1 + floor(n(k-1)/2) = 10 classes for a 10x10 mesh.
        assert_eq!(m.max_negative_hops_bound() + 1, 10);
        let a = m.node(0, 0); // color 0
        let b = m.node(9, 9); // color 0, distance 18
        assert_eq!(m.max_negative_hops(a, b), 9);
        let c = m.node(1, 0); // color 1
        assert_eq!(m.max_negative_hops(c, b), (17u32).div_ceil(2));
    }

    #[test]
    fn column_bands_partition_the_width() {
        for (w, h) in [(10u16, 10u16), (7, 5), (64, 64), (3, 9), (1, 4)] {
            let m = Mesh::new(w, h);
            for bands in 1..=9u16 {
                // Every column lands in exactly the band whose range
                // contains it, and the ranges tile [0, width).
                let mut next = 0u16;
                for band in 0..bands {
                    let r = m.band_columns(band, bands);
                    assert_eq!(r.start, next, "bands tile contiguously");
                    next = r.end;
                    for col in r {
                        assert_eq!(m.column_band(col, bands), band);
                    }
                }
                assert_eq!(next, w, "bands cover every column");
                // Channels inherit their source node's column.
                for n in m.nodes() {
                    for d in ALL_DIRECTIONS {
                        let c = m.channel(n, d);
                        assert_eq!(m.channel_column(c), m.coord(n).x);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "coordinate out of bounds")]
    fn node_out_of_bounds_panics() {
        Mesh::square(4).node(4, 0);
    }

    #[test]
    fn try_node_at_bounds() {
        let m = Mesh::square(4);
        assert!(m.try_node_at(Coord::new(3, 3)).is_some());
        assert!(m.try_node_at(Coord::new(4, 0)).is_none());
    }

    #[test]
    fn minimal_directions_match_distance() {
        let m = Mesh::square(8);
        let from = m.node(2, 6);
        let to = m.node(5, 1);
        let dirs = m.minimal_directions(from, to);
        for d in dirs.iter() {
            let v = m.neighbor(from, d).unwrap();
            assert_eq!(m.distance(v, to) + 1, m.distance(from, to));
        }
    }
}
