//! # wormsim-topology
//!
//! The 2-D mesh topology substrate used throughout `wormsim`.
//!
//! A `k × k` mesh (more generally `width × height`) is the Cartesian product
//! of two undirected paths: node `u = (u_x, u_y)` connects to `v = (v_x, v_y)`
//! iff their addresses differ by exactly one in exactly one dimension
//! (paper §2.1). The mesh has no wrap-around links, interior node degree 4,
//! and diameter `(width-1) + (height-1)`.
//!
//! Everything here is index-based: nodes are dense [`NodeId`]s, directed
//! physical channels are dense [`ChannelId`]s (`node * 4 + direction`), so the
//! simulator's hot path can use flat `Vec`s instead of hash maps.
//!
//! ```
//! use wormsim_topology::{Mesh, Direction};
//!
//! let mesh = Mesh::new(10, 10);
//! let a = mesh.node(3, 4);
//! let b = mesh.neighbor(a, Direction::East).unwrap();
//! assert_eq!(mesh.coord(b).x, 4);
//! assert_eq!(mesh.distance(a, b), 1);
//! ```

mod coord;
mod mesh;
mod rect;

pub use coord::{Coord, Direction, DirectionSet, ALL_DIRECTIONS};
pub use mesh::{ChannelId, Mesh, NodeId, Port};
pub use rect::Rect;
