//! Chrome `trace_event` exporter: open a simulation run directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Mapping: one *process* per run, one *thread track* per mesh node
//! (named `node (x,y)`), plus one `fabric` track for events not tied to
//! a node (VC wake-ups). Every [`TraceEvent`] becomes an instant event
//! (`ph: "i"`) at `ts` = cycle (1 cycle = 1 µs on the viewer's axis),
//! carrying the message id, channel, and VC in `args`.

use crate::event::TraceEvent;
use crate::sink::Sink;
use serde::Serializer;
use std::collections::BTreeSet;
use std::io::{self, Write};

/// Accumulates events in memory and exports them in Chrome's JSON trace
/// format. Attach as the engine sink (or feed a [`crate::RingSink`]'s
/// contents in afterwards), then call [`ChromeTraceSink::write_to`].
#[derive(Clone, Debug)]
pub struct ChromeTraceSink {
    width: u16,
    height: u16,
    events: Vec<TraceEvent>,
}

impl ChromeTraceSink {
    /// An exporter for a `width × height` mesh (node ids are row-major,
    /// as in `wormsim-topology`).
    pub fn new(width: u16, height: u16) -> Self {
        ChromeTraceSink {
            width,
            height,
            events: Vec::new(),
        }
    }

    /// Events accumulated so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Bulk-load events recorded elsewhere (e.g. a ring buffer dump).
    pub fn extend_from(&mut self, events: &[TraceEvent]) {
        self.events.extend_from_slice(events);
    }

    /// The synthetic thread id used for node-less events.
    fn fabric_tid(&self) -> u32 {
        u32::from(self.width) * u32::from(self.height)
    }

    /// Render the full Chrome trace JSON document.
    pub fn to_json_string(&self) -> String {
        let fabric = self.fabric_tid();
        let mut tids: BTreeSet<u32> = BTreeSet::new();
        for e in &self.events {
            tids.insert(if e.has_node() {
                u32::from(e.node)
            } else {
                fabric
            });
        }

        let mut s = Serializer::compact();
        s.begin_map();
        s.field("displayTimeUnit", "ms");
        s.key("traceEvents");
        s.begin_seq();
        // Process + per-track metadata first, so the viewer names tracks
        // before any event references them.
        meta_record(&mut s, "process_name", 0, "wormsim");
        for &tid in &tids {
            if tid == fabric {
                meta_record(&mut s, "thread_name", tid, "fabric (VC wake-ups)");
            } else {
                let (x, y) = (tid % u32::from(self.width), tid / u32::from(self.width));
                meta_record(&mut s, "thread_name", tid, &format!("node ({x},{y})"));
            }
        }
        for e in &self.events {
            let tid = if e.has_node() {
                u32::from(e.node)
            } else {
                fabric
            };
            s.slot();
            s.begin_map();
            s.field("name", &format!("{:?}", e.kind));
            s.field("cat", "msg");
            s.field("ph", "i");
            s.field("s", "t");
            s.field("ts", &e.cycle);
            s.field("pid", &0u32);
            s.field("tid", &tid);
            s.key("args");
            s.begin_map();
            s.field("msg", &e.msg);
            if e.has_channel() {
                s.field("channel", &e.channel);
                s.field("vc", &e.vc);
            }
            s.end_map();
            s.end_map();
        }
        s.end_seq();
        s.end_map();
        s.finish()
    }

    /// Write the trace document to `w`.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_json_string().as_bytes())
    }
}

/// Emit one Chrome metadata record (`ph: "M"`) naming a process/track.
fn meta_record(s: &mut Serializer, name: &str, tid: u32, label: &str) {
    s.slot();
    s.begin_map();
    s.field("name", name);
    s.field("ph", "M");
    s.field("pid", &0u32);
    s.field("tid", &tid);
    s.key("args");
    s.begin_map();
    s.field("name", label);
    s.end_map();
    s.end_map();
}

impl Sink for ChromeTraceSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use serde::Value;

    fn sample() -> ChromeTraceSink {
        let mut c = ChromeTraceSink::new(4, 4);
        c.record(TraceEvent::new(10, EventKind::Inject, 0).at(5));
        c.record(TraceEvent::new(11, EventKind::VcAcquire, 0).at(5).on(21, 2));
        c.record(TraceEvent::new(12, EventKind::Wake, 1).on(21, 2));
        c
    }

    #[test]
    fn output_is_valid_json_with_tracks_and_events() {
        let doc = sample().to_json_string();
        let v = serde::json::parse(&doc).expect("chrome trace parses");
        let events = v.get("traceEvents").expect("traceEvents array");
        let Value::Array(items) = events else {
            panic!("traceEvents must be an array");
        };
        // 1 process_name + 2 thread tracks (node 5, fabric) + 3 events.
        assert_eq!(items.len(), 6);
        let metas = items
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .count();
        assert_eq!(metas, 3);
        // The wake event lands on the fabric track (tid = 16 on a 4×4).
        let wake = items
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("Wake"))
            .expect("wake event present");
        assert_eq!(wake.get("tid").and_then(|t| t.as_u64()), Some(16));
        assert_eq!(wake.get("ts").and_then(|t| t.as_u64()), Some(12));
    }

    #[test]
    fn node_track_is_named_by_coordinates() {
        let doc = sample().to_json_string();
        assert!(
            doc.contains("node (1,1)"),
            "node 5 on a 4-wide mesh is (1,1)"
        );
    }
}
