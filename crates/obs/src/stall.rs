//! Stall forensics: turn "the watchdog fired" into "who is waiting on
//! whom, and which resource is the knot".
//!
//! The engine already maintains per-VC-slot wait lists for its wake
//! machinery; when a message trips the deadlock watchdog those lists
//! *are* the wait-for graph. [`StallDiagnosis::build`] walks that graph
//! to name either a genuine cycle (messages waiting on each other in a
//! ring — a true deadlock) or, failing that, the hottest contended
//! resource (the VC slot with the most sleepers — a congestion hotspot).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One edge of the wait-for graph: `waiter` sleeps on `(channel, vc)`,
/// which is currently held by `holder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitEdge {
    /// Slab id of the blocked message.
    pub waiter: u32,
    /// Physical channel of the contended VC slot.
    pub channel: u32,
    /// Virtual channel index of the contended slot.
    pub vc: u8,
    /// Slab id of the message currently occupying the slot.
    pub holder: u32,
}

/// The most-contended VC slot among the wait edges.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Physical channel of the slot.
    pub channel: u32,
    /// Virtual channel index of the slot.
    pub vc: u8,
    /// Message holding the slot.
    pub holder: u32,
    /// Messages sleeping on it.
    pub waiters: Vec<u32>,
}

/// Snapshot of one message involved in the stall.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallMessage {
    /// Slab id.
    pub id: u32,
    /// Source node coordinates.
    pub src: (u16, u16),
    /// Destination node coordinates.
    pub dest: (u16, u16),
    /// Current header position.
    pub head: (u16, u16),
    /// Whether the header is still at its source (no hop claimed yet).
    pub at_source: bool,
    /// Flits already drained at the destination.
    pub delivered: u32,
    /// Consecutive cycles the header has failed to allocate.
    pub wait_cycles: u32,
    /// Watchdog recoveries already applied to this message.
    pub recoveries: u32,
    /// `(channel, vc)` slots the worm currently occupies.
    pub holds: Vec<(u32, u8)>,
}

/// The watchdog's structured report: what was stuck, on what, and why.
///
/// Built by the engine when a message trips the deadlock timeout;
/// returned as a value so tests (and the trace bin) can assert on the
/// identified resource instead of scraping stderr.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallDiagnosis {
    /// Cycle the watchdog fired.
    pub cycle: u64,
    /// The message that tripped the watchdog, if it was still routable.
    pub focus: Option<StallMessage>,
    /// How many active messages were blocked at that moment.
    pub blocked_messages: usize,
    /// The full wait-for edge set at that moment.
    pub edges: Vec<WaitEdge>,
    /// A wait-for cycle (each waits on the next; last waits on first),
    /// if one exists — the signature of a true deadlock.
    pub wait_cycle: Option<Vec<u32>>,
    /// The most-contended VC slot, when any edge exists.
    pub hotspot: Option<Hotspot>,
}

impl StallDiagnosis {
    /// Analyse a wait-for edge set: find a cycle (preferring one through
    /// `focus`) and the hottest slot.
    pub fn build(
        cycle: u64,
        focus: Option<StallMessage>,
        blocked_messages: usize,
        edges: Vec<WaitEdge>,
    ) -> Self {
        let wait_cycle = find_cycle(&edges, focus.as_ref().map(|f| f.id));
        let hotspot = find_hotspot(&edges);
        StallDiagnosis {
            cycle,
            focus,
            blocked_messages,
            edges,
            wait_cycle,
            hotspot,
        }
    }

    /// The one-line name of the blocking resource, for quick assertions:
    /// the cycle if there is one, otherwise the hotspot slot.
    pub fn names_resource(&self) -> Option<String> {
        if let Some(cycle) = &self.wait_cycle {
            let ids: Vec<String> = cycle.iter().map(|id| format!("m{id}")).collect();
            return Some(format!("deadlock cycle: {}", ids.join(" -> ")));
        }
        self.hotspot.as_ref().map(|h| {
            format!(
                "hotspot: channel {} vc {} held by m{} ({} waiting)",
                h.channel,
                h.vc,
                h.holder,
                h.waiters.len()
            )
        })
    }
}

impl fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[stall] cycle {}: {} blocked message(s), {} wait edge(s)",
            self.cycle,
            self.blocked_messages,
            self.edges.len()
        )?;
        if let Some(m) = &self.focus {
            writeln!(
                f,
                "[stall]   focus m{}: ({},{}) -> ({},{}), head ({},{}){}, \
                 {} flit(s) delivered, waited {} cycle(s), {} prior recover(ies)",
                m.id,
                m.src.0,
                m.src.1,
                m.dest.0,
                m.dest.1,
                m.head.0,
                m.head.1,
                if m.at_source { " (at source)" } else { "" },
                m.delivered,
                m.wait_cycles,
                m.recoveries,
            )?;
            if !m.holds.is_empty() {
                let holds: Vec<String> = m
                    .holds
                    .iter()
                    .map(|(ch, vc)| format!("ch{ch}/vc{vc}"))
                    .collect();
                writeln!(f, "[stall]   focus holds: {}", holds.join(", "))?;
            }
        }
        for e in &self.edges {
            writeln!(
                f,
                "[stall]   m{} waits on ch{}/vc{} held by m{}",
                e.waiter, e.channel, e.vc, e.holder
            )?;
        }
        match self.names_resource() {
            Some(name) => writeln!(f, "[stall]   verdict: {name}"),
            None => writeln!(
                f,
                "[stall]   verdict: no wait edges (livelock or drained holder)"
            ),
        }
    }
}

/// Find a wait-for cycle, preferring one reachable from `prefer`.
///
/// Each waiter may sleep on several slots; a message is only *truly*
/// stuck while every candidate is busy, so any single edge is a real
/// wait. We search the multigraph for a directed cycle over message ids.
fn find_cycle(edges: &[WaitEdge], prefer: Option<u32>) -> Option<Vec<u32>> {
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.waiter).or_default().push(e.holder);
    }
    let starts = prefer
        .into_iter()
        .chain(adj.keys().copied())
        .collect::<Vec<_>>();
    for start in starts {
        if let Some(cycle) = dfs_cycle(&adj, start) {
            return Some(cycle);
        }
    }
    None
}

/// Iterative DFS from `start`, returning the first directed cycle found.
fn dfs_cycle(adj: &BTreeMap<u32, Vec<u32>>, start: u32) -> Option<Vec<u32>> {
    // Path stack with per-node next-neighbour cursors.
    let mut path: Vec<(u32, usize)> = vec![(start, 0)];
    let mut on_path: Vec<u32> = vec![start];
    while let Some(&mut (node, ref mut cursor)) = path.last_mut() {
        let neighbours = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
        if *cursor >= neighbours.len() {
            path.pop();
            on_path.pop();
            continue;
        }
        let next = neighbours[*cursor];
        *cursor += 1;
        if let Some(pos) = on_path.iter().position(|&n| n == next) {
            return Some(on_path[pos..].to_vec());
        }
        // Depth is bounded by the number of distinct waiters, so this
        // cannot run away even on dense graphs.
        path.push((next, 0));
        on_path.push(next);
    }
    None
}

/// The slot with the most waiters (ties: lowest (channel, vc)).
fn find_hotspot(edges: &[WaitEdge]) -> Option<Hotspot> {
    let mut by_slot: BTreeMap<(u32, u8), (u32, Vec<u32>)> = BTreeMap::new();
    for e in edges {
        let entry = by_slot
            .entry((e.channel, e.vc))
            .or_insert_with(|| (e.holder, Vec::new()));
        entry.1.push(e.waiter);
    }
    by_slot
        .into_iter()
        .max_by_key(|((ch, vc), (_, waiters))| {
            (
                waiters.len(),
                std::cmp::Reverse(*ch),
                std::cmp::Reverse(*vc),
            )
        })
        .map(|((channel, vc), (holder, waiters))| Hotspot {
            channel,
            vc,
            holder,
            waiters,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(waiter: u32, channel: u32, vc: u8, holder: u32) -> WaitEdge {
        WaitEdge {
            waiter,
            channel,
            vc,
            holder,
        }
    }

    #[test]
    fn detects_three_way_cycle() {
        // a waits on b, b waits on c, c waits on a: classic ring.
        let edges = vec![edge(0, 10, 0, 1), edge(1, 11, 0, 2), edge(2, 12, 0, 0)];
        let d = StallDiagnosis::build(100, None, 3, edges);
        let cycle = d.wait_cycle.clone().expect("cycle found");
        assert_eq!(cycle.len(), 3);
        // The cycle contains all three, in wait order starting anywhere.
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        let name = d.names_resource().unwrap();
        assert!(name.starts_with("deadlock cycle:"), "{name}");
    }

    #[test]
    fn no_cycle_reports_hotspot() {
        // Three messages all waiting on the same slot held by m9.
        let edges = vec![edge(1, 40, 2, 9), edge(2, 40, 2, 9), edge(3, 7, 0, 9)];
        let d = StallDiagnosis::build(50, None, 4, edges);
        assert!(d.wait_cycle.is_none());
        let h = d.hotspot.clone().expect("hotspot found");
        assert_eq!((h.channel, h.vc, h.holder), (40, 2, 9));
        assert_eq!(h.waiters, vec![1, 2]);
        let name = d.names_resource().unwrap();
        assert!(name.contains("channel 40 vc 2"), "{name}");
        assert!(name.contains("2 waiting"), "{name}");
    }

    #[test]
    fn prefers_cycle_through_focus() {
        // Two disjoint cycles; the focus is in the second one.
        let edges = vec![
            edge(0, 1, 0, 1),
            edge(1, 2, 0, 0),
            edge(5, 3, 0, 6),
            edge(6, 4, 0, 5),
        ];
        let focus = StallMessage {
            id: 5,
            src: (0, 0),
            dest: (3, 3),
            head: (1, 1),
            at_source: false,
            delivered: 0,
            wait_cycles: 400,
            recoveries: 0,
            holds: vec![(3, 0)],
        };
        let d = StallDiagnosis::build(10, Some(focus), 4, edges);
        let cycle = d.wait_cycle.expect("cycle found");
        assert!(cycle.contains(&5), "focus cycle preferred: {cycle:?}");
    }

    #[test]
    fn empty_edges_name_nothing() {
        let d = StallDiagnosis::build(1, None, 0, Vec::new());
        assert!(d.wait_cycle.is_none());
        assert!(d.hotspot.is_none());
        assert!(d.names_resource().is_none());
        // Display still renders without panicking.
        let text = format!("{d}");
        assert!(text.contains("no wait edges"), "{text}");
    }

    #[test]
    fn display_dumps_edges_and_focus() {
        let focus = StallMessage {
            id: 7,
            src: (0, 1),
            dest: (5, 5),
            head: (2, 1),
            at_source: false,
            delivered: 3,
            wait_cycles: 301,
            recoveries: 1,
            holds: vec![(12, 1), (13, 1)],
        };
        let d = StallDiagnosis::build(999, Some(focus), 2, vec![edge(7, 20, 0, 8)]);
        let text = format!("{d}");
        assert!(text.contains("cycle 999"), "{text}");
        assert!(text.contains("focus m7"), "{text}");
        assert!(text.contains("ch12/vc1, ch13/vc1"), "{text}");
        assert!(text.contains("m7 waits on ch20/vc0 held by m8"), "{text}");
    }

    #[test]
    fn serde_round_trip() {
        let d = StallDiagnosis::build(5, None, 1, vec![edge(1, 2, 3, 4)]);
        let json = serde_json::to_string(&d).unwrap();
        let back: StallDiagnosis = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
