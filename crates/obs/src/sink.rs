//! Event sinks: where trace events go.
//!
//! The engine is generic over one [`Sink`]; the trait's associated
//! `ENABLED` constant lets it wrap every emit site in
//! `if S::ENABLED { ... }`, which the compiler constant-folds away for
//! [`NullSink`] — the traced and untraced engines compile to the same
//! hot path, and the zero-allocation steady state is untouched.

use crate::event::TraceEvent;

/// A destination for [`TraceEvent`]s.
///
/// `record` must not panic on the hot path and must not depend on (or
/// advance) any simulation RNG: the engine's determinism contract says a
/// traced run and a [`NullSink`] run produce byte-identical reports.
pub trait Sink {
    /// Whether this sink observes events at all. The engine guards every
    /// emit site with `if S::ENABLED`, so a `false` here removes the
    /// instrumentation at compile time.
    const ENABLED: bool = true;

    /// Observe one event.
    fn record(&mut self, event: TraceEvent);
}

/// The no-op sink: `ENABLED = false`, so engine instrumentation compiles
/// to nothing. This is the engine's default sink type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// An unbounded in-memory sink; handy for tests and replay analysis.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Sink for VecSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A fixed-capacity ring buffer keeping the most recent events — the
/// post-mortem sink: run with it attached, and when something goes wrong
/// the tail of the story is still in memory at O(capacity) cost.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position once the buffer has wrapped.
    head: usize,
    /// Total events ever recorded (≥ `buf.len()`).
    total: u64,
}

impl RingSink {
    /// A ring keeping the last `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including those overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// How many events were overwritten (lost to the fixed capacity).
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

impl Sink for RingSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

/// Fan one event stream out to two sinks (compose for more).
#[derive(Clone, Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: Sink, B: Sink> Sink for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.0.record(event);
        self.1.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::new(cycle, EventKind::Inject, cycle as u32)
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        const { assert!(VecSink::ENABLED) };
        NullSink.record(ev(0)); // and is a no-op
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut r = RingSink::new(3);
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_is_untruncated() {
        let mut r = RingSink::new(8);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 2]);
    }

    #[test]
    fn tee_duplicates_and_ors_enabled() {
        let mut t = TeeSink(VecSink::new(), RingSink::new(2));
        t.record(ev(1));
        t.record(ev(2));
        assert_eq!(t.0.events().len(), 2);
        assert_eq!(t.1.len(), 2);
        const { assert!(<TeeSink<VecSink, RingSink> as Sink>::ENABLED) };
        const { assert!(!<TeeSink<NullSink, NullSink> as Sink>::ENABLED) };
    }
}
