//! Streaming JSONL sink: one serialized [`TraceEvent`] per line.
//!
//! JSONL keeps the file greppable and streamable — every line is a
//! complete JSON document, so a consumer can tail a live run or parse a
//! truncated file up to the last complete line.

use crate::event::TraceEvent;
use crate::sink::Sink;
use std::io::{self, BufWriter, Write};

/// Writes each event as one compact JSON line through a buffered writer.
///
/// `record` cannot return errors, so the first I/O failure is latched:
/// subsequent events are dropped and [`JsonlSink::finish`] (or
/// [`JsonlSink::error`]) reports it.
///
/// Dropping the sink without calling `finish` flushes buffered lines
/// best-effort, so a file written by a dropped sink still parses
/// completely via [`parse_jsonl`]; only `finish` can *report* a flush
/// failure.
pub struct JsonlSink<W: Write> {
    // `Option` so `finish` can move the writer out while `Drop` still
    // flushes the abandoned-sink path.
    w: Option<BufWriter<W>>,
    written: u64,
    err: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer (buffering is handled internally).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            w: Some(BufWriter::new(writer)),
            written: 0,
            err: None,
        }
    }

    /// Lines successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The latched I/O error, if any write failed.
    pub fn error(&self) -> Option<&io::Error> {
        self.err.as_ref()
    }

    /// Flush and return the inner writer, or the first latched error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        let mut w = self.w.take().expect("writer present until finish/drop");
        w.flush()?;
        w.into_inner().map_err(|e| io::Error::other(e.to_string()))
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(w) = self.w.as_mut() {
            let _ = w.flush();
        }
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.err.is_some() {
            return;
        }
        let Some(w) = self.w.as_mut() else { return };
        let line = serde_json::to_string(&event);
        let res = line
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            .and_then(|l| {
                w.write_all(l.as_bytes())?;
                w.write_all(b"\n")
            });
        match res {
            Ok(()) => self.written += 1,
            Err(e) => self.err = Some(e),
        }
    }
}

/// Parse a JSONL trace back into events (empty lines are skipped).
/// Returns the 1-based line number alongside any parse error.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceEvent =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(ev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn round_trips_through_text() {
        let events = vec![
            TraceEvent::new(1, EventKind::Inject, 0).at(5),
            TraceEvent::new(2, EventKind::VcAcquire, 0).at(5).on(12, 3),
            TraceEvent::new(9, EventKind::Deliver, 0).at(8),
        ];
        let mut sink = JsonlSink::new(Vec::new());
        for &e in &events {
            sink.record(e);
        }
        assert_eq!(sink.written(), 3);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn dropped_sink_flushes_to_file() {
        let path =
            std::env::temp_dir().join(format!("wormsim-jsonl-drop-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::new(std::fs::File::create(&path).unwrap());
            for c in 0..100u64 {
                sink.record(TraceEvent::new(c, EventKind::Inject, c as u32));
            }
            assert_eq!(sink.written(), 100);
            // Dropped without finish(): Drop must flush the BufWriter.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), 100);
        assert_eq!(back[99].msg, 99);
        assert_eq!(back[99].cycle, 99);
    }

    #[test]
    fn parse_reports_bad_line() {
        let err = parse_jsonl("{\"cycle\":0").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn write_errors_latch() {
        /// A writer that fails after the first byte.
        struct Failing(u32);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0 += 1;
                if self.0 > 1 {
                    Err(io::Error::other("disk full"))
                } else {
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // A tiny BufWriter capacity would be needed to force the flush
        // path deterministically; instead latch via finish() on a sink
        // whose inner writer rejects the buffered flush.
        let mut sink = JsonlSink::new(Failing(1));
        for c in 0..10_000 {
            sink.record(TraceEvent::new(c, EventKind::Wake, 0));
        }
        assert!(sink.error().is_some() || sink.finish().is_err());
    }
}
