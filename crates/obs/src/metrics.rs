//! Lock-free service metrics: counters, gauges, log₂ latency histograms,
//! and a static-registration registry with JSON + Prometheus exposition.
//!
//! The serving layer (and any long-running driver) needs runtime signals
//! that survive concurrency without perturbing the workload: every
//! recording operation here is a handful of relaxed atomic RMWs — no
//! locks, no allocation on the hot path. Registration (naming a metric
//! and obtaining its handle) happens once at construction time behind a
//! mutex; thereafter handles are plain `Arc`s shared across threads.
//!
//! Latency is tracked by [`LatencyHistogram`], a fixed array of 65
//! power-of-two buckets over `u64` values (nanoseconds by convention):
//! bucket 0 holds zeros and bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`,
//! with the top bucket saturating at `u64::MAX`. Quantiles (p50/p90/p99/
//! p999) are estimated by rank-scanning the bucket counts and linearly
//! interpolating inside the located bucket, so every estimate is bounded
//! by its bucket's edges.
//!
//! Snapshots ([`MetricsSnapshot`]) are plain serde structs that
//! round-trip through JSON, render to Prometheus text exposition via
//! [`render_prometheus`], and stream as JSONL frames ([`MetricsFrame`])
//! for soak-run timelines. Metrics never feed into `SimReport`: the
//! engine's report fingerprints stay a function of simulation inputs
//! only.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of buckets in a [`LatencyHistogram`]: one zero bucket plus one
/// per power of two of the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the counter to at least `v` (monotone, so still a valid
    /// counter — used for high-water marks like the widest sharded job).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (in-flight jobs, cache size).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log₂-scale histogram for latency-like `u64` samples
/// (nanoseconds by convention).
///
/// Recording is wait-free: one relaxed `fetch_add` on the owning bucket,
/// one on the running sum, and a relaxed `fetch_max` for the maximum.
/// The total count is derived from the bucket array, so a snapshot taken
/// during concurrent recording is internally consistent bucket-by-bucket.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for zero, else `64 - leading_zeros`, so
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower edge of bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper edge of bucket `i` (the top bucket saturates).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Saturating accumulate: u64 nanoseconds would need ~584 years of
        // recorded latency to wrap, but don't let pathological inputs
        // corrupt the sum silently.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`Duration`] as nanoseconds (saturating on overflow).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Load the raw bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by locating the bucket
    /// holding the rank-`⌈q·count⌉` sample and interpolating linearly
    /// between its edges. Returns 0 for an empty histogram. The estimate
    /// is within the located bucket's `[lower, upper]` range, and never
    /// above the recorded maximum (interpolating toward a sparse
    /// bucket's upper edge would otherwise let p99 exceed max).
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.bucket_counts(), q).min(self.max())
    }

    /// Snapshot into a plain serializable record under `name`.
    pub fn sample(&self, name: &str) -> HistogramSample {
        let counts = self.bucket_counts();
        let max = self.max();
        let count: u64 = counts.iter().sum();
        let buckets = counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| BucketCount {
                le: bucket_upper(i),
                count: *c,
            })
            .collect();
        HistogramSample {
            name: name.to_string(),
            count,
            sum: self.sum(),
            max,
            p50: quantile_from_buckets(&counts, 0.50).min(max),
            p90: quantile_from_buckets(&counts, 0.90).min(max),
            p99: quantile_from_buckets(&counts, 0.99).min(max),
            p999: quantile_from_buckets(&counts, 0.999).min(max),
            buckets,
        }
    }
}

/// Quantile estimation shared by the live histogram and snapshots.
fn quantile_from_buckets(counts: &[u64; HISTOGRAM_BUCKETS], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        if *c == 0 {
            continue;
        }
        let prev = cum;
        cum += c;
        if cum >= rank {
            let lower = bucket_lower(i);
            let upper = bucket_upper(i);
            let frac = (rank - prev) as f64 / *c as f64;
            let est = lower as f64 + frac * (upper - lower) as f64;
            return (est as u64).clamp(lower, upper);
        }
    }
    bucket_upper(HISTOGRAM_BUCKETS - 1)
}

/// One counter in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One non-empty histogram bucket: `count` samples with value `≤ le`
/// (and greater than the previous bucket's edge).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper edge of the bucket.
    pub le: u64,
    /// Samples in this bucket (non-cumulative).
    pub count: u64,
}

/// One histogram in a snapshot: totals, estimated quantiles, and the
/// non-empty buckets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Estimated 99.9th percentile.
    pub p999: u64,
    /// Non-empty buckets in ascending edge order.
    pub buckets: Vec<BucketCount>,
}

/// A point-in-time copy of every registered metric. Plain data: clones,
/// compares, and round-trips through JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All registered counters, in registration order.
    pub counters: Vec<CounterSample>,
    /// All registered gauges, in registration order.
    pub gauges: Vec<GaugeSample>,
    /// All registered histograms, in registration order.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram sample, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A static-registration metric registry: metrics are named once at
/// construction time (duplicate names panic — they indicate a wiring
/// bug, not a runtime condition) and recorded through the returned
/// `Arc` handles without ever touching the registry again.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(&'static str, Arc<Counter>)>>,
    gauges: Mutex<Vec<(&'static str, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(&'static str, Arc<LatencyHistogram>)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register a counter under `name` and return its handle.
    ///
    /// # Panics
    /// If `name` is already registered as a counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut v = self.counters.lock().unwrap();
        assert!(
            v.iter().all(|(n, _)| *n != name),
            "duplicate counter registration: {name}"
        );
        let c = Arc::new(Counter::new());
        v.push((name, Arc::clone(&c)));
        c
    }

    /// Register a gauge under `name` and return its handle.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut v = self.gauges.lock().unwrap();
        assert!(
            v.iter().all(|(n, _)| *n != name),
            "duplicate gauge registration: {name}"
        );
        let g = Arc::new(Gauge::new());
        v.push((name, Arc::clone(&g)));
        g
    }

    /// Register a histogram under `name` and return its handle.
    ///
    /// # Panics
    /// If `name` is already registered as a histogram.
    pub fn histogram(&self, name: &'static str) -> Arc<LatencyHistogram> {
        let mut v = self.histograms.lock().unwrap();
        assert!(
            v.iter().all(|(n, _)| *n != name),
            "duplicate histogram registration: {name}"
        );
        let h = Arc::new(LatencyHistogram::new());
        v.push((name, Arc::clone(&h)));
        h
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| CounterSample {
                name: n.to_string(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| GaugeSample {
                name: n.to_string(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| h.sample(n))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Render every registered metric as Prometheus text exposition.
    pub fn prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }
}

/// Format a histogram edge as a Prometheus `le` label value: the edge is
/// in nanoseconds, the exposition is in seconds.
fn le_label(ns: u64) -> String {
    if ns == u64::MAX {
        "+Inf".to_string()
    } else {
        format!("{}", ns as f64 / 1e9)
    }
}

/// Render a snapshot in Prometheus text exposition format. Histogram
/// names are expected to carry a `_seconds` suffix: recorded nanosecond
/// values are converted to seconds for `le` labels and `_sum`.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        out.push_str(&format!(
            "# TYPE {} counter\n{} {}\n",
            c.name, c.name, c.value
        ));
    }
    for g in &snap.gauges {
        out.push_str(&format!(
            "# TYPE {} gauge\n{} {}\n",
            g.name, g.name, g.value
        ));
    }
    for h in &snap.histograms {
        out.push_str(&format!("# TYPE {} histogram\n", h.name));
        let mut cum = 0u64;
        for b in &h.buckets {
            cum += b.count;
            out.push_str(&format!(
                "{}_bucket{{le=\"{}\"}} {}\n",
                h.name,
                le_label(b.le),
                cum
            ));
        }
        out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", h.name, h.count));
        out.push_str(&format!("{}_sum {}\n", h.name, h.sum as f64 / 1e9));
        out.push_str(&format!("{}_count {}\n", h.name, h.count));
    }
    out
}

/// Validate Prometheus text exposition line-by-line: every line must be
/// a well-formed comment (`# TYPE` / `# HELP`) or a sample
/// (`name[{labels}] value`). Returns the number of sample lines, or the
/// 1-based line number and reason of the first malformed line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(t) = rest.strip_prefix("TYPE ") {
                let mut parts = t.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name)
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    )
                {
                    return Err(format!("line {lineno}: malformed TYPE comment"));
                }
            } else if !rest.starts_with("HELP ") {
                return Err(format!("line {lineno}: unknown comment form"));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: missing value"))?;
        let value_ok = value == "+Inf"
            || value == "-Inf"
            || value.parse::<f64>().map(|v| v.is_finite()).unwrap_or(false);
        if !value_ok {
            return Err(format!("line {lineno}: bad sample value {value:?}"));
        }
        let name_part = match series.split_once('{') {
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                for pair in labels.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {lineno}: label without '='"))?;
                    if !valid_name(k) || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {lineno}: malformed label {pair:?}"));
                    }
                }
                name
            }
            None => series,
        };
        if !valid_name(name_part) {
            return Err(format!("line {lineno}: bad metric name {name_part:?}"));
        }
        samples += 1;
    }
    Ok(samples)
}

/// One timeline frame from a periodic metrics emitter: a sequence
/// number, milliseconds since the emitter started, and the snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsFrame {
    /// Frame sequence number, starting at 0.
    pub seq: u64,
    /// Milliseconds elapsed since the emitter started.
    pub elapsed_ms: u64,
    /// The snapshot taken for this frame.
    pub metrics: MetricsSnapshot,
}

/// Parse a metrics timeline (one [`MetricsFrame`] JSON document per
/// line; empty lines skipped; 1-based line number on parse errors).
pub fn parse_metrics_log(text: &str) -> Result<Vec<MetricsFrame>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let f: MetricsFrame =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(f);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_cover_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert!(bucket_lower(i) <= bucket_upper(i));
            if i > 0 {
                assert_eq!(bucket_lower(i), bucket_upper(i - 1).wrapping_add(1));
            }
        }
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_records_and_estimates() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 5, 5, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_111);
        assert_eq!(h.max(), 1_000_000);
        let p50 = h.quantile(0.5);
        // Rank 4 of 7 is the second 5 — bucket [4, 7].
        assert!((4..=7).contains(&p50), "p50={p50}");
        let p100 = h.quantile(1.0);
        let (lo, hi) = (
            bucket_lower(bucket_index(1_000_000)),
            bucket_upper(bucket_index(1_000_000)),
        );
        assert!((lo..=hi).contains(&p100));
    }

    #[test]
    fn sample_quantiles_match_live() {
        let h = LatencyHistogram::new();
        for v in 0..1000u64 {
            h.record(v * 17);
        }
        let s = h.sample("t");
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, h.quantile(0.50));
        assert_eq!(s.p99, h.quantile(0.99));
        assert_eq!(s.max, 999 * 17);
        let total: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, s.count);
    }

    #[test]
    fn registry_snapshot_round_trips() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("wormsim_requests_total");
        let g = reg.gauge("wormsim_jobs_in_flight");
        let h = reg.histogram("wormsim_request_latency_seconds");
        c.add(5);
        g.set(3);
        g.dec();
        h.record_duration(Duration::from_micros(250));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("wormsim_requests_total"), Some(5));
        assert_eq!(snap.gauge("wormsim_jobs_in_flight"), Some(2));
        assert_eq!(
            snap.histogram("wormsim_request_latency_seconds")
                .unwrap()
                .count,
            1
        );
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    #[should_panic(expected = "duplicate counter registration")]
    fn duplicate_registration_panics() {
        let reg = MetricsRegistry::new();
        let _a = reg.counter("twice");
        let _b = reg.counter("twice");
    }

    #[test]
    fn prometheus_renders_and_validates() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("wormsim_requests_total");
        let g = reg.gauge("wormsim_cached_results");
        let h = reg.histogram("wormsim_request_latency_seconds");
        c.add(2);
        g.set(1);
        h.record(1500);
        h.record(1_000_000);
        let text = reg.prometheus();
        let samples = validate_prometheus(&text).unwrap();
        // 1 counter + 1 gauge + (2 buckets + Inf + sum + count).
        assert_eq!(samples, 7);
        assert!(text.contains("# TYPE wormsim_request_latency_seconds histogram"));
        assert!(text.contains("wormsim_request_latency_seconds_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        // Cumulative bucket counts are monotone non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v as u64 >= last);
            last = v as u64;
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("ok_metric 1\n").is_ok());
        assert!(validate_prometheus("bad metric name 1 2 3 oops\n").is_err());
        assert!(validate_prometheus("no_value\n").is_err());
        assert!(validate_prometheus("x{le=\"0.5\"} nanbad\n").is_err());
        assert!(validate_prometheus("x{le=0.5} 1\n").is_err());
        let err = validate_prometheus("fine 1\nbroken{ 2\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn metrics_log_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(1);
        let frames = vec![
            MetricsFrame {
                seq: 0,
                elapsed_ms: 0,
                metrics: reg.snapshot(),
            },
            MetricsFrame {
                seq: 1,
                elapsed_ms: 100,
                metrics: reg.snapshot(),
            },
        ];
        let text: String = frames
            .iter()
            .map(|f| serde_json::to_string(f).unwrap() + "\n")
            .collect();
        let back = parse_metrics_log(&text).unwrap();
        assert_eq!(back, frames);
        assert!(parse_metrics_log("{oops")
            .unwrap_err()
            .starts_with("line 1:"));
    }
}
