//! The structured trace-event vocabulary emitted by the engine.

use serde::{Deserialize, Serialize};

/// What happened to a message at one point in its life cycle.
///
/// The set mirrors the engine's decision points: a message enters the
/// network (`Inject`), its header asks the routing function for
/// candidates (`RouteDecision`) and either claims an output VC
/// (`VcAcquire`) or goes to sleep on the busy candidates' wake lists
/// (`Block`); a freed VC slot re-arms sleeping headers (`Wake`); an
/// online fault tears a message out of the network (`Abort`), the
/// watchdog drops and re-injects a stuck one (`Recover`); and the tail
/// flit finally drains at the destination (`Deliver`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// Message left its source queue and occupied the injection port.
    Inject,
    /// The routing function ran for the message's header at `node`.
    RouteDecision,
    /// The header claimed `(channel, vc)` and the worm grew one hop.
    VcAcquire,
    /// Every candidate VC was busy; the header sleeps on wake lists.
    Block,
    /// `(channel, vc)` freed and re-armed this sleeping header.
    Wake,
    /// An online fault activation aborted the message (chaos recovery).
    Abort,
    /// The watchdog dropped the stuck message for re-injection.
    Recover,
    /// The tail flit drained at the destination; the message is done.
    Deliver,
}

/// One structured trace event: an [`EventKind`] stamped with the cycle,
/// the message's slab id, and — where meaningful — the node, physical
/// channel, and virtual channel involved. Fields that do not apply to a
/// kind carry the `NO_*` sentinels.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation cycle the event occurred in.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// Message slab id (reused after delivery; pair with `Inject` /
    /// `Deliver` boundaries to recover unique message lifetimes).
    pub msg: u32,
    /// Node involved (source for `Inject`/`Abort`, header position for
    /// `RouteDecision`/`VcAcquire`/`Block`/`Recover`, destination for
    /// `Deliver`), or [`TraceEvent::NO_NODE`].
    pub node: u16,
    /// Physical channel involved, or [`TraceEvent::NO_CHANNEL`].
    pub channel: u32,
    /// Virtual channel involved, or [`TraceEvent::NO_VC`].
    pub vc: u8,
}

impl TraceEvent {
    /// Sentinel for "no node applies to this event".
    pub const NO_NODE: u16 = u16::MAX;
    /// Sentinel for "no physical channel applies to this event".
    pub const NO_CHANNEL: u32 = u32::MAX;
    /// Sentinel for "no virtual channel applies to this event".
    pub const NO_VC: u8 = u8::MAX;

    /// An event with every optional coordinate at its sentinel.
    #[inline]
    pub fn new(cycle: u64, kind: EventKind, msg: u32) -> Self {
        TraceEvent {
            cycle,
            kind,
            msg,
            node: Self::NO_NODE,
            channel: Self::NO_CHANNEL,
            vc: Self::NO_VC,
        }
    }

    /// Builder-style node stamp.
    #[inline]
    pub fn at(mut self, node: u16) -> Self {
        self.node = node;
        self
    }

    /// Builder-style `(channel, vc)` stamp.
    #[inline]
    pub fn on(mut self, channel: u32, vc: u8) -> Self {
        self.channel = channel;
        self.vc = vc;
        self
    }

    /// Whether a real node is attached.
    #[inline]
    pub fn has_node(&self) -> bool {
        self.node != Self::NO_NODE
    }

    /// Whether a real `(channel, vc)` is attached.
    #[inline]
    pub fn has_channel(&self) -> bool {
        self.channel != Self::NO_CHANNEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_stamps_coordinates() {
        let e = TraceEvent::new(7, EventKind::VcAcquire, 3).at(12).on(57, 4);
        assert_eq!(e.cycle, 7);
        assert_eq!(e.node, 12);
        assert_eq!((e.channel, e.vc), (57, 4));
        assert!(e.has_node() && e.has_channel());
    }

    #[test]
    fn sentinels_read_as_absent() {
        let e = TraceEvent::new(0, EventKind::Wake, 1);
        assert!(!e.has_node());
        assert!(!e.has_channel());
    }

    #[test]
    fn serde_round_trip() {
        let e = TraceEvent::new(42, EventKind::Block, 9).at(3);
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
