//! # wormsim-obs
//!
//! The observability layer for the wormhole simulator: structured
//! flit-level trace events, pluggable sinks, stall forensics, and the
//! shared experiment progress reporter.
//!
//! Design constraint: instrumentation must be *zero-cost when off*. The
//! engine is generic over a [`Sink`] whose associated `ENABLED` constant
//! gates every emit site; with the default [`NullSink`] the guards
//! constant-fold away and the engine's zero-allocation steady state (and
//! its committed report fingerprint) are untouched.
//!
//! Modules:
//!
//! - [`TraceEvent`] / [`EventKind`] — the event vocabulary.
//! - [`NullSink`], [`VecSink`], [`RingSink`], [`TeeSink`] — in-memory
//!   sinks; [`JsonlSink`] streams to any writer; [`ChromeTraceSink`]
//!   exports `chrome://tracing` / Perfetto documents.
//! - [`StallDiagnosis`] — wait-for-graph forensics for the watchdog.
//! - [`Progress`] — quiet/verbose chatter policy for experiment bins;
//!   [`ProgressFrame`] / [`FrameLog`] — machine-readable progress ticks
//!   for sockets and logs.
//! - [`MetricsRegistry`] / [`Counter`] / [`Gauge`] /
//!   [`LatencyHistogram`] — lock-free service metrics with log₂ latency
//!   buckets, JSON snapshots ([`MetricsSnapshot`]), and Prometheus text
//!   exposition ([`render_prometheus`] / [`validate_prometheus`]).

mod chrome;
mod event;
mod jsonl;
mod metrics;
mod progress;
mod sink;
mod stall;

pub use chrome::ChromeTraceSink;
pub use event::{EventKind, TraceEvent};
pub use jsonl::{parse_jsonl, JsonlSink};
pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, parse_metrics_log, render_prometheus,
    validate_prometheus, BucketCount, Counter, CounterSample, Gauge, GaugeSample, HistogramSample,
    LatencyHistogram, MetricsFrame, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use progress::{parse_frame_log, FrameLog, Progress, ProgressFrame};
pub use sink::{NullSink, RingSink, Sink, TeeSink, VecSink};
pub use stall::{Hotspot, StallDiagnosis, StallMessage, WaitEdge};
