//! Shared progress reporting for experiment drivers.
//!
//! The experiment bins historically sprinkled ad-hoc `println!` calls;
//! this small handle centralises the policy: informational output is
//! suppressed in quiet mode, errors always reach stderr. Result tables
//! (the artifacts a run exists to produce) should stay on plain
//! `println!` — [`Progress`] governs *chatter*, not *output*.
//!
//! For consumers that are programs rather than people — the serving
//! layer streaming per-job completion ticks to a client socket, or a
//! supervisor tailing a progress log — the module also defines
//! [`ProgressFrame`], a small serializable progress record, and
//! [`FrameLog`], a JSONL writer for frames in the same
//! one-complete-document-per-line discipline as
//! [`JsonlSink`](crate::JsonlSink).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, BufWriter, Write};

/// A copyable handle deciding whether informational chatter is printed.
///
/// The default is quiet, so library call sites (tests, benches) stay
/// silent unless a bin explicitly opts into verbosity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Progress {
    verbose: bool,
}

impl Progress {
    /// A reporter that prints informational messages.
    pub fn verbose() -> Self {
        Progress { verbose: true }
    }

    /// A reporter that suppresses informational messages.
    pub fn quiet() -> Self {
        Progress { verbose: false }
    }

    /// Map a `--quiet` CLI flag onto a reporter.
    pub fn from_quiet_flag(quiet: bool) -> Self {
        Progress { verbose: !quiet }
    }

    /// Whether informational messages are printed.
    pub fn is_verbose(&self) -> bool {
        self.verbose
    }

    /// Informational message for stdout (banners, configuration echoes).
    /// Suppressed in quiet mode.
    pub fn out(&self, args: fmt::Arguments<'_>) {
        if self.verbose {
            println!("{args}");
        }
    }

    /// Progress note for stderr (per-item completion ticks). Suppressed
    /// in quiet mode; kept off stdout so piped results stay clean.
    pub fn note(&self, args: fmt::Arguments<'_>) {
        if self.verbose {
            eprintln!("{args}");
        }
    }

    /// Error or panic context: always printed to stderr, regardless of
    /// quiet mode.
    pub fn error(&self, args: fmt::Arguments<'_>) {
        eprintln!("{args}");
    }
}

/// One machine-readable progress tick: `done` of `total` work items of
/// the job identified by `label` are complete. The serving layer streams
/// these to clients as per-job progress frames; [`FrameLog`] writes them
/// as JSONL for offline consumers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressFrame {
    /// What is progressing (a job id, an experiment label, ...).
    pub label: String,
    /// Work items completed so far.
    pub done: u64,
    /// Total work items in the job.
    pub total: u64,
}

impl ProgressFrame {
    /// A frame reporting `done`/`total` for `label`.
    pub fn new(label: impl Into<String>, done: u64, total: u64) -> Self {
        ProgressFrame {
            label: label.into(),
            done,
            total,
        }
    }

    /// Whether this frame marks the job complete.
    pub fn is_final(&self) -> bool {
        self.done >= self.total
    }
}

/// Streams [`ProgressFrame`]s as JSONL (one compact document per line),
/// with the same latched-error discipline as
/// [`JsonlSink`](crate::JsonlSink): `record` never fails loudly, the
/// first I/O error is kept and reported by [`FrameLog::finish`].
pub struct FrameLog<W: Write> {
    w: BufWriter<W>,
    written: u64,
    err: Option<io::Error>,
}

impl<W: Write> FrameLog<W> {
    /// Wrap a writer (buffering is handled internally).
    pub fn new(writer: W) -> Self {
        FrameLog {
            w: BufWriter::new(writer),
            written: 0,
            err: None,
        }
    }

    /// Write one frame as a JSON line (dropped if an error is latched).
    pub fn record(&mut self, frame: &ProgressFrame) {
        if self.err.is_some() {
            return;
        }
        let line = serde_json::to_string(frame);
        let res = line
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            .and_then(|l| {
                self.w.write_all(l.as_bytes())?;
                self.w.write_all(b"\n")
            });
        match res {
            Ok(()) => self.written += 1,
            Err(e) => self.err = Some(e),
        }
    }

    /// Frames successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the inner writer, or the first latched error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        self.w
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))
    }
}

/// Parse a frame log back into frames (empty lines skipped; the 1-based
/// line number accompanies any parse error).
pub fn parse_frame_log(text: &str) -> Result<Vec<ProgressFrame>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let f: ProgressFrame =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(f);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_log_round_trips() {
        let frames = vec![
            ProgressFrame::new("job-1", 0, 3),
            ProgressFrame::new("job-1", 2, 3),
            ProgressFrame::new("job-1", 3, 3),
        ];
        let mut log = FrameLog::new(Vec::new());
        for f in &frames {
            log.record(f);
        }
        assert_eq!(log.written(), 3);
        let text = String::from_utf8(log.finish().unwrap()).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = parse_frame_log(&text).unwrap();
        assert_eq!(back, frames);
        assert!(!back[1].is_final());
        assert!(back[2].is_final());
    }

    #[test]
    fn frame_log_parse_reports_bad_line() {
        let err = parse_frame_log("{\"label\":").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn default_is_quiet() {
        assert!(!Progress::default().is_verbose());
        assert!(Progress::verbose().is_verbose());
        assert!(!Progress::from_quiet_flag(true).is_verbose());
        assert!(Progress::from_quiet_flag(false).is_verbose());
    }

    #[test]
    fn serde_round_trip() {
        let p = Progress::verbose();
        let json = serde_json::to_string(&p).unwrap();
        let back: Progress = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
