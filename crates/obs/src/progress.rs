//! Shared progress reporting for experiment drivers.
//!
//! The experiment bins historically sprinkled ad-hoc `println!` calls;
//! this small handle centralises the policy: informational output is
//! suppressed in quiet mode, errors always reach stderr. Result tables
//! (the artifacts a run exists to produce) should stay on plain
//! `println!` — [`Progress`] governs *chatter*, not *output*.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A copyable handle deciding whether informational chatter is printed.
///
/// The default is quiet, so library call sites (tests, benches) stay
/// silent unless a bin explicitly opts into verbosity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Progress {
    verbose: bool,
}

impl Progress {
    /// A reporter that prints informational messages.
    pub fn verbose() -> Self {
        Progress { verbose: true }
    }

    /// A reporter that suppresses informational messages.
    pub fn quiet() -> Self {
        Progress { verbose: false }
    }

    /// Map a `--quiet` CLI flag onto a reporter.
    pub fn from_quiet_flag(quiet: bool) -> Self {
        Progress { verbose: !quiet }
    }

    /// Whether informational messages are printed.
    pub fn is_verbose(&self) -> bool {
        self.verbose
    }

    /// Informational message for stdout (banners, configuration echoes).
    /// Suppressed in quiet mode.
    pub fn out(&self, args: fmt::Arguments<'_>) {
        if self.verbose {
            println!("{args}");
        }
    }

    /// Progress note for stderr (per-item completion ticks). Suppressed
    /// in quiet mode; kept off stdout so piped results stay clean.
    pub fn note(&self, args: fmt::Arguments<'_>) {
        if self.verbose {
            eprintln!("{args}");
        }
    }

    /// Error or panic context: always printed to stderr, regardless of
    /// quiet mode.
    pub fn error(&self, args: fmt::Arguments<'_>) {
        eprintln!("{args}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        assert!(!Progress::default().is_verbose());
        assert!(Progress::verbose().is_verbose());
        assert!(!Progress::from_quiet_flag(true).is_verbose());
        assert!(Progress::from_quiet_flag(false).is_verbose());
    }

    #[test]
    fn serde_round_trip() {
        let p = Progress::verbose();
        let json = serde_json::to_string(&p).unwrap();
        let back: Progress = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
