//! Property-based tests for the lock-free latency histogram: bucket
//! membership, boundary monotonicity, quantile bounds, and exact counts
//! under concurrent recording.

use proptest::prelude::*;
use std::sync::Arc;
use wormsim_obs::{bucket_index, bucket_lower, bucket_upper, LatencyHistogram, HISTOGRAM_BUCKETS};

#[test]
fn bucket_boundaries_are_monotone_and_contiguous() {
    // Edges must tile u64 with no gaps or overlaps: each bucket's lower
    // edge is exactly one past the previous bucket's upper edge, and
    // upper edges strictly increase.
    for i in 1..HISTOGRAM_BUCKETS {
        assert!(
            bucket_upper(i) > bucket_upper(i - 1),
            "bucket {i} upper not increasing"
        );
        assert_eq!(
            bucket_lower(i),
            bucket_upper(i - 1) + 1,
            "gap/overlap between buckets {} and {i}",
            i - 1
        );
    }
    assert_eq!(bucket_lower(0), 0);
    assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

proptest! {
    #[test]
    fn every_value_lands_in_exactly_one_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        // The chosen bucket contains the value...
        prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
        // ...and no other bucket does (edges are disjoint, so membership
        // in the chosen bucket plus contiguity implies uniqueness; spot
        // check the neighbours explicitly).
        if i > 0 {
            prop_assert!(v > bucket_upper(i - 1));
        }
        if i + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < bucket_lower(i + 1));
        }
    }

    #[test]
    fn recording_increments_exactly_one_bucket(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let counts = h.bucket_counts();
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total, values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        // Each bucket's count equals the number of values that fall in
        // its range — i.e. every record hit exactly its own bucket.
        for (i, &c) in counts.iter().enumerate() {
            let expect = values
                .iter()
                .filter(|&&v| bucket_lower(i) <= v && v <= bucket_upper(i))
                .count() as u64;
            prop_assert_eq!(c, expect, "bucket {} miscounted", i);
        }
    }

    #[test]
    fn quantiles_are_bounded_by_their_bucket_edges(
        values in prop::collection::vec(0u64..1_000_000_000, 1..200),
        q_millis in 0u32..=1000,
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let q = q_millis as f64 / 1000.0;
        let est = h.quantile(q);
        // Recompute the rank the estimator targets and locate its bucket
        // independently; the estimate must lie within that bucket.
        let total = values.len() as u64;
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let counts = h.bucket_counts();
        let mut cum = 0u64;
        let mut located = None;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                located = Some(i);
                break;
            }
        }
        let i = located.expect("rank within total");
        prop_assert!(
            bucket_lower(i) <= est && est <= bucket_upper(i),
            "q={} est={} outside bucket {} [{}, {}]",
            q, est, i, bucket_lower(i), bucket_upper(i)
        );
        // And quantiles are monotone in q at the resolution of buckets.
        prop_assert!(h.quantile(0.0) <= h.quantile(1.0));
    }
}

#[test]
fn concurrent_recording_keeps_exact_totals() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let h = Arc::new(LatencyHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                // Distinct value streams per thread, spanning many
                // buckets, including zeros and large outliers.
                for i in 0..PER_THREAD {
                    let v = match i % 4 {
                        0 => 0,
                        1 => i,
                        2 => (t as u64 + 1) << (i % 40),
                        _ => u64::MAX - i,
                    };
                    h.record(v);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let expect = (THREADS as u64) * PER_THREAD;
    assert_eq!(h.count(), expect, "lost or duplicated recordings");
    let counts = h.bucket_counts();
    assert_eq!(counts.iter().sum::<u64>(), expect);
    assert_eq!(counts[0], expect / 4, "zero bucket exact");
    // The `_` arm first fires at i == 3, so the largest sample is MAX-3.
    assert_eq!(h.max(), u64::MAX - 3);
    // Quantiles remain finite and ordered after concurrent recording.
    let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
    assert!(p50 <= p99 && p99 <= h.max());
}
