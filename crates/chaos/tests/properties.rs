//! Property tests for chaos-event chains: incrementally extended fault
//! patterns and incrementally rebuilt f-rings must agree with from-scratch
//! construction on the final state, and every prefix of a schedule must
//! keep the healthy mesh connected (checked against an independent BFS).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wormsim_chaos::FaultSchedule;
use wormsim_fault::{FRingSet, FaultPattern};
use wormsim_topology::{Coord, Mesh, NodeId, ALL_DIRECTIONS};

/// Independent BFS oracle for healthy-subgraph connectivity.
fn connected_oracle(mesh: &Mesh, pattern: &FaultPattern) -> bool {
    let healthy: Vec<NodeId> = pattern.healthy_nodes(mesh).collect();
    let Some(&start) = healthy.first() else {
        return false;
    };
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(u) = stack.pop() {
        for d in ALL_DIRECTIONS {
            if let Some(v) = mesh.neighbor(u, d) {
                if !pattern.is_faulty(v) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
    }
    seen.len() == healthy.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chaos_chains_agree_with_from_scratch(
        seed in any::<u64>(),
        base_faults in 0usize..=4,
        num_events in 1usize..=4,
        faults_per_event in 1usize..=2,
    ) {
        let mesh = Mesh::square(10);
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = if base_faults == 0 {
            FaultPattern::fault_free(&mesh)
        } else {
            match wormsim_fault::random_pattern(&mesh, base_faults, &mut rng) {
                Ok(p) => p,
                // Generation may exhaust its attempt budget; accepted.
                Err(_) => return Ok(()),
            }
        };
        let Ok(schedule) =
            FaultSchedule::random(&mesh, &base, num_events, faults_per_event, 100..10_000, &mut rng)
        else {
            return Ok(());
        };
        let patterns = schedule.cumulative_patterns(&mesh, &base).unwrap();

        // Fold the ring rebuild alongside the pattern chain, accumulating
        // every seed coordinate seen so far.
        let mut prev_pat = base.clone();
        let mut rings = FRingSet::build(&mesh, &base);
        let mut seeds: Vec<Coord> = mesh
            .nodes()
            .filter(|&n| base.is_seed_faulty(n))
            .map(|n| mesh.coord(n))
            .collect();
        for (event, pat) in schedule.events().iter().zip(&patterns) {
            rings = FRingSet::rebuild(&mesh, pat, &prev_pat, &rings);
            seeds.extend(event.coords.iter().copied());
            prev_pat = pat.clone();
        }
        let final_pat = patterns.last().unwrap();

        // 1. The extend chain equals from-scratch construction over all
        //    accumulated seeds: the coalescing fixpoint is confluent, so
        //    the order faults arrived in must not matter.
        let scratch = FaultPattern::from_faulty_coords(&mesh, seeds.iter().copied())
            .expect("scratch build must accept what the chain accepted");
        prop_assert_eq!(scratch.regions(), final_pat.regions());
        prop_assert_eq!(scratch.num_faulty(), final_pat.num_faulty());
        for n in mesh.nodes() {
            prop_assert_eq!(scratch.is_faulty(n), final_pat.is_faulty(n));
            prop_assert_eq!(scratch.is_seed_faulty(n), final_pat.is_seed_faulty(n));
            prop_assert_eq!(scratch.region_of(n), final_pat.region_of(n));
        }

        // 2. `healthy_connected` agrees with the BFS oracle on every
        //    prefix of the schedule (all prefixes are valid patterns).
        for pat in &patterns {
            prop_assert!(pat.healthy_connected(&mesh));
            prop_assert!(connected_oracle(&mesh, pat));
        }

        // 3. Incrementally rebuilt f-rings equal rings built fresh from
        //    the final pattern, including the node→ring membership index.
        let fresh = FRingSet::build(&mesh, final_pat);
        prop_assert_eq!(rings.rings().len(), fresh.rings().len());
        for (a, b) in rings.rings().iter().zip(fresh.rings()) {
            prop_assert_eq!(a.region(), b.region());
            prop_assert_eq!(a.nodes(), b.nodes());
            prop_assert_eq!(a.is_closed(), b.is_closed());
        }
        for n in mesh.nodes() {
            prop_assert_eq!(rings.positions_of(n), fresh.positions_of(n));
        }
    }
}
