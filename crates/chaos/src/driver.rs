//! The engine-facing side: turning a [`FaultSchedule`] into
//! [`FaultActivation`]s delivered at the scheduled cycles.

use crate::schedule::{FaultSchedule, ScheduleError};
use std::collections::VecDeque;
use std::sync::Arc;
use wormsim_engine::{FaultActivation, FaultDriver};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};

/// A [`FaultDriver`] that replays a validated [`FaultSchedule`].
///
/// Activation patterns are precomputed at construction (so a bad schedule
/// fails before the simulation starts, not mid-run). On each due event the
/// driver derives the next routing context incrementally via
/// [`RoutingContext::with_pattern`] — unchanged fault regions keep their
/// f-rings rather than being rebuilt from scratch — and instantiates a
/// fresh algorithm of the same kind over it.
pub struct ChaosDriver {
    /// `(cycle, cumulative pattern)` pairs not yet delivered, sorted.
    pending: VecDeque<(u64, FaultPattern)>,
    /// Context the *previous* activation produced (the rebuild baseline).
    ctx: Arc<RoutingContext>,
    kind: AlgorithmKind,
    vc: VcConfig,
}

impl ChaosDriver {
    /// Build a driver replaying `schedule` on top of `base_ctx`.
    ///
    /// `kind`/`vc` must match the algorithm the simulator was constructed
    /// with: each activation swaps in a new instance of the same algorithm
    /// bound to the updated context.
    pub fn new(
        schedule: &FaultSchedule,
        base_ctx: Arc<RoutingContext>,
        kind: AlgorithmKind,
        vc: VcConfig,
    ) -> Result<Self, ScheduleError> {
        let patterns = schedule.cumulative_patterns(base_ctx.mesh(), base_ctx.pattern())?;
        let pending = schedule
            .events()
            .iter()
            .map(|e| e.cycle)
            .zip(patterns)
            .collect();
        Ok(ChaosDriver {
            pending,
            ctx: base_ctx,
            kind,
            vc,
        })
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

impl FaultDriver for ChaosDriver {
    fn poll(&mut self, cycle: u64) -> Option<FaultActivation> {
        let due = self.pending.front().is_some_and(|&(at, _)| at <= cycle);
        if !due {
            return None;
        }
        let (_, pattern) = self.pending.pop_front().expect("checked front");
        let ctx = Arc::new(self.ctx.with_pattern(pattern));
        self.ctx = ctx.clone();
        let algo = build_algorithm(self.kind, ctx.clone(), self.vc);
        Some(FaultActivation {
            ctx,
            algo: algo.into(),
        })
    }
}
