//! Deterministic fault schedules: which nodes die at which cycles.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use wormsim_fault::{FaultPattern, PatternError};
use wormsim_topology::{Coord, Mesh, NodeId};

/// One fault activation: at `cycle`, every node in `coords` fails
/// simultaneously (they coalesce with each other and with pre-existing
/// regions under the block fault model).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation cycle the nodes die.
    pub cycle: u64,
    /// The nodes that fail (seed faults; the convex closure may disable
    /// more).
    pub coords: Vec<Coord>,
}

/// A schedule rejected during validation, tagged with the offending event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleError {
    /// Cycle of the event that failed to apply.
    pub cycle: u64,
    /// Why the extended pattern was unacceptable.
    pub source: PatternError,
}

impl core::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "fault event at cycle {}: {}", self.cycle, self.source)
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A validated sequence of fault events, sorted by cycle.
///
/// Validation folds [`FaultPattern::extend`] over the events from `base`:
/// every prefix of the schedule must leave the healthy mesh connected and
/// non-empty, mirroring the paper's §2.2 acceptability rules at every
/// point in time — a schedule that would disconnect survivors mid-run is
/// rejected up front, not at activation time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Validate `events` against `base` (sorting them by cycle; ties keep
    /// their given order and apply as separate events).
    pub fn new(
        mesh: &Mesh,
        base: &FaultPattern,
        mut events: Vec<FaultEvent>,
    ) -> Result<Self, ScheduleError> {
        events.sort_by_key(|e| e.cycle);
        let schedule = FaultSchedule { events };
        schedule.cumulative_patterns(mesh, base)?;
        Ok(schedule)
    }

    /// Draw a random schedule: `events.len() == num_events`, each killing
    /// `faults_per_event` currently-healthy nodes at a cycle uniform in
    /// `window`. Rejection-samples each event until the extended pattern is
    /// acceptable (budgeted; [`PatternError::GenerationFailed`] when a mesh
    /// is too broken to extend).
    pub fn random<R: Rng>(
        mesh: &Mesh,
        base: &FaultPattern,
        num_events: usize,
        faults_per_event: usize,
        window: Range<u64>,
        rng: &mut R,
    ) -> Result<Self, ScheduleError> {
        assert!(!window.is_empty(), "empty fault-arrival window");
        const ATTEMPTS: usize = 500;
        let mut cycles: Vec<u64> = (0..num_events)
            .map(|_| rng.gen_range(window.clone()))
            .collect();
        cycles.sort_unstable();
        let mut cur = base.clone();
        let mut events = Vec::with_capacity(num_events);
        for cycle in cycles {
            let healthy: Vec<NodeId> = cur.healthy_nodes(mesh).collect();
            let mut accepted = None;
            for _ in 0..ATTEMPTS {
                let coords: Vec<Coord> = healthy
                    .choose_multiple(rng, faults_per_event)
                    .map(|&n| mesh.coord(n))
                    .collect();
                if coords.len() < faults_per_event {
                    break; // not enough healthy nodes left
                }
                if let Ok(next) = cur.extend(mesh, coords.iter().copied()) {
                    accepted = Some((coords, next));
                    break;
                }
            }
            let Some((coords, next)) = accepted else {
                return Err(ScheduleError {
                    cycle,
                    source: PatternError::GenerationFailed,
                });
            };
            cur = next;
            events.push(FaultEvent { cycle, coords });
        }
        Ok(FaultSchedule { events })
    }

    /// The events, sorted by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total seed faults across all events.
    pub fn total_faults(&self) -> usize {
        self.events.iter().map(|e| e.coords.len()).sum()
    }

    /// The pattern after each event, in order: `result[i]` is `base`
    /// extended by events `0..=i`. This is the validation fold; the driver
    /// uses it to precompute activation patterns.
    pub fn cumulative_patterns(
        &self,
        mesh: &Mesh,
        base: &FaultPattern,
    ) -> Result<Vec<FaultPattern>, ScheduleError> {
        let mut cur = base.clone();
        let mut out = Vec::with_capacity(self.events.len());
        for e in &self.events {
            cur = cur
                .extend(mesh, e.coords.iter().copied())
                .map_err(|source| ScheduleError {
                    cycle: e.cycle,
                    source,
                })?;
            out.push(cur.clone());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mesh() -> Mesh {
        Mesh::square(10)
    }

    #[test]
    fn new_sorts_and_validates() {
        let m = mesh();
        let base = FaultPattern::fault_free(&m);
        let s = FaultSchedule::new(
            &m,
            &base,
            vec![
                FaultEvent {
                    cycle: 900,
                    coords: vec![Coord::new(2, 2)],
                },
                FaultEvent {
                    cycle: 400,
                    coords: vec![Coord::new(7, 7)],
                },
            ],
        )
        .unwrap();
        assert_eq!(s.events()[0].cycle, 400);
        assert_eq!(s.events()[1].cycle, 900);
        assert_eq!(s.total_faults(), 2);
        let pats = s.cumulative_patterns(&m, &base).unwrap();
        assert_eq!(pats[0].num_seed_faulty(), 1);
        assert_eq!(pats[1].num_seed_faulty(), 2);
    }

    #[test]
    fn disconnecting_prefix_rejected() {
        let m = Mesh::new(3, 3);
        let base = FaultPattern::fault_free(&m);
        let err = FaultSchedule::new(
            &m,
            &base,
            vec![FaultEvent {
                cycle: 100,
                coords: vec![Coord::new(0, 1), Coord::new(1, 1), Coord::new(2, 1)],
            }],
        )
        .unwrap_err();
        assert_eq!(err.cycle, 100);
        assert_eq!(err.source, PatternError::Disconnects);
    }

    #[test]
    fn random_schedules_are_deterministic_and_valid() {
        let m = mesh();
        let base = FaultPattern::fault_free(&m);
        let gen = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            FaultSchedule::random(&m, &base, 3, 2, 1_000..5_000, &mut rng).unwrap()
        };
        let a = gen(7);
        assert_eq!(a, gen(7), "same seed must give the same schedule");
        assert_ne!(a, gen(8));
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_faults(), 6);
        assert!(a.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        for e in a.events() {
            assert!((1_000..5_000).contains(&e.cycle));
        }
        // Every prefix acceptable by construction.
        let pats = a.cumulative_patterns(&m, &base).unwrap();
        assert!(pats.last().unwrap().healthy_connected(&m));
    }

    #[test]
    fn serializes_round_trip() {
        let m = mesh();
        let base = FaultPattern::fault_free(&m);
        let s = FaultSchedule::new(
            &m,
            &base,
            vec![FaultEvent {
                cycle: 123,
                coords: vec![Coord::new(4, 4)],
            }],
        )
        .unwrap();
        let back: FaultSchedule =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
