//! `wormsim-chaos` — online fault injection for the wormhole simulator.
//!
//! The static pipeline (PR 0/1) fixes a fault pattern before the first
//! cycle; every result in the source paper is steady-state under faults
//! that were always there. This crate adds the dynamic half: nodes die
//! *mid-simulation* according to a deterministic [`FaultSchedule`], the
//! engine's recovery protocol aborts and re-injects messages caught on the
//! failed hardware, and [`wormsim_metrics::RecoveryStats`] measures how
//! long each algorithm takes to re-converge.
//!
//! Structure:
//!
//! - [`FaultSchedule`] / [`FaultEvent`]: validated `(cycle, coords)` pairs.
//!   Construction folds [`FaultPattern::extend`] over the base pattern, so
//!   every prefix of the schedule is an acceptable block-fault pattern
//!   (convex regions, pairwise separated, healthy mesh connected).
//!   [`FaultSchedule::random`] draws schedules reproducibly from a seed.
//! - [`ChaosDriver`]: a [`wormsim_engine::FaultDriver`] replaying a
//!   schedule. Each activation rebuilds the routing context incrementally
//!   ([`RoutingContext::with_pattern`] reuses f-rings of unchanged
//!   regions) and re-instantiates the routing algorithm over it.
//! - [`run_chaos`]: one-call convenience — wire a schedule into a
//!   simulator and run it to completion.
//!
//! Determinism: a `(seed, schedule)` pair fully determines the run. The
//! schedule itself, the traffic, the arbitration choices, and the recovery
//! protocol all draw from seeded PRNGs or iterate in fixed order, so two
//! runs produce byte-identical [`SimReport`]s (asserted in the engine's
//! `chaos_runs_are_byte_identical_for_a_seed` test and by the
//! `dynamic_faults --check-determinism` experiment flag).

mod driver;
mod schedule;

pub use driver::ChaosDriver;
pub use schedule::{FaultEvent, FaultSchedule, ScheduleError};

use std::sync::Arc;
use wormsim_engine::{NullSink, SimConfig, Simulator, Sink};
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

/// Run one simulation with `schedule` injected on top of `base`.
///
/// Builds the initial routing context from `(mesh, base)`, installs a
/// [`ChaosDriver`], and runs the configured warm-up + measurement window.
/// The returned report's `recovery` field is always `Some` (it records one
/// [`wormsim_metrics::RecoveryEvent`] per delivered fault event).
pub fn run_chaos(
    mesh: Mesh,
    base: FaultPattern,
    schedule: &FaultSchedule,
    kind: AlgorithmKind,
    vc: VcConfig,
    workload: Workload,
    cfg: SimConfig,
) -> Result<SimReport, ScheduleError> {
    run_chaos_with_sink(mesh, base, schedule, kind, vc, workload, cfg, NullSink)
        .map(|(report, _)| report)
}

/// [`run_chaos`] with a trace [`Sink`] attached: the run emits flit-level
/// [`wormsim_engine::TraceEvent`]s into `sink` and hands it back alongside
/// the report. Tracing is observational — the report is byte-identical to
/// the sink-less run.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_with_sink<S: Sink>(
    mesh: Mesh,
    base: FaultPattern,
    schedule: &FaultSchedule,
    kind: AlgorithmKind,
    vc: VcConfig,
    workload: Workload,
    cfg: SimConfig,
    sink: S,
) -> Result<(SimReport, S), ScheduleError> {
    let ctx = Arc::new(RoutingContext::new(mesh, base));
    let driver = ChaosDriver::new(schedule, ctx.clone(), kind, vc)?;
    let algo = build_algorithm(kind, ctx.clone(), vc);
    let mut sim = Simulator::with_sink(algo, ctx, workload, cfg, sink);
    sim.install_fault_driver(Box::new(driver));
    let report = sim.run();
    Ok((report, sim.into_sink()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_topology::Coord;

    #[test]
    fn run_chaos_records_every_event() {
        let mesh = Mesh::square(8);
        let base = FaultPattern::fault_free(&mesh);
        let schedule = FaultSchedule::new(
            &mesh,
            &base,
            vec![
                FaultEvent {
                    cycle: 300,
                    coords: vec![Coord::new(2, 2)],
                },
                FaultEvent {
                    cycle: 900,
                    coords: vec![Coord::new(6, 5)],
                },
            ],
        )
        .unwrap();
        let report = run_chaos(
            mesh,
            base,
            &schedule,
            AlgorithmKind::Duato,
            VcConfig::paper(),
            Workload::paper_uniform(0.002),
            SimConfig::quick().with_seed(11),
        )
        .unwrap();
        let rec = report
            .recovery
            .expect("chaos run must attach RecoveryStats");
        assert_eq!(rec.num_events(), 2);
        assert_eq!(rec.events()[0].cycle, 300);
        assert_eq!(rec.events()[1].cycle, 900);
        assert!(rec.events().iter().all(|e| e.newly_faulty >= 1));
    }

    #[test]
    fn traced_chaos_run_matches_untraced_and_sees_the_fault() {
        use wormsim_engine::{EventKind, VecSink};
        let mesh = Mesh::square(8);
        let base = FaultPattern::fault_free(&mesh);
        let schedule = FaultSchedule::new(
            &mesh,
            &base,
            vec![FaultEvent {
                cycle: 500,
                coords: vec![Coord::new(4, 4)],
            }],
        )
        .unwrap();
        let run = |mesh: Mesh| {
            run_chaos(
                mesh,
                FaultPattern::fault_free(&Mesh::square(8)),
                &schedule,
                AlgorithmKind::Duato,
                VcConfig::paper(),
                Workload::paper_uniform(0.004),
                SimConfig::quick().with_seed(3),
            )
            .unwrap()
        };
        let untraced = serde_json::to_string(&run(mesh.clone())).unwrap();
        let (report, sink) = run_chaos_with_sink(
            mesh,
            base,
            &schedule,
            AlgorithmKind::Duato,
            VcConfig::paper(),
            Workload::paper_uniform(0.004),
            SimConfig::quick().with_seed(3),
            VecSink::new(),
        )
        .unwrap();
        assert_eq!(
            untraced,
            serde_json::to_string(&report).unwrap(),
            "tracing perturbed the chaos run"
        );
        let events = sink.events();
        assert!(!events.is_empty());
        // The mid-run fault must leave a visible trace: either aborts (a
        // worm crossed the dying node) or at minimum ordinary traffic.
        assert!(events.iter().any(|e| e.kind == EventKind::Inject));
        assert!(events.iter().any(|e| e.kind == EventKind::Deliver));
    }

    #[test]
    fn driver_delivers_in_cycle_order_and_empties() {
        let mesh = Mesh::square(8);
        let base = FaultPattern::fault_free(&mesh);
        let schedule = FaultSchedule::new(
            &mesh,
            &base,
            vec![
                FaultEvent {
                    cycle: 50,
                    coords: vec![Coord::new(1, 1)],
                },
                FaultEvent {
                    cycle: 50,
                    coords: vec![Coord::new(5, 5)],
                },
            ],
        )
        .unwrap();
        let ctx = Arc::new(RoutingContext::new(mesh, base));
        let mut driver =
            ChaosDriver::new(&schedule, ctx, AlgorithmKind::Duato, VcConfig::paper()).unwrap();
        use wormsim_engine::FaultDriver;
        assert!(driver.poll(49).is_none());
        assert_eq!(driver.remaining(), 2);
        let first = driver.poll(50).expect("first event due");
        assert_eq!(first.ctx.pattern().num_seed_faulty(), 1);
        let second = driver.poll(50).expect("same-cycle event due");
        assert_eq!(second.ctx.pattern().num_seed_faulty(), 2);
        assert!(driver.poll(50).is_none());
        assert_eq!(driver.remaining(), 0);
    }
}
