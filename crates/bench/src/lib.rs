//! # wormsim-bench
//!
//! Criterion benches, one per paper figure (`benches/figN_*.rs`) plus an
//! engine microbenchmark. Each figure bench first *regenerates* its
//! figure's data at quick scale (printing the table, so `cargo bench`
//! reproduces every series the paper reports) and then times a
//! representative simulation as the measured benchmark.

use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_experiments::{ExperimentConfig, Scale};
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

/// The experiment configuration benches use to regenerate figure data:
/// quick scale, fixed seed, all cores.
pub fn bench_experiment_config() -> ExperimentConfig {
    ExperimentConfig::new(Scale::Quick).with_seed(0xBE7C)
}

/// A small, fast simulation for timing: 10×10 mesh, 2 000 cycles.
pub fn timed_sim(kind: AlgorithmKind, pattern: FaultPattern, rate: f64) -> SimReport {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(mesh, pattern));
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 1_500,
        ..SimConfig::paper()
    };
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(rate), cfg);
    sim.run()
}

/// Print a figure result to stdout (criterion keeps stdout visible).
pub fn print_figure(fig: &wormsim_experiments::FigureResult) {
    println!("\n===== regenerated {} =====", fig.title);
    for note in &fig.notes {
        println!("- {note}");
    }
    for t in &fig.tables {
        println!("{}", t.to_markdown());
    }
}
