//! Analytical-model bench: prints the model-vs-simulation comparison and
//! times model construction and evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use wormsim_analytic::AnalyticModel;
use wormsim_bench::timed_sim;
use wormsim_fault::FaultPattern;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let mesh = Mesh::square(10);
    let pattern = FaultPattern::fault_free(&mesh);
    let model = AnalyticModel::new(&mesh, &pattern);

    println!("\n===== analytic model vs simulation (fault-free 10×10) =====");
    println!(
        "saturation rate: model {:.5} msgs/node/cycle",
        model.saturation_rate(100)
    );
    println!("{:>9} {:>12} {:>12}", "rate", "lat (model)", "lat (sim)");
    for rate in [0.0005, 0.001, 0.002] {
        let sim = timed_sim(AlgorithmKind::Duato, pattern.clone(), rate);
        let m = model
            .mean_latency(rate, 100)
            .map(|l| format!("{l:.1}"))
            .unwrap_or_else(|| "saturated".into());
        println!(
            "{:>9.4} {:>12} {:>12.1}",
            rate,
            m,
            sim.mean_network_latency()
        );
    }

    c.bench_function("analytic_model_build", |b| {
        b.iter(|| AnalyticModel::new(&mesh, &pattern))
    });
    c.bench_function("analytic_latency_eval", |b| {
        b.iter(|| model.mean_latency(0.002, 100))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
