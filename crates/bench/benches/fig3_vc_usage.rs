//! Figure 3 bench: regenerates both per-VC-utilization panels at quick
//! scale, then times a faulty-mesh simulation with VC-usage collection.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wormsim_bench::{bench_experiment_config, print_figure, timed_sim};
use wormsim_experiments::fig3_vc_utilization;
use wormsim_fault::random_pattern;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    print_figure(&fig3_vc_utilization(&cfg));

    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(3);
    let pattern = random_pattern(&mesh, 5, &mut rng).unwrap();
    let mut g = c.benchmark_group("fig3_vc_usage_sim");
    g.sample_size(10);
    for kind in [AlgorithmKind::PHop, AlgorithmKind::MinimalAdaptive] {
        g.bench_function(kind.paper_name(), |b| {
            b.iter(|| timed_sim(kind, pattern.clone(), 0.003))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
