//! Figure 6 bench: regenerates the f-ring/other traffic split table at
//! quick scale, then times simulations over the paper's §5.2 layout.

use criterion::{criterion_group, criterion_main, Criterion};
use wormsim_bench::{bench_experiment_config, print_figure, timed_sim};
use wormsim_experiments::{fig6_fring_traffic, paper_52_layout};
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    print_figure(&fig6_fring_traffic(&cfg));

    let mesh = Mesh::square(10);
    let pattern = paper_52_layout(&mesh);
    let mut g = c.benchmark_group("fig6_fring_load_sim");
    g.sample_size(10);
    for kind in [AlgorithmKind::PHop, AlgorithmKind::DuatoNbc] {
        g.bench_function(kind.paper_name(), |b| {
            b.iter(|| timed_sim(kind, pattern.clone(), 0.004))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
