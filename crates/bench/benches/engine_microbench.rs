//! Engine microbenchmarks: substrate costs independent of any figure —
//! pattern generation + convex coalescing, f-ring construction, routing
//! decisions, and raw simulation cycle throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::{random_pattern, FRingSet, FaultPattern};
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn bench(c: &mut Criterion) {
    let mesh = Mesh::square(10);

    c.bench_function("fault_pattern_generation_10pct", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| random_pattern(&mesh, 10, &mut rng).unwrap())
    });

    let mut rng = SmallRng::seed_from_u64(2);
    let pattern = random_pattern(&mesh, 10, &mut rng).unwrap();
    c.bench_function("fring_construction", |b| {
        b.iter(|| FRingSet::build(&mesh, &pattern))
    });

    c.bench_function("routing_context_build", |b| {
        b.iter(|| RoutingContext::new(mesh.clone(), pattern.clone()))
    });

    // Routing decision cost per algorithm (single route() call).
    let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
    let mut g = c.benchmark_group("route_decision");
    for kind in [
        AlgorithmKind::PHop,
        AlgorithmKind::Nbc,
        AlgorithmKind::Duato,
        AlgorithmKind::FullyAdaptive,
        AlgorithmKind::BouraFaultTolerant,
    ] {
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let healthy: Vec<_> = pattern.healthy_nodes(&mesh).collect();
        let (src, dest) = (healthy[0], healthy[healthy.len() - 1]);
        g.bench_function(kind.paper_name(), |b| {
            b.iter_batched(
                || algo.init_message(src, dest),
                |mut st| algo.route(src, &mut st),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    // Paper-scale steady state — the configuration `bench_engine` tracks
    // in BENCH_engine.json: 10×10 mesh, 24 VCs, 100-flit messages at
    // 100 % load, full 30 000-cycle warm-up + measurement schedule.
    let mut g = c.benchmark_group("steady_state");
    g.sample_size(3);
    g.bench_function("paper_scale_30k_cycles", |b| {
        b.iter(|| {
            let ctx = Arc::new(RoutingContext::new(
                mesh.clone(),
                FaultPattern::fault_free(&mesh),
            ));
            let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
            let mut sim =
                Simulator::new(algo, ctx, Workload::paper_uniform(0.01), SimConfig::paper());
            sim.run()
        })
    });
    g.finish();

    // Raw cycle throughput at saturation.
    c.bench_function("sim_2000_cycles_saturated", |b| {
        b.iter(|| {
            let ctx = Arc::new(RoutingContext::new(
                mesh.clone(),
                FaultPattern::fault_free(&mesh),
            ));
            let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
            let cfg = SimConfig {
                warmup_cycles: 0,
                measure_cycles: 2_000,
                ..SimConfig::paper()
            };
            let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(0.01), cfg);
            sim.run()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
