//! Figure 5 bench: regenerates the latency-vs-fault-percentage table at
//! quick scale, then times 5%-fault simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wormsim_bench::{bench_experiment_config, print_figure, timed_sim};
use wormsim_experiments::fig5_latency_vs_faults;
use wormsim_fault::random_pattern;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    print_figure(&fig5_latency_vs_faults(&cfg));

    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(5);
    let pattern = random_pattern(&mesh, 5, &mut rng).unwrap();
    let mut g = c.benchmark_group("fig5_fault_latency_sim");
    g.sample_size(10);
    for kind in [AlgorithmKind::Nbc, AlgorithmKind::Duato] {
        g.bench_function(kind.paper_name(), |b| {
            b.iter(|| timed_sim(kind, pattern.clone(), 0.01))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
