//! Ablation-suite bench: regenerates the quick-scale ablation tables
//! (VC budget, turn models, arbitration) and times one representative run
//! of each.

use criterion::{criterion_group, criterion_main, Criterion};
use wormsim_bench::{bench_experiment_config, print_figure, timed_sim};
use wormsim_experiments::{
    ablation_arbitration, ablation_turn_models, ablation_vc_budget, paper_52_layout,
};
use wormsim_fault::FaultPattern;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    print_figure(&ablation_vc_budget(&cfg));
    print_figure(&ablation_turn_models(&cfg));
    print_figure(&ablation_arbitration(&cfg));

    let mesh = Mesh::square(10);
    let mut g = c.benchmark_group("ablation_sims");
    g.sample_size(10);
    g.bench_function("turn_model_west_first", |b| {
        b.iter(|| {
            timed_sim(
                AlgorithmKind::WestFirst,
                FaultPattern::fault_free(&mesh),
                0.003,
            )
        })
    });
    g.bench_function("xy_over_faults", |b| {
        b.iter(|| timed_sim(AlgorithmKind::Xy, paper_52_layout(&mesh), 0.003))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
