//! Figure 1 bench: regenerates the saturation-throughput-vs-rate table at
//! quick scale, then times one near-saturation simulation per category
//! leader.

use criterion::{criterion_group, criterion_main, Criterion};
use wormsim_bench::{bench_experiment_config, print_figure, timed_sim};
use wormsim_experiments::fig1_saturation_throughput;
use wormsim_fault::FaultPattern;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    print_figure(&fig1_saturation_throughput(&cfg));

    let mesh = Mesh::square(10);
    let mut g = c.benchmark_group("fig1_throughput_sim");
    g.sample_size(10);
    for kind in [
        AlgorithmKind::Duato,
        AlgorithmKind::NHop,
        AlgorithmKind::Pbc,
    ] {
        g.bench_function(kind.paper_name(), |b| {
            b.iter(|| timed_sim(kind, FaultPattern::fault_free(&mesh), 0.003))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
