//! Figure 2 bench: regenerates the latency-vs-rate table at quick scale,
//! then times sub-saturation simulations (the latency-dominated regime).

use criterion::{criterion_group, criterion_main, Criterion};
use wormsim_bench::{bench_experiment_config, print_figure, timed_sim};
use wormsim_experiments::fig2_latency_vs_rate;
use wormsim_fault::FaultPattern;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let cfg = bench_experiment_config();
    print_figure(&fig2_latency_vs_rate(&cfg));

    let mesh = Mesh::square(10);
    let mut g = c.benchmark_group("fig2_latency_sim");
    g.sample_size(10);
    for kind in [AlgorithmKind::DuatoNbc, AlgorithmKind::PHop] {
        g.bench_function(kind.paper_name(), |b| {
            b.iter(|| timed_sim(kind, FaultPattern::fault_free(&mesh), 0.001))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
