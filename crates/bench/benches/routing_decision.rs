//! Routing-decision microbenchmarks: per-algorithm `route()` cost with
//! the precomputed geometry table against the direct (table-less)
//! computation, on a representative faulty pattern. This is the
//! benchmark behind the `routing_decision_ns` section of
//! `BENCH_engine.json`; run it for statistically rigorous numbers:
//!
//! ```text
//! cargo bench -p wormsim-bench --bench routing_decision
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_fault::random_pattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;

fn bench(c: &mut Criterion) {
    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(0xB41C);
    let pattern = random_pattern(&mesh, 10, &mut rng).expect("pattern");
    let tabled = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
    let direct = Arc::new(RoutingContext::new_direct(mesh.clone(), pattern.clone()));
    let healthy: Vec<_> = pattern.healthy_nodes(&mesh).collect();
    // A source/destination pair whose minimal rectangle contains faults,
    // so ring geometry (where the table replaces per-query scans) is on
    // the decision path, not just the fault-free early-outs.
    let src = *healthy.first().expect("healthy node");
    let dest = *healthy.last().expect("healthy node");

    let mut g = c.benchmark_group("routing_decision");
    for kind in AlgorithmKind::ALL {
        for (ctx, variant) in [(&tabled, "table"), (&direct, "direct")] {
            let algo = build_algorithm(kind, (*ctx).clone(), VcConfig::paper());
            let name = format!("{}/{variant}", kind.paper_name());
            g.bench_function(&name, |b| {
                b.iter_batched(
                    || algo.init_message(src, dest),
                    |mut st| algo.route(src, &mut st),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
