//! A braille-dot raster canvas: each terminal cell holds a 2×4 dot grid
//! (U+2800 block), giving sub-character plotting resolution.

/// A monochrome dot canvas `width × height` **in terminal cells**; the
/// addressable dot grid is `2·width × 4·height`.
#[derive(Clone, Debug)]
pub struct BrailleCanvas {
    width: usize,
    height: usize,
    /// Per cell: the 8-bit braille dot pattern.
    cells: Vec<u8>,
}

/// Braille dot bit for (dx ∈ 0..2, dy ∈ 0..4), per the Unicode layout:
/// dots 1,2,3,7 in the left column (top→bottom), 4,5,6,8 in the right.
const DOT_BITS: [[u8; 4]; 2] = [
    [0x01, 0x02, 0x04, 0x40], // left column
    [0x08, 0x10, 0x20, 0x80], // right column
];

impl BrailleCanvas {
    /// An empty canvas of `width × height` terminal cells.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        BrailleCanvas {
            width,
            height,
            cells: vec![0; width * height],
        }
    }

    /// Dot-grid width (`2 × cells`).
    pub fn dot_width(&self) -> usize {
        self.width * 2
    }

    /// Dot-grid height (`4 × cells`).
    pub fn dot_height(&self) -> usize {
        self.height * 4
    }

    /// Set the dot at `(x, y)` in dot coordinates; (0,0) is the top-left.
    /// Out-of-range coordinates are ignored.
    pub fn set(&mut self, x: usize, y: usize) {
        if x >= self.dot_width() || y >= self.dot_height() {
            return;
        }
        let cell = (y / 4) * self.width + x / 2;
        self.cells[cell] |= DOT_BITS[x % 2][y % 4];
    }

    /// Whether the dot at `(x, y)` is set.
    pub fn get(&self, x: usize, y: usize) -> bool {
        if x >= self.dot_width() || y >= self.dot_height() {
            return false;
        }
        let cell = (y / 4) * self.width + x / 2;
        self.cells[cell] & DOT_BITS[x % 2][y % 4] != 0
    }

    /// Draw a line between two dot coordinates (Bresenham).
    pub fn line(&mut self, x0: usize, y0: usize, x1: usize, y1: usize) {
        let (mut x0, mut y0) = (x0 as i64, y0 as i64);
        let (x1, y1) = (x1 as i64, y1 as i64);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            if x0 >= 0 && y0 >= 0 {
                self.set(x0 as usize, y0 as usize);
            }
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Render as `height` lines of braille characters.
    pub fn render(&self) -> Vec<String> {
        (0..self.height)
            .map(|row| {
                (0..self.width)
                    .map(|col| {
                        let bits = self.cells[row * self.width + col];
                        char::from_u32(0x2800 + bits as u32).expect("valid braille")
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_canvas_renders_blank_braille() {
        let c = BrailleCanvas::new(3, 2);
        let lines = c.render();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            assert_eq!(l.chars().count(), 3);
            assert!(l.chars().all(|ch| ch == '\u{2800}'));
        }
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut c = BrailleCanvas::new(4, 4);
        for (x, y) in [(0, 0), (7, 15), (3, 9), (5, 2)] {
            assert!(!c.get(x, y));
            c.set(x, y);
            assert!(c.get(x, y), "dot ({x},{y})");
        }
        // Out of range: ignored, no panic.
        c.set(100, 100);
        assert!(!c.get(100, 100));
    }

    #[test]
    fn distinct_dots_in_same_cell_accumulate() {
        let mut c = BrailleCanvas::new(1, 1);
        c.set(0, 0);
        c.set(1, 3);
        let line = &c.render()[0];
        let ch = line.chars().next().unwrap() as u32;
        assert_eq!(ch, 0x2800 + 0x01 + 0x80);
    }

    #[test]
    fn line_endpoints_and_monotonicity() {
        let mut c = BrailleCanvas::new(10, 10);
        c.line(0, 0, 19, 39);
        assert!(c.get(0, 0));
        assert!(c.get(19, 39));
        // Some interior dot on the path.
        let interior = (1..19).any(|x| (1..39).any(|y| c.get(x, y)));
        assert!(interior);
    }

    #[test]
    fn horizontal_line_spans_row() {
        let mut c = BrailleCanvas::new(5, 1);
        c.line(0, 2, 9, 2);
        for x in 0..10 {
            assert!(c.get(x, 2), "dot {x} missing");
        }
    }
}
