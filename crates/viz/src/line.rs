//! Multi-series line charts on a braille canvas with axes and a legend.

use crate::canvas::BrailleCanvas;

/// One named data series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points (need not be sorted; NaN/∞ points are skipped).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    fn finite_points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
    }
}

/// A line chart: braille plot area, y-axis labels, x-range footer, legend.
#[derive(Clone, Debug)]
pub struct LineChart {
    width: usize,
    height: usize,
    title: String,
    series: Vec<Series>,
}

impl LineChart {
    /// A chart with a plot area of `width × height` terminal cells
    /// (minimums 16×4 are enforced).
    pub fn new(width: usize, height: usize) -> Self {
        LineChart {
            width: width.max(16),
            height: height.max(4),
            title: String::new(),
            series: Vec::new(),
        }
    }

    /// Set the title line.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// Add a series.
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Data bounds across all series; `None` when there is nothing finite.
    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut it = self.series.iter().flat_map(|s| s.finite_points());
        let (x0, y0) = it.next()?;
        let (mut xmin, mut xmax, mut ymin, mut ymax) = (x0, x0, y0, y0);
        for (x, y) in it {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        // Degenerate ranges get padded so scaling stays finite.
        if xmax == xmin {
            xmax = xmin + 1.0;
        }
        if ymax == ymin {
            ymax = ymin + 1.0;
        }
        Some((xmin, xmax, ymin, ymax))
    }

    /// Render the chart to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("{}\n", self.title));
        }
        let Some((xmin, xmax, ymin, ymax)) = self.bounds() else {
            out.push_str("(no data)\n");
            return out;
        };
        let mut canvas = BrailleCanvas::new(self.width, self.height);
        let (dw, dh) = (canvas.dot_width() as f64, canvas.dot_height() as f64);
        let to_dot = |x: f64, y: f64| -> (usize, usize) {
            let px = ((x - xmin) / (xmax - xmin) * (dw - 1.0)).round() as usize;
            // y grows upward in data space, downward on the canvas.
            let py = ((ymax - y) / (ymax - ymin) * (dh - 1.0)).round() as usize;
            (px, py)
        };
        for s in &self.series {
            let mut pts: Vec<(f64, f64)> = s.finite_points().collect();
            pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            for w in pts.windows(2) {
                let (x0, y0) = to_dot(w[0].0, w[0].1);
                let (x1, y1) = to_dot(w[1].0, w[1].1);
                canvas.line(x0, y0, x1, y1);
            }
            if pts.len() == 1 {
                let (x, y) = to_dot(pts[0].0, pts[0].1);
                canvas.set(x, y);
            }
        }
        // Y labels on the first, middle and last rows.
        let rows = canvas.render();
        let label_for = |row: usize| -> String {
            let frac = row as f64 / (self.height - 1).max(1) as f64;
            format!("{:>10.4}", ymax - frac * (ymax - ymin))
        };
        for (i, row) in rows.iter().enumerate() {
            let label = if i == 0 || i == self.height - 1 || i == self.height / 2 {
                label_for(i)
            } else {
                " ".repeat(10)
            };
            out.push_str(&format!("{label} ┤{row}\n"));
        }
        out.push_str(&format!(
            "{:>10}  └{}\n",
            "",
            "─".repeat(self.width.min(200))
        ));
        out.push_str(&format!(
            "{:>12}{:<width$.4}{:>10.4}\n",
            "",
            xmin,
            xmax,
            width = self.width.saturating_sub(8),
        ));
        if !self.series.is_empty() {
            out.push_str("  series: ");
            out.push_str(
                &self
                    .series
                    .iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> LineChart {
        LineChart::new(40, 8)
            .with_title("t")
            .with_series(Series::new("a", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]))
            .with_series(Series::new("b", vec![(0.0, 4.0), (2.0, 0.0)]))
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let r = simple().render();
        assert!(r.starts_with("t\n"));
        assert!(r.contains("series: a, b"));
        assert!(r.contains('┤'));
        assert!(r.contains('└'));
        // y-max label appears.
        assert!(r.contains("4.0000"));
    }

    #[test]
    fn empty_chart_says_no_data() {
        let r = LineChart::new(30, 6).render();
        assert!(r.contains("(no data)"));
    }

    #[test]
    fn nan_points_are_skipped() {
        let r = LineChart::new(30, 6)
            .with_series(Series::new(
                "x",
                vec![(0.0, f64::NAN), (1.0, 2.0), (2.0, 3.0)],
            ))
            .render();
        assert!(!r.contains("NaN"));
        assert!(r.contains("series: x"));
    }

    #[test]
    fn single_point_series_renders() {
        let r = LineChart::new(30, 6)
            .with_series(Series::new("p", vec![(5.0, 5.0)]))
            .render();
        // Some non-empty braille cell must exist.
        assert!(r.chars().any(|c| ('\u{2801}'..='\u{28FF}').contains(&c)));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let r = LineChart::new(30, 6)
            .with_series(Series::new("c", vec![(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)]))
            .render();
        assert!(r.contains("series: c"));
    }

    #[test]
    fn plot_area_dimensions() {
        let r = simple().render();
        // title + height rows + axis + x labels + legend
        assert_eq!(r.lines().count(), 1 + 8 + 1 + 1 + 1);
    }
}
