//! # wormsim-viz
//!
//! Dependency-free terminal charts for the experiment harness: braille
//! line plots for figure curves and horizontal bar charts for categorical
//! comparisons. Pure text output — pipes cleanly into logs and CI.
//!
//! ```
//! use wormsim_viz::{LineChart, Series};
//!
//! let chart = LineChart::new(60, 12)
//!     .with_title("throughput vs rate")
//!     .with_series(Series::new(
//!         "NHop",
//!         (0..20).map(|i| (i as f64, (i as f64 * 0.3).min(4.0))).collect(),
//!     ));
//! let rendered = chart.render();
//! assert!(rendered.contains("throughput vs rate"));
//! assert!(rendered.contains("NHop"));
//! ```

mod bars;
mod canvas;
mod line;

pub use bars::BarChart;
pub use canvas::BrailleCanvas;
pub use line::{LineChart, Series};
