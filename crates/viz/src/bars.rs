//! Horizontal bar charts for categorical comparisons (e.g. the Figure 6
//! f-ring/other load bars).

/// A horizontal bar chart with one value per label; optional pairing
/// renders two values per label side by side (the Figure 6 style).
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    title: String,
    width: usize,
    entries: Vec<(String, Vec<f64>)>,
    series_names: Vec<String>,
}

impl BarChart {
    /// A bar chart whose longest bar spans `width` characters.
    pub fn new(width: usize) -> Self {
        BarChart {
            width: width.clamp(10, 200),
            ..Default::default()
        }
    }

    /// Set the title.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// Name the per-entry value series (e.g. `["f-ring", "other"]`).
    pub fn with_series_names(mut self, names: Vec<String>) -> Self {
        self.series_names = names;
        self
    }

    /// Add one labeled entry with one value per series.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.entries.push((label.into(), values));
    }

    /// Render to a string. Bars are scaled to the global maximum; NaN
    /// renders as an empty bar tagged `—`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("{}\n", self.title));
        }
        if self.entries.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let max = self
            .entries
            .iter()
            .flat_map(|(_, v)| v.iter())
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = self
            .entries
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0)
            .min(32);
        let glyphs = ['█', '▓', '▒', '░'];
        for (label, values) in &self.entries {
            for (si, v) in values.iter().enumerate() {
                let shown_label = if si == 0 {
                    format!("{label:<label_w$}")
                } else {
                    " ".repeat(label_w)
                };
                let (bar, tag) = if v.is_finite() {
                    let n = ((v / max) * self.width as f64).round() as usize;
                    (
                        glyphs[si % glyphs.len()].to_string().repeat(n),
                        format!("{v:.2}"),
                    )
                } else {
                    (String::new(), "—".to_string())
                };
                let series = self
                    .series_names
                    .get(si)
                    .map(|s| format!(" [{s}]"))
                    .unwrap_or_default();
                out.push_str(&format!("{shown_label} │{bar} {tag}{series}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut b = BarChart::new(20).with_title("loads");
        b.push("PHop", vec![100.0]);
        b.push("NHop", vec![50.0]);
        let r = b.render();
        assert!(r.starts_with("loads\n"));
        let phop_len = r.lines().nth(1).unwrap().matches('█').count();
        let nhop_len = r.lines().nth(2).unwrap().matches('█').count();
        assert_eq!(phop_len, 20);
        assert_eq!(nhop_len, 10);
    }

    #[test]
    fn paired_series_use_distinct_glyphs_and_names() {
        let mut b = BarChart::new(10).with_series_names(vec!["ring".into(), "other".into()]);
        b.push("PHop 10%", vec![60.0, 30.0]);
        let r = b.render();
        assert!(r.contains('█'));
        assert!(r.contains('▓'));
        assert!(r.contains("[ring]"));
        assert!(r.contains("[other]"));
    }

    #[test]
    fn nan_becomes_dash() {
        let mut b = BarChart::new(10);
        b.push("x", vec![f64::NAN]);
        let r = b.render();
        assert!(r.contains('—'));
    }

    #[test]
    fn empty_chart() {
        assert!(BarChart::new(10).render().contains("(no data)"));
    }

    #[test]
    fn zero_values_render_without_panic() {
        let mut b = BarChart::new(10);
        b.push("z", vec![0.0]);
        let r = b.render();
        assert!(r.contains("0.00"));
    }
}
