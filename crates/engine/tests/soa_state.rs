//! Struct-of-arrays hot-state audits: after the per-message scan flags
//! (liveness, allocation phase, movement stall, watchdog stamp) moved
//! from `Msg` fields into the simulator's flat id-indexed buffers, these
//! tests pin (a) that the flat view stays consistent with the structures
//! it was split from under arbitrary step sequences across the
//! algo × fault × arbitration × shards matrix, and (b) that warm `reset`
//! reuse rewinds every flattened buffer completely — no stale occupancy
//! bits, liveness flags, or wake-list nodes leak into the next run.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{Arbitration, SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn algorithms() -> [AlgorithmKind; 6] {
    [
        AlgorithmKind::PHop,
        AlgorithmKind::Nbc,
        AlgorithmKind::Duato,
        AlgorithmKind::FullyAdaptive,
        AlgorithmKind::BouraFaultTolerant,
        AlgorithmKind::Xy,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random step sequences, then reconstruct the legacy per-message
    /// view from the SoA arrays and assert agreement
    /// (`Simulator::check_soa_layout`), interleaved at random audit
    /// points so mid-flight states are covered, not just drained ones.
    /// The sharded run (pooled path forced, so single-core hosts still
    /// exercise the worker arena's SoA writes) must also keep producing
    /// the sequential oracle's report byte for byte.
    #[test]
    fn soa_state_matches_legacy_layout(
        seed in any::<u64>(),
        algo_idx in 0usize..6,
        faults in 0usize..=5,
        rate_millis in 1u32..=8,
        oldest_first in any::<bool>(),
        shards in prop::sample::select(vec![1u16, 2, 4, 8]),
        audits in prop::collection::vec(1usize..120, 1..5),
    ) {
        let mesh = Mesh::square(10);
        let pattern = if faults == 0 {
            FaultPattern::fault_free(&mesh)
        } else {
            let mut rng = SmallRng::seed_from_u64(seed);
            match wormsim_fault::random_pattern(&mesh, faults, &mut rng) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            }
        };
        let ctx = Arc::new(RoutingContext::new(mesh, pattern));
        let cfg = SimConfig {
            warmup_cycles: 50,
            measure_cycles: 200,
            seed,
            arbitration: if oldest_first {
                Arbitration::OldestFirst
            } else {
                Arbitration::Random
            },
            ..SimConfig::paper()
        }
        .with_shards(shards);
        let kind = algorithms()[algo_idx];
        let wl = Workload::paper_uniform(rate_millis as f64 / 1000.0);

        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let mut sim = Simulator::new(algo, ctx.clone(), wl.clone(), cfg);
        sim.force_parallel_movement(true);
        // Step exactly the schedule (matching the oracle's `run`),
        // auditing the flat buffers at the random interior points.
        let mut stepped = 0u64;
        for &n in &audits {
            for _ in 0..(n as u64).min(cfg.total_cycles() - stepped) {
                sim.step();
                stepped += 1;
            }
            sim.check_soa_layout();
            sim.check_invariants();
        }
        for _ in stepped..cfg.total_cycles() {
            sim.step();
        }
        sim.check_soa_layout();
        let sharded = serde_json::to_string(&sim.report()).unwrap();

        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let mut oracle = Simulator::new(algo, ctx, wl, cfg.with_shards(1));
        let sequential = serde_json::to_string(&oracle.run()).unwrap();
        oracle.check_soa_layout();
        prop_assert_eq!(sequential, sharded, "shards={} diverged", shards);
    }
}

/// Warm `reset` chains across meshes, algorithms, and shard counts must
/// rewind every flattened buffer to the fresh-simulator state — audited
/// after each reset (`Simulator::assert_rewound`) and proven
/// non-vacuously by re-running: the reused instance keeps matching a
/// fresh oracle after the audit passes.
#[test]
fn reset_chain_rewinds_flattened_buffers() {
    let chain: [(usize, AlgorithmKind, u16, u64); 4] = [
        (10, AlgorithmKind::Duato, 1, 7),
        (6, AlgorithmKind::Nbc, 4, 21),
        (10, AlgorithmKind::BouraFaultTolerant, 2, 35),
        (8, AlgorithmKind::FullyAdaptive, 8, 49),
    ];
    let mut reused: Option<Simulator> = None;
    for (side, kind, shards, seed) in chain {
        let mesh = Mesh::square(side as u16);
        let mut rng = SmallRng::seed_from_u64(seed);
        let pattern = wormsim_fault::random_pattern(&mesh, 2, &mut rng)
            .unwrap_or_else(|_| FaultPattern::fault_free(&mesh));
        let ctx = Arc::new(RoutingContext::new(mesh, pattern));
        let cfg = SimConfig {
            warmup_cycles: 50,
            measure_cycles: 250,
            ..SimConfig::paper()
        }
        .with_seed(seed)
        .with_shards(shards);
        let wl = Workload::paper_uniform(0.006);
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let warm = match reused.as_mut() {
            None => {
                let mut sim = Simulator::new(algo, ctx.clone(), wl.clone(), cfg);
                sim.force_parallel_movement(true);
                let report = sim.run();
                reused = Some(sim);
                report
            }
            Some(sim) => {
                sim.reset(algo, ctx.clone(), wl.clone(), cfg);
                // The reset must have fully rewound the flat buffers
                // *before* any new traffic runs.
                sim.assert_rewound();
                let report = sim.run();
                sim.check_soa_layout();
                report
            }
        };
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let fresh = Simulator::new(algo, ctx, wl, cfg.with_shards(1)).run();
        assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "{kind:?} at {side}x{side}/shards={shards} diverged after warm reset"
        );
    }
    // Final rewind: the last run's population must also park cleanly.
    let mut sim = reused.expect("chain ran");
    let last = chain[chain.len() - 1];
    let mesh = Mesh::square(last.0 as u16);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(last.1, ctx.clone(), VcConfig::paper());
    sim.reset(
        algo,
        ctx,
        Workload::paper_uniform(0.001),
        SimConfig::quick(),
    );
    sim.assert_rewound();
}
