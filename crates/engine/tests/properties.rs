//! Property-based engine tests: across random algorithms, fault patterns,
//! loads, and schedules, the simulator's internal invariants hold every
//! cycle and global flit accounting balances.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{Arbitration, SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn algorithms() -> [AlgorithmKind; 6] {
    [
        AlgorithmKind::PHop,
        AlgorithmKind::Nbc,
        AlgorithmKind::Duato,
        AlgorithmKind::FullyAdaptive,
        AlgorithmKind::BouraFaultTolerant,
        AlgorithmKind::Xy,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_hold_under_random_scenarios(
        seed in any::<u64>(),
        algo_idx in 0usize..6,
        faults in 0usize..=8,
        rate_millis in 1u32..=8, // 0.001 ..= 0.008 msgs/node/cycle
        length in prop::sample::select(vec![1u32, 2, 5, 20, 100]),
        depth in 1u8..=4,
        oldest_first in any::<bool>(),
    ) {
        let mesh = Mesh::square(10);
        let pattern = if faults == 0 {
            FaultPattern::fault_free(&mesh)
        } else {
            let mut rng = SmallRng::seed_from_u64(seed);
            match wormsim_fault::random_pattern(&mesh, faults, &mut rng) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            }
        };
        let ctx = Arc::new(RoutingContext::new(mesh, pattern));
        let algo = build_algorithm(algorithms()[algo_idx], ctx.clone(), VcConfig::paper());
        let cfg = SimConfig {
            buffer_depth: depth,
            warmup_cycles: 0,
            measure_cycles: 400,
            deadlock_timeout: 150, // provoke recoveries inside the window
            seed,
            arbitration: if oldest_first {
                Arbitration::OldestFirst
            } else {
                Arbitration::Random
            },
            ..SimConfig::paper()
        };
        let mut wl = Workload::paper_uniform(rate_millis as f64 / 1000.0);
        wl.message_length = length;
        let mut sim = Simulator::new(algo, ctx, wl, cfg);
        for _ in 0..400 {
            sim.step();
            sim.check_invariants();
        }
    }

    #[test]
    fn reset_chains_match_fresh_runs(
        runs in prop::collection::vec(
            (any::<u64>(), 0usize..6, 0usize..=6, 1u32..=8, any::<bool>()),
            2..4,
        ),
    ) {
        // One simulator reset between runs must reproduce, byte for byte,
        // the reports of freshly constructed simulators across arbitrary
        // (kind, pattern, rate, seed, arbitration) chains.
        let mesh = Mesh::square(10);
        let mut reused: Option<Simulator> = None;
        for (seed, algo_idx, faults, rate_millis, oldest_first) in runs {
            let pattern = if faults == 0 {
                FaultPattern::fault_free(&mesh)
            } else {
                let mut rng = SmallRng::seed_from_u64(seed);
                match wormsim_fault::random_pattern(&mesh, faults, &mut rng) {
                    Ok(p) => p,
                    Err(_) => continue,
                }
            };
            let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
            let cfg = SimConfig {
                warmup_cycles: 100,
                measure_cycles: 300,
                seed,
                arbitration: if oldest_first {
                    Arbitration::OldestFirst
                } else {
                    Arbitration::Random
                },
                ..SimConfig::paper()
            };
            let wl = Workload::paper_uniform(rate_millis as f64 / 1000.0);
            let kind = algorithms()[algo_idx];
            let warm = match reused.as_mut() {
                None => {
                    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
                    let mut sim = Simulator::new(algo, ctx.clone(), wl.clone(), cfg);
                    let report = sim.run();
                    reused = Some(sim);
                    report
                }
                Some(sim) => {
                    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
                    sim.reset(algo, ctx.clone(), wl.clone(), cfg);
                    let report = sim.run();
                    sim.check_invariants();
                    report
                }
            };
            let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
            let fresh = Simulator::new(algo, ctx, wl, cfg).run();
            prop_assert_eq!(
                serde_json::to_string(&warm).unwrap(),
                serde_json::to_string(&fresh).unwrap(),
                "reset chain diverged from fresh construction"
            );
        }
    }

    #[test]
    fn directed_batches_always_drain(
        seed in any::<u64>(),
        algo_idx in 0usize..6,
        n_messages in 1usize..10,
        length in prop::sample::select(vec![1u32, 3, 30]),
    ) {
        let mesh = Mesh::square(10);
        let ctx = Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ));
        let algo = build_algorithm(algorithms()[algo_idx], ctx.clone(), VcConfig::paper());
        let mut wl = Workload::paper_uniform(0.0);
        wl.message_length = length;
        let mut sim = Simulator::new(algo, ctx, wl, SimConfig::quick().with_seed(seed));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let mut ids = Vec::new();
        for _ in 0..n_messages {
            let src = mesh.node(
                rand::Rng::gen_range(&mut rng, 0..10),
                rand::Rng::gen_range(&mut rng, 0..10),
            );
            let dest = mesh.node(
                rand::Rng::gen_range(&mut rng, 0..10),
                rand::Rng::gen_range(&mut rng, 0..10),
            );
            if src != dest {
                ids.push(sim.inject_message(src, dest));
            }
        }
        prop_assert!(sim.run_until_drained(60_000), "batch did not drain");
        for id in ids {
            prop_assert!(sim.is_delivered(id));
        }
        sim.check_invariants();
    }
}
