//! Prewarm sizing regression: `Simulator::prewarm` used to size the
//! per-message path buffers for the 10×10 paper shape (a hardcoded hop
//! budget), so the first cycles of a larger run reallocated mid-flight.
//! Capacities now derive from the actual mesh dimensions; this test pins
//! that with a counting global allocator on a 64×64 mesh — after
//! prewarm, a full schedule (warm-up included) performs zero heap
//! allocations.
//!
//! The allocator counts process-wide, so the test binary must stay
//! single-test (integration tests run in their own process; keep this
//! file to exactly this scenario).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn prewarmed_big_mesh_run_never_allocates() {
    const SIDE: u16 = 64;
    const RATE: f64 = 0.002;
    let mesh = Mesh::square(SIDE);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 400,
        ..SimConfig::paper()
    }
    .with_seed(0xB16_3E5);
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(RATE), cfg);
    // Expected creations over the whole schedule plus Bernoulli slack —
    // the same sizing rule `bench_engine` uses. A 64×64 worm crosses up
    // to ~2·(w+h) channels; prewarm must derive that from the mesh (the
    // old hardcoded 10×10 hop budget made exactly this scenario
    // reallocate path buffers mid-run).
    let expected = (cfg.total_cycles() as f64 * f64::from(SIDE) * f64::from(SIDE) * RATE) as usize;
    sim.prewarm(expected + expected / 4 + 1024);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..cfg.total_cycles() {
        sim.step();
    }
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let report = sim.report();
    assert!(
        report.throughput.messages_delivered() > 0,
        "scenario must actually move traffic"
    );
    assert_eq!(
        during, 0,
        "prewarmed 64x64 run allocated {during} times during the schedule"
    );
}
