//! Sharded-engine equivalence: for every algorithm, fault pattern,
//! arbitration policy, and shard count, a sharded run's report is
//! byte-identical to the sequential (shards = 1) oracle.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::{Arbitration, ConfigError, SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn algorithms() -> [AlgorithmKind; 6] {
    [
        AlgorithmKind::PHop,
        AlgorithmKind::Nbc,
        AlgorithmKind::Duato,
        AlgorithmKind::FullyAdaptive,
        AlgorithmKind::BouraFaultTolerant,
        AlgorithmKind::Xy,
    ]
}

fn report_json(kind: AlgorithmKind, ctx: &Arc<RoutingContext>, cfg: SimConfig) -> String {
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let mut wl = Workload::paper_uniform(0.01);
    wl.message_length = 20;
    let mut sim = Simulator::new(algo, ctx.clone(), wl, cfg);
    // Exercise the pooled partition/merge machinery even on single-core
    // CI runners, where sharded movement otherwise falls back to the
    // inline sequential loop and the comparison would be vacuous.
    sim.force_parallel_movement(true);
    let report = sim.run();
    sim.check_invariants();
    serde_json::to_string(&report).unwrap()
}

/// The full combination matrix the issue pins: every algorithm × fault
/// pattern × arbitration, sharded vs sequential.
#[test]
fn sharded_reports_match_sequential_across_the_matrix() {
    let mesh = Mesh::square(10);
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let patterns = [
        FaultPattern::fault_free(&mesh),
        wormsim_fault::random_pattern(&mesh, 3, &mut rng).expect("3-fault pattern"),
    ];
    for pattern in patterns {
        let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
        for kind in algorithms() {
            for arb in [Arbitration::Random, Arbitration::OldestFirst] {
                let cfg = SimConfig {
                    warmup_cycles: 100,
                    measure_cycles: 400,
                    arbitration: arb,
                    ..SimConfig::paper()
                };
                let sequential = report_json(kind, &ctx, cfg);
                let sharded = report_json(kind, &ctx, cfg.with_shards(4));
                assert_eq!(sequential, sharded, "{kind:?}/{arb:?} diverged at shards=4");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shard_count_never_changes_the_report(
        seed in any::<u64>(),
        algo_idx in 0usize..6,
        faults in 0usize..=6,
        rate_millis in 1u32..=8,
        oldest_first in any::<bool>(),
        shards in prop::sample::select(vec![2u16, 4, 8]),
    ) {
        let mesh = Mesh::square(10);
        let pattern = if faults == 0 {
            FaultPattern::fault_free(&mesh)
        } else {
            let mut rng = SmallRng::seed_from_u64(seed);
            match wormsim_fault::random_pattern(&mesh, faults, &mut rng) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            }
        };
        let ctx = Arc::new(RoutingContext::new(mesh, pattern));
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 300,
            seed,
            arbitration: if oldest_first {
                Arbitration::OldestFirst
            } else {
                Arbitration::Random
            },
            ..SimConfig::paper()
        };
        let kind = algorithms()[algo_idx];
        let wl = Workload::paper_uniform(rate_millis as f64 / 1000.0);
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let sequential = {
            let mut sim = Simulator::new(algo, ctx.clone(), wl.clone(), cfg);
            serde_json::to_string(&sim.run()).unwrap()
        };
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let sharded = {
            let mut sim = Simulator::new(algo, ctx, wl, cfg.with_shards(shards));
            sim.force_parallel_movement(true);
            let report = sim.run();
            sim.check_invariants();
            serde_json::to_string(&report).unwrap()
        };
        prop_assert_eq!(sequential, sharded, "shards={} diverged", shards);
    }
}

/// One simulator `reset` between runs with *differing* shard counts must
/// keep reproducing the sequential oracle byte for byte — the shard
/// runtime is torn down, rebuilt, and reshaped across the chain.
#[test]
fn reset_chains_across_shard_counts_match_the_oracle() {
    let mesh = Mesh::square(10);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let base = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 300,
        ..SimConfig::paper()
    };
    let chain: [(AlgorithmKind, u16, u64); 5] = [
        (AlgorithmKind::Duato, 1, 11),
        (AlgorithmKind::Nbc, 4, 22),
        (AlgorithmKind::Xy, 2, 33),
        (AlgorithmKind::FullyAdaptive, 8, 44),
        (AlgorithmKind::PHop, 1, 55),
    ];
    let mut reused: Option<Simulator> = None;
    for (kind, shards, seed) in chain {
        let cfg = base.with_seed(seed).with_shards(shards);
        let wl = Workload::paper_uniform(0.004);
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let warm = match reused.as_mut() {
            None => {
                let mut sim = Simulator::new(algo, ctx.clone(), wl.clone(), cfg);
                sim.force_parallel_movement(true);
                let report = sim.run();
                reused = Some(sim);
                report
            }
            Some(sim) => {
                sim.reset(algo, ctx.clone(), wl.clone(), cfg);
                let report = sim.run();
                sim.check_invariants();
                report
            }
        };
        // Oracle: a freshly constructed sequential run.
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let fresh = Simulator::new(algo, ctx.clone(), wl, cfg.with_shards(1)).run();
        assert_eq!(
            serde_json::to_string(&warm).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "{kind:?} at shards={shards} diverged from the sequential oracle"
        );
    }
}

/// The config-validation satellite: a zero shard count surfaces as a typed
/// error from the fallible constructors instead of a panic mid-sweep.
#[test]
fn zero_shards_is_a_config_error() {
    let mesh = Mesh::square(4);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::Xy, ctx.clone(), VcConfig::paper());
    let err = Simulator::try_new(
        algo,
        ctx,
        Workload::paper_uniform(0.001),
        SimConfig::quick().with_shards(0),
    )
    .err()
    .expect("zero shards must be rejected");
    assert_eq!(err, ConfigError::ZeroShards);
}
