//! Phase profiling equivalence: a `PROFILE = true` simulator produces a
//! byte-identical report to the default instantiation (timing observes,
//! it never perturbs), accumulates time in every expected phase, and the
//! default build accumulates nothing.

use std::sync::Arc;
use wormsim_engine::{NullSink, Phase, SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn scenario() -> (Arc<RoutingContext>, SimConfig) {
    let mesh = Mesh::square(8);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let cfg = SimConfig {
        warmup_cycles: 100,
        measure_cycles: 400,
        ..SimConfig::paper()
    };
    (ctx, cfg)
}

fn report_json(ctx: &Arc<RoutingContext>, cfg: SimConfig, profile: bool) -> String {
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let wl = Workload::paper_uniform(0.01);
    let report = if profile {
        let mut sim = Simulator::<NullSink, true>::try_build(algo, ctx.clone(), wl, cfg, NullSink)
            .expect("valid config");
        sim.run()
    } else {
        let mut sim = Simulator::new(algo, ctx.clone(), wl, cfg);
        sim.run()
    };
    serde_json::to_string(&report).unwrap()
}

#[test]
fn profiled_report_is_byte_identical() {
    let (ctx, cfg) = scenario();
    assert_eq!(
        report_json(&ctx, cfg, false),
        report_json(&ctx, cfg, true),
        "phase profiling changed simulation results"
    );
    // Sharded movement too (exercises the move/merge split).
    let sharded = cfg.with_shards(4);
    assert_eq!(
        report_json(&ctx, sharded, false),
        report_json(&ctx, sharded, true),
        "phase profiling changed sharded simulation results"
    );
}

#[test]
fn profiled_run_accumulates_phase_times() {
    let (ctx, cfg) = scenario();
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let mut sim = Simulator::<NullSink, true>::try_build(
        algo,
        ctx.clone(),
        Workload::paper_uniform(0.01),
        cfg,
        NullSink,
    )
    .expect("valid config");
    let steps = 300u64;
    for _ in 0..steps {
        sim.step();
    }
    let t = sim.phase_times();
    assert_eq!(t.cycles(), steps);
    assert!(t.total_nanos() > 0, "no time accumulated");
    for phase in [
        Phase::Inject,
        Phase::Route,
        Phase::Allocate,
        Phase::Move,
        Phase::Recover,
    ] {
        assert!(
            t.nanos(phase) > 0,
            "phase {:?} accumulated nothing over {} cycles",
            phase,
            steps
        );
    }
    // Sequential movement never enters the merge phase.
    assert_eq!(t.nanos(Phase::Merge), 0);
    // Shares sum to 1 over the non-empty phases.
    let share_sum: f64 = Phase::ALL.iter().map(|&p| t.share(p)).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");

    // Reset clears the accumulator alongside the rest of the run state.
    let algo2 = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    sim.reset(algo2, ctx, Workload::paper_uniform(0.01), cfg);
    assert_eq!(sim.phase_times().cycles(), 0);
    assert_eq!(sim.phase_times().total_nanos(), 0);
}

#[test]
fn sharded_profiled_run_reaches_the_merge_phase() {
    let (ctx, cfg) = scenario();
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let mut sim = Simulator::<NullSink, true>::try_build(
        algo,
        ctx.clone(),
        Workload::paper_uniform(0.01),
        cfg.with_shards(4),
        NullSink,
    )
    .expect("valid config");
    // Force the pooled path so single-core CI still exercises the merge.
    sim.force_parallel_movement(true);
    for _ in 0..300 {
        sim.step();
    }
    let t = sim.phase_times();
    assert!(t.nanos(Phase::Move) > 0);
    assert!(
        t.nanos(Phase::Merge) > 0,
        "sharded run never charged the merge phase"
    );
}

#[test]
fn default_build_accumulates_nothing() {
    let (ctx, cfg) = scenario();
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(0.01), cfg);
    for _ in 0..100 {
        sim.step();
    }
    assert_eq!(sim.phase_times().cycles(), 0);
    assert_eq!(sim.phase_times().total_nanos(), 0);
}
