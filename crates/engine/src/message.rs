//! In-flight message bookkeeping.

use std::collections::VecDeque;
use wormsim_routing::MessageState;
use wormsim_topology::NodeId;

/// Opaque handle to a message within a simulator (slab index; reused after
/// delivery).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MsgId(pub(crate) u32);

/// One virtual channel held by a message: the dense `(channel, vc)` key,
/// how many flits have entered its downstream buffer so far, and how many
/// are buffered there now.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PathEntry {
    /// `channel.index() * num_vcs + vc` — index into the VC-slot table.
    pub key: u32,
    /// The physical channel, i.e. `key / num_vcs`. Precomputed at
    /// allocation time: the per-cycle pipeline loop needs it for link
    /// arbitration, and a runtime division there dominates the hot path.
    pub ch: u32,
    /// The VC index, i.e. `key % num_vcs`. Precomputed likewise.
    pub vc: u8,
    /// The channel's downstream node (`mesh.channel_dest(ch)`), known at
    /// allocation time. Held channels always have a destination.
    pub dest: NodeId,
    /// Flits that have entered this VC (cumulative; the header is flit 0).
    pub entered: u32,
    /// Flits currently in the downstream buffer.
    pub occ: u8,
}

/// A message in flight. Its flits are never materialized: each held VC
/// tracks only counts, which fully determines wormhole pipeline behavior.
#[derive(Debug)]
pub(crate) struct Msg {
    pub src: NodeId,
    pub dest: NodeId,
    pub length: u32,
    pub created: u64,
    /// Cycle the first flit entered the network (None while still queued at
    /// the source). Network latency = delivery − this; total latency =
    /// delivery − `created` (includes source queueing).
    pub first_injected: Option<u64>,
    pub state: MessageState,
    /// VCs currently held, oldest (source side) first.
    pub path: VecDeque<PathEntry>,
    /// Flits still waiting at the source (not yet entered `path[0]`).
    pub at_source: u32,
    /// Flits consumed at the destination.
    pub delivered: u32,
    /// Cycle of the last flit movement (watchdog input).
    pub last_progress: u64,
    /// Slab liveness flag.
    pub alive: bool,
    /// Times this message was dropped and re-injected by the watchdog.
    pub recoveries: u32,
    /// Times this message was aborted by an online fault event (drives the
    /// exponential re-injection backoff).
    pub chaos_aborts: u32,
    /// `(recovery event index, abort cycle)` of the most recent chaos
    /// abort; consumed at delivery to record the recovery latency.
    pub abort_tag: Option<(u32, u64)>,
}

impl Msg {
    pub fn new(src: NodeId, dest: NodeId, length: u32, created: u64, state: MessageState) -> Self {
        Msg {
            src,
            dest,
            length,
            created,
            first_injected: None,
            state,
            path: VecDeque::new(),
            at_source: length,
            delivered: 0,
            last_progress: created,
            alive: true,
            recoveries: 0,
            chaos_aborts: 0,
            abort_tag: None,
        }
    }

    /// Reinitialize a recycled slab slot for a fresh message. Unlike
    /// overwriting with [`Msg::new`], the `path` deque keeps its allocated
    /// capacity, so steady-state slab reuse performs no heap allocation.
    pub fn reset(
        &mut self,
        src: NodeId,
        dest: NodeId,
        length: u32,
        created: u64,
        state: MessageState,
    ) {
        debug_assert!(self.path.is_empty(), "recycled message still holds VCs");
        self.src = src;
        self.dest = dest;
        self.length = length;
        self.created = created;
        self.first_injected = None;
        self.state = state;
        self.path.clear();
        self.at_source = length;
        self.delivered = 0;
        self.last_progress = created;
        self.alive = true;
        self.recoveries = 0;
        self.chaos_aborts = 0;
        self.abort_tag = None;
    }

    /// Whether the header flit is sitting in the buffer of the last held VC
    /// (routable) — true once it has entered and before it moves on.
    pub fn header_at_head(&self) -> bool {
        self.path.back().is_some_and(|e| e.entered >= 1)
    }

    /// Whether every flit has been consumed at the destination.
    pub fn is_complete(&self) -> bool {
        self.delivered == self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_message() {
        let st = MessageState::new(NodeId(0), NodeId(5));
        let m = Msg::new(NodeId(0), NodeId(5), 100, 42, st);
        assert_eq!(m.at_source, 100);
        assert!(!m.header_at_head());
        assert!(!m.is_complete());
    }

    #[test]
    fn header_presence() {
        let st = MessageState::new(NodeId(0), NodeId(5));
        let mut m = Msg::new(NodeId(0), NodeId(5), 10, 0, st);
        m.path.push_back(PathEntry {
            key: 3,
            ch: 0,
            vc: 3,
            dest: NodeId(1),
            entered: 0,
            occ: 0,
        });
        assert!(!m.header_at_head(), "allocated but header not yet arrived");
        m.path.back_mut().unwrap().entered = 1;
        m.path.back_mut().unwrap().occ = 1;
        assert!(m.header_at_head());
    }
}
