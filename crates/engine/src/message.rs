//! In-flight message bookkeeping.

use wormsim_routing::MessageState;
use wormsim_topology::NodeId;

/// Opaque handle to a message within a simulator (slab index; reused after
/// delivery).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MsgId(pub(crate) u32);

/// One virtual channel held by a message: the dense `(channel, vc)` key,
/// how many flits have entered its downstream buffer so far, and how many
/// are buffered there now.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PathEntry {
    /// `channel.index() * num_vcs + vc` — index into the VC-slot table.
    pub key: u32,
    /// The physical channel, i.e. `key / num_vcs`. Precomputed at
    /// allocation time: the per-cycle pipeline loop needs it for link
    /// arbitration, and a runtime division there dominates the hot path.
    pub ch: u32,
    /// The VC index, i.e. `key % num_vcs`. Precomputed likewise.
    pub vc: u8,
    /// The channel's downstream node (`mesh.channel_dest(ch)`), known at
    /// allocation time. Held channels always have a destination.
    pub dest: NodeId,
    /// Flits that have entered this VC (cumulative; the header is flit 0).
    pub entered: u32,
    /// Flits currently in the downstream buffer.
    pub occ: u8,
}

/// The VCs a message holds, oldest (source side) first: a grow-only
/// vector plus a front offset. The per-cycle pipeline loop wants a plain
/// contiguous slice (a `VecDeque` needs `make_contiguous` and pays
/// ring-buffer arithmetic on every index), and a wormhole only ever
/// appends at the head side and drains at the tail, so `pop_front` is a
/// cursor bump. The buffer resets whenever the path empties; its length
/// is bounded by the hops of one traversal, so slab reuse keeps both the
/// capacity and the zero-allocation steady state.
#[derive(Debug, Default)]
pub(crate) struct PathBuf {
    buf: Vec<PathEntry>,
    front: usize,
}

impl PathBuf {
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len() - self.front
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.front == self.buf.len()
    }

    #[inline]
    pub fn push_back(&mut self, e: PathEntry) {
        self.buf.push(e);
    }

    /// Drop the oldest entry. O(1): the drained prefix is left in place
    /// and reclaimed wholesale when the path empties.
    #[inline]
    pub fn pop_front(&mut self) {
        debug_assert!(!self.is_empty());
        self.front += 1;
        if self.front == self.buf.len() {
            self.clear();
        }
    }

    #[inline]
    pub fn clear(&mut self) {
        self.buf.clear();
        self.front = 0;
    }

    /// Reserve room for `additional` more entries (prewarm support: a
    /// path buffer sized to the longest possible traversal up front
    /// never reallocates mid-run).
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    #[inline]
    pub fn front(&self) -> Option<&PathEntry> {
        self.buf.get(self.front)
    }

    #[inline]
    pub fn back(&self) -> Option<&PathEntry> {
        self.buf.last()
    }

    #[cfg(test)]
    pub fn back_mut(&mut self) -> Option<&mut PathEntry> {
        self.buf.last_mut()
    }

    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, PathEntry> {
        self.buf[self.front..].iter()
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [PathEntry] {
        &mut self.buf[self.front..]
    }
}

impl std::ops::Index<usize> for PathBuf {
    type Output = PathEntry;

    #[inline]
    fn index(&self, i: usize) -> &PathEntry {
        &self.buf[self.front + i]
    }
}

impl<'a> IntoIterator for &'a PathBuf {
    type Item = &'a PathEntry;
    type IntoIter = std::slice::Iter<'a, PathEntry>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Where a message stands in the header-allocation pipeline. The
/// allocator only runs `route()` for [`AllocPhase::Contend`] messages;
/// the other two phases are skipped outright, which is what makes the
/// cycle loop cheap under congestion (a blocked header re-arbitrates only
/// when a VC it registered for frees, not every cycle).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AllocPhase {
    /// Header in transit to the head VC's buffer (or the message is
    /// ejecting at its destination): nothing to allocate.
    Moving,
    /// Header routable; must attempt routing + VC allocation this cycle.
    Contend,
    /// Allocation attempted and failed; asleep on the wake lists of every
    /// busy candidate VC slot until one frees (or the algorithm's
    /// `recheck_wait` threshold forces a widened re-route).
    Blocked,
}

/// A message in flight. Its flits are never materialized: each held VC
/// tracks only counts, which fully determines wormhole pipeline behavior.
///
/// The per-cycle scan flags — liveness, [`AllocPhase`], the movement
/// stall bit, and the watchdog's last-progress stamp — live in the
/// simulator's id-indexed struct-of-arrays buffers
/// (`Simulator::{alive, alloc, stalled, last_progress}`), not here: the
/// service-order, watchdog, and retain passes read exactly one of those
/// per message, and packing them densely turns each pass into a linear
/// scan instead of striding through 100+-byte `Msg` records.
#[derive(Debug)]
pub(crate) struct Msg {
    // --- hot: touched every cycle for every active message ---
    /// VCs currently held, oldest (source side) first.
    pub path: PathBuf,
    /// Flits still waiting at the source (not yet entered `path[0]`).
    pub at_source: u32,
    /// Flits consumed at the destination.
    pub delivered: u32,
    pub length: u32,
    pub dest: NodeId,
    pub src: NodeId,
    // --- cold: read on routing decisions, delivery, or recovery only ---
    pub created: u64,
    /// Cycle the first flit entered the network (None while still queued at
    /// the source). Network latency = delivery − this; total latency =
    /// delivery − `created` (includes source queueing).
    pub first_injected: Option<u64>,
    pub state: MessageState,
    /// Times this message was dropped and re-injected by the watchdog.
    pub recoveries: u32,
    /// Times this message was aborted by an online fault event (drives the
    /// exponential re-injection backoff).
    pub chaos_aborts: u32,
    /// `(recovery event index, abort cycle)` of the most recent chaos
    /// abort; consumed at delivery to record the recovery latency.
    pub abort_tag: Option<(u32, u64)>,
}

impl Msg {
    pub fn new(src: NodeId, dest: NodeId, length: u32, created: u64, state: MessageState) -> Self {
        Msg {
            src,
            dest,
            length,
            created,
            first_injected: None,
            state,
            path: PathBuf::default(),
            at_source: length,
            delivered: 0,
            recoveries: 0,
            chaos_aborts: 0,
            abort_tag: None,
        }
    }

    /// Reinitialize a recycled slab slot for a fresh message. Unlike
    /// overwriting with [`Msg::new`], the `path` buffer keeps its
    /// allocated capacity, so steady-state slab reuse performs no heap
    /// allocation.
    pub fn reset(
        &mut self,
        src: NodeId,
        dest: NodeId,
        length: u32,
        created: u64,
        state: MessageState,
    ) {
        debug_assert!(self.path.is_empty(), "recycled message still holds VCs");
        self.src = src;
        self.dest = dest;
        self.length = length;
        self.created = created;
        self.first_injected = None;
        self.state = state;
        self.path.clear();
        self.at_source = length;
        self.delivered = 0;
        self.recoveries = 0;
        self.chaos_aborts = 0;
        self.abort_tag = None;
    }

    /// Whether the header flit is sitting in the buffer of the last held VC
    /// (routable) — true once it has entered and before it moves on.
    pub fn header_at_head(&self) -> bool {
        self.path.back().is_some_and(|e| e.entered >= 1)
    }

    /// Whether every flit has been consumed at the destination.
    pub fn is_complete(&self) -> bool {
        self.delivered == self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_message() {
        let st = MessageState::new(NodeId(0), NodeId(5));
        let m = Msg::new(NodeId(0), NodeId(5), 100, 42, st);
        assert_eq!(m.at_source, 100);
        assert!(!m.header_at_head());
        assert!(!m.is_complete());
    }

    #[test]
    fn header_presence() {
        let st = MessageState::new(NodeId(0), NodeId(5));
        let mut m = Msg::new(NodeId(0), NodeId(5), 10, 0, st);
        m.path.push_back(PathEntry {
            key: 3,
            ch: 0,
            vc: 3,
            dest: NodeId(1),
            entered: 0,
            occ: 0,
        });
        assert!(!m.header_at_head(), "allocated but header not yet arrived");
        m.path.back_mut().unwrap().entered = 1;
        m.path.back_mut().unwrap().occ = 1;
        assert!(m.header_at_head());
    }
}
