//! Simulation configuration.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A configuration the engine cannot honor, reported instead of panicking
/// so a single bad run spec no longer aborts a whole sweep mid-batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The routing algorithm asks for more virtual channels than the
    /// engine's 32-bit occupancy/waiter bitmasks can track.
    TooManyVcs {
        /// VCs the algorithm's [`VcConfig`](../wormsim_routing) demands.
        requested: u8,
        /// The bitmask ceiling (32).
        limit: u8,
    },
    /// The BC overlay's reserved share exceeds the total VC budget, so
    /// no base virtual channels would remain.
    BcShareExceedsTotal {
        /// Total VCs per physical channel.
        total: u8,
        /// VCs the Boppana–Chalasani overlay reserves.
        bc_vcs: u8,
    },
    /// The BC overlay's reserved share is below the 4 VCs the scheme
    /// needs (one per message type).
    BcShareTooSmall {
        /// VCs the spec reserves for the overlay.
        bc_vcs: u8,
        /// The overlay's fixed requirement (4).
        required: u8,
    },
    /// The algorithm cannot be built within the spec's total VC budget
    /// on its mesh (every constructor asserts a minimum; see
    /// `wormsim_routing::min_total_vcs`).
    InsufficientVcs {
        /// The algorithm's paper name.
        algorithm: &'static str,
        /// Minimum total VCs (base discipline + BC overlay) it needs on
        /// the spec's mesh.
        required: u8,
        /// Total VCs the spec provides.
        total: u8,
    },
    /// `SimConfig.shards` is zero; the engine needs at least one shard
    /// (1 = the sequential path).
    ZeroShards,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooManyVcs { requested, limit } => write!(
                f,
                "algorithm requests {requested} virtual channels but the engine's \
                 occupancy bitmasks hold at most {limit}"
            ),
            ConfigError::BcShareExceedsTotal { total, bc_vcs } => write!(
                f,
                "BC overlay reserves {bc_vcs} virtual channels but only {total} exist"
            ),
            ConfigError::BcShareTooSmall { bc_vcs, required } => write!(
                f,
                "BC overlay reserves {bc_vcs} virtual channels but the scheme \
                 needs {required} (one per message type)"
            ),
            ConfigError::InsufficientVcs {
                algorithm,
                required,
                total,
            } => write!(
                f,
                "{algorithm} needs at least {required} virtual channels on this \
                 mesh but the spec provides {total}"
            ),
            ConfigError::ZeroShards => {
                write!(f, "SimConfig.shards must be >= 1 (1 = sequential path)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How per-cycle allocation conflicts are ordered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Arbitration {
    /// Random service order every cycle — the paper's model ("conflicts …
    /// were resolved in a random manner"). Admits unbounded starvation on
    /// heavily contended channels.
    Random,
    /// Oldest message first — a starvation-free alternative used by the
    /// arbitration ablation study.
    OldestFirst,
}

/// Engine parameters. [`SimConfig::paper`] reproduces the paper's §5 setup.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SimConfig {
    /// Per-VC input buffer depth in flits.
    pub buffer_depth: u8,
    /// Cycles simulated before statistics collection starts (paper: the
    /// first 10 000 of 30 000 cycles are discarded).
    pub warmup_cycles: u64,
    /// Cycles over which statistics are collected (paper: 20 000).
    pub measure_cycles: u64,
    /// Cycles without progress before the watchdog drops and re-injects a
    /// message. Must comfortably exceed worst-case blocking chains at
    /// saturation (with 100-flit messages these legitimately reach many
    /// thousands of cycles) so deadlock-free algorithms never trip it.
    pub deadlock_timeout: u64,
    /// PRNG seed; every stochastic choice in a run derives from it.
    pub seed: u64,
    /// Conflict-resolution policy (paper: random).
    pub arbitration: Arbitration,
    /// Print diagnostic details for every watchdog recovery (debug aid).
    pub debug_watchdog: bool,
    /// Base re-injection delay (cycles) after a chaos abort; doubles per
    /// abort of the same message (bounded exponential backoff).
    pub recovery_backoff_base: u64,
    /// Maximum number of backoff doublings (caps the delay at
    /// `base << cap`).
    pub recovery_backoff_cap: u32,
    /// Width (cycles) of the sliding delivered-rate window used for the
    /// post-fault settling-time metric.
    pub settle_window: u64,
    /// Width (cycles) of the per-window cycle-telemetry aggregation; `0`
    /// disables telemetry entirely (the report's `telemetry` field stays
    /// `None` and off the wire, preserving report byte-identity).
    pub telemetry_window: u64,
    /// Number of spatial shards the flit-movement phase is split across
    /// (column bands of the mesh, stepped on the persistent worker pool
    /// with a deterministic merge at each cycle boundary). `1` (the
    /// default) is the sequential oracle path; any value produces
    /// byte-identical reports. Only worth raising on large meshes — see
    /// EXPERIMENTS.md "Sharded engine".
    pub shards: u16,
}

// Manual impl rather than a derive so that configs serialized before the
// `shards` knob existed keep deserializing (the field defaults to 1, the
// sequential path).
impl Deserialize for SimConfig {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {
        let has_shards = matches!(v, serde::Value::Object(pairs)
            if pairs.iter().any(|(k, _)| k == "shards"));
        Ok(SimConfig {
            buffer_depth: serde::__field(v, "buffer_depth")?,
            warmup_cycles: serde::__field(v, "warmup_cycles")?,
            measure_cycles: serde::__field(v, "measure_cycles")?,
            deadlock_timeout: serde::__field(v, "deadlock_timeout")?,
            seed: serde::__field(v, "seed")?,
            arbitration: serde::__field(v, "arbitration")?,
            debug_watchdog: serde::__field(v, "debug_watchdog")?,
            recovery_backoff_base: serde::__field(v, "recovery_backoff_base")?,
            recovery_backoff_cap: serde::__field(v, "recovery_backoff_cap")?,
            settle_window: serde::__field(v, "settle_window")?,
            telemetry_window: serde::__field(v, "telemetry_window")?,
            shards: if has_shards {
                serde::__field(v, "shards")?
            } else {
                1
            },
        })
    }
}

impl SimConfig {
    /// The paper's configuration: 30 000 cycles with a 10 000-cycle
    /// warm-up.
    pub fn paper() -> Self {
        SimConfig {
            buffer_depth: 2,
            warmup_cycles: 10_000,
            measure_cycles: 20_000,
            deadlock_timeout: 25_000,
            seed: 0x5EED,
            arbitration: Arbitration::Random,
            debug_watchdog: false,
            recovery_backoff_base: 16,
            recovery_backoff_cap: 6,
            settle_window: 500,
            telemetry_window: 0,
            shards: 1,
        }
    }

    /// A shortened configuration for tests and smoke runs.
    pub fn quick() -> Self {
        SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: 3_000,
            ..SimConfig::paper()
        }
    }

    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style arbitration override.
    pub fn with_arbitration(mut self, arbitration: Arbitration) -> Self {
        self.arbitration = arbitration;
        self
    }

    /// Builder-style watchdog-diagnostics toggle.
    pub fn with_debug_watchdog(mut self, on: bool) -> Self {
        self.debug_watchdog = on;
        self
    }

    /// Builder-style telemetry-window override (`0` disables telemetry).
    pub fn with_telemetry_window(mut self, window: u64) -> Self {
        self.telemetry_window = window;
        self
    }

    /// Builder-style shard-count override (`1` = sequential path).
    pub fn with_shards(mut self, shards: u16) -> Self {
        self.shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5() {
        let c = SimConfig::paper();
        assert_eq!(c.warmup_cycles, 10_000);
        assert_eq!(c.total_cycles(), 30_000);
    }

    #[test]
    fn seed_override() {
        let c = SimConfig::paper().with_seed(7);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn debug_watchdog_flag() {
        assert!(!SimConfig::paper().debug_watchdog);
        assert!(SimConfig::paper().with_debug_watchdog(true).debug_watchdog);
    }

    #[test]
    fn shards_default_to_sequential_and_deserialize_when_absent() {
        assert_eq!(SimConfig::paper().shards, 1);
        assert_eq!(SimConfig::paper().with_shards(8).shards, 8);
        // Configs serialized before the knob existed must keep loading.
        let json = serde_json::to_string(&SimConfig::paper().with_shards(4)).unwrap();
        assert!(json.contains("\"shards\":4"), "{json}");
        let roundtrip: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(roundtrip.shards, 4);
        let legacy = json.replace(",\"shards\":4", "");
        assert!(!legacy.contains("shards"));
        let back: SimConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.shards, 1);
    }

    #[test]
    fn config_error_messages_name_the_limit() {
        let e = ConfigError::TooManyVcs {
            requested: 40,
            limit: 32,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("32"));
        assert!(ConfigError::ZeroShards.to_string().contains("shards"));
        let e = ConfigError::InsufficientVcs {
            algorithm: "Duato's routing",
            required: 7,
            total: 6,
        };
        assert!(e.to_string().contains("Duato's routing"));
        assert!(e.to_string().contains('7') && e.to_string().contains('6'));
        let e = ConfigError::BcShareTooSmall {
            bc_vcs: 2,
            required: 4,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('4'));
    }

    #[test]
    fn telemetry_defaults_off() {
        assert_eq!(SimConfig::paper().telemetry_window, 0);
        assert_eq!(
            SimConfig::paper()
                .with_telemetry_window(500)
                .telemetry_window,
            500
        );
    }
}
