//! Per-phase cycle-time profiling for the engine's step loop.
//!
//! The simulator is generic over `const PROFILE: bool` in the same
//! compile-away discipline as [`Sink::ENABLED`](wormsim_obs::Sink): every
//! stamp site is guarded by `if PROFILE`, so the default `PROFILE =
//! false` instantiation carries no timers, no branches, and no behavior
//! change — reports (and their committed fingerprints) and the
//! zero-allocation steady state are untouched. A `PROFILE = true`
//! simulator accumulates wall-clock nanoseconds per phase into
//! [`PhaseTimes`]; timing observes, it never perturbs (no RNG draws, no
//! simulation state reads).
//!
//! Phase boundaries map onto the numbered sections of
//! `Simulator::step`:
//!
//! | phase      | step sections                                          |
//! |------------|--------------------------------------------------------|
//! | `inject`   | 0–2: fault poll, traffic generation, backoff requeue, injection-port promotion |
//! | `route`    | 3: service-order construction (shuffle / ordered mirror) |
//! | `allocate` | 4: routing decisions + VC allocation for headers       |
//! | `move`     | 5: flit movement (sequential loop, or partition + parallel shard run) |
//! | `merge`    | 5 (sharded only): rank-ordered replay of deferred shard effects |
//! | `recover`  | 6–9: watchdog scan, recoveries, stats/cleanup, delivery window, telemetry fold |

use std::time::Duration;

/// Number of profiled phases per cycle.
pub const NUM_PHASES: usize = 6;

/// One profiled section of the step loop. See the module docs for the
/// mapping onto `Simulator::step`'s numbered sections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Fault poll, traffic generation, backoff requeue, port promotion.
    Inject = 0,
    /// Service-order construction (arbitration).
    Route = 1,
    /// Routing decisions + VC allocation for headers.
    Allocate = 2,
    /// Flit movement (sequential or parallel shard run).
    Move = 3,
    /// Deferred shard-effect replay (sharded movement only).
    Merge = 4,
    /// Watchdog, recoveries, and the stats/cleanup/telemetry tail.
    Recover = 5,
}

impl Phase {
    /// Every phase, in step order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Inject,
        Phase::Route,
        Phase::Allocate,
        Phase::Move,
        Phase::Merge,
        Phase::Recover,
    ];

    /// Stable lowercase name (used in bench records and tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Inject => "inject",
            Phase::Route => "route",
            Phase::Allocate => "allocate",
            Phase::Move => "move",
            Phase::Merge => "merge",
            Phase::Recover => "recover",
        }
    }
}

/// Accumulated wall-clock nanoseconds per phase, plus the number of
/// profiled cycles. Plain copyable data; `reset` clears it along with
/// the rest of the simulator's run state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; NUM_PHASES],
    cycles: u64,
}

impl PhaseTimes {
    /// All-zero accumulator.
    pub fn new() -> Self {
        PhaseTimes::default()
    }

    /// Add one measured span to a phase (saturating).
    #[inline]
    pub fn add(&mut self, phase: Phase, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.nanos[phase as usize] = self.nanos[phase as usize].saturating_add(ns);
    }

    /// Count one completed profiled cycle.
    #[inline]
    pub fn tick_cycle(&mut self) {
        self.cycles += 1;
    }

    /// Accumulated nanoseconds for a phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Total accumulated nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Profiled cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Mean nanoseconds per cycle for a phase (0 before any cycle).
    pub fn mean_ns_per_cycle(&self, phase: Phase) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.nanos(phase) as f64 / self.cycles as f64
        }
    }

    /// A phase's share of the total profiled time (0 when nothing is
    /// accumulated).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos(phase) as f64 / total as f64
        }
    }

    /// Zero the accumulator.
    pub fn clear(&mut self) {
        *self = PhaseTimes::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_summarizes() {
        let mut t = PhaseTimes::new();
        t.add(Phase::Move, Duration::from_nanos(300));
        t.add(Phase::Move, Duration::from_nanos(200));
        t.add(Phase::Inject, Duration::from_nanos(500));
        t.tick_cycle();
        t.tick_cycle();
        assert_eq!(t.nanos(Phase::Move), 500);
        assert_eq!(t.total_nanos(), 1000);
        assert_eq!(t.cycles(), 2);
        assert_eq!(t.mean_ns_per_cycle(Phase::Inject), 250.0);
        assert_eq!(t.share(Phase::Merge), 0.0);
        assert!((t.share(Phase::Move) - 0.5).abs() < 1e-12);
        t.clear();
        assert_eq!(t.total_nanos(), 0);
        assert_eq!(t.cycles(), 0);
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), NUM_PHASES);
        assert_eq!(Phase::ALL[0].name(), "inject");
        assert_eq!(Phase::ALL[5].name(), "recover");
    }
}
