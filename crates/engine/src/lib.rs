//! # wormsim-engine
//!
//! The flit-level, cycle-accurate wormhole network simulator (paper §5:
//! "we have developed a flit-level simulator … for wormhole switching in
//! 2-D meshes with and without faults").
//!
//! ## Model
//!
//! - Each physical channel carries `V` virtual channels (paper: 24), each
//!   with a small input flit buffer at the downstream router.
//! - A message holds a VC exclusively from header allocation until its tail
//!   drains (wormhole switching); its flits advance in pipeline fashion,
//!   one flit per link per cycle.
//! - The crossbar lets any number of distinct (input VC → output VC) pairs
//!   through a node per cycle, but each physical link moves at most one
//!   flit per cycle, and each node ejects at most one flit per cycle
//!   through its local port.
//! - Output conflicts (VC allocation and link bandwidth) are resolved in
//!   random order every cycle (paper: "conflicts … were resolved in a
//!   random manner").
//! - A watchdog recovers messages that make no progress for a configurable
//!   number of cycles by dropping and re-injecting them (Disha-style
//!   recovery); recoveries are counted and must be zero for provably
//!   deadlock-free algorithms.
//!
//! ```
//! use std::sync::Arc;
//! use wormsim_topology::Mesh;
//! use wormsim_fault::FaultPattern;
//! use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
//! use wormsim_traffic::Workload;
//! use wormsim_engine::{SimConfig, Simulator};
//!
//! let mesh = Mesh::square(10);
//! let ctx = Arc::new(RoutingContext::new(mesh.clone(), FaultPattern::fault_free(&mesh)));
//! let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
//! let cfg = SimConfig { warmup_cycles: 500, measure_cycles: 1500, ..SimConfig::paper() };
//! let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(0.001), cfg);
//! let report = sim.run();
//! assert!(report.throughput.messages_delivered() > 0);
//! assert_eq!(report.recoveries, 0);
//! ```

mod config;
mod fault_hook;
mod message;
pub mod pool;
mod profile;
mod shard;
mod simulator;
mod waiters;

pub use config::{Arbitration, ConfigError, SimConfig};
pub use fault_hook::{FaultActivation, FaultDriver};
pub use message::MsgId;
pub use pool::WorkerPool;
pub use profile::{Phase, PhaseTimes, NUM_PHASES};
pub use simulator::Simulator;
// Observability layer, re-exported so engine users can attach sinks and
// consume stall diagnoses without naming `wormsim-obs` themselves.
pub use wormsim_obs::{
    ChromeTraceSink, EventKind, JsonlSink, NullSink, RingSink, Sink, StallDiagnosis, StallMessage,
    TeeSink, TraceEvent, VecSink, WaitEdge,
};
