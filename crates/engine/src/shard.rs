//! Intra-run sharding: the flit-movement phase split across workers.
//!
//! `SimConfig.shards > 1` partitions one cycle's movement pass over the
//! persistent [`WorkerPool`](crate::pool::WorkerPool), with the
//! single-threaded engine as the oracle: reports are byte-identical for
//! every shard count.
//!
//! ## Why this is exact, not approximate
//!
//! The movement phase (`Simulator::move_flits`, phase 5 of `step`) is the
//! only per-cycle work whose cost scales with the flit population, and it
//! draws no randomness. Its writes fall into three classes:
//!
//! 1. **Message-local** — the message's own path entries, counters, and
//!    its struct-of-arrays hot flags (`alive`/`alloc`/`stalled`/
//!    `last_progress` slots, all indexed by the message id). Trivially
//!    parallel.
//! 2. **Footprint-local** — per-channel link budgets (`link_used`,
//!    `occ_mask`, `slots`), per-node ejection budgets (`eject_used`) and
//!    arrival counters. Two messages race on these only when their
//!    *footprints* (held channels plus the downstream nodes of those
//!    channels) intersect. The budgets are first-come-first-served in
//!    service-rank order, so messages with intersecting footprints must
//!    be processed sequentially, in rank order.
//! 3. **Global accumulators** — latency/throughput records (f64 sums,
//!    order-sensitive), the slab free list, recovery records, VC release
//!    counts, and wake-ups of blocked headers. These are *deferred*: each
//!    shard records them as `(service rank, payload)` and the caller
//!    replays them in global rank order at the cycle boundary, exactly
//!    the sequence the sequential loop would have produced. (Wake-ups
//!    are additionally order-insensitive — movement never reads the
//!    allocation phase they set, and setting `Contend` is idempotent —
//!    but the rank-ordered replay makes that argument unnecessary.)
//!
//! So byte-identity reduces to one invariant: **messages whose footprints
//! ever intersect are assigned to the same shard**. That is maintained
//! with a union-find over channel and node keys:
//!
//! - When a header claims a VC (`try_allocate` success — the only place a
//!   footprint grows), the new channel is unioned with its downstream
//!   node and with the previous head channel. All keys of a message's
//!   footprint therefore always share one union-find root, and two
//!   messages sharing any channel or node share a root.
//! - Releases never split clusters. Stale merges are *conservative*: an
//!   over-coarse partition only reduces parallelism, never correctness.
//!   To recover parallelism, the structure is rebuilt from the live
//!   message paths — not on a fixed cycle period, but when the release
//!   volume since the last rebuild says enough slack has accumulated to
//!   be worth reclaiming (see [`ShardRuntime::should_rebuild`]).
//! - A cluster's shard is dealt from its root key by contiguous key-space
//!   ranges: `shard = root * shards / num_keys`. Key space is channels
//!   (index-ordered, hence spatially ordered) then nodes, so contiguous
//!   ranges approximate spatial bands without any per-key assignment
//!   table or per-rebuild banding pass. When incremental unions merge two
//!   clusters between rebuilds, the smaller-key root wins and the merged
//!   cluster deterministically lands on that root's range; *which* shard
//!   a cluster lands on affects only load balance, never results, because
//!   different clusters have disjoint write footprints by construction.
//!
//! The injection-port slot (`injecting[src]`) needs no clustering: during
//! movement only the message holding the port writes it (engine invariant
//! 4), and nothing reads it until the next cycle's promotion phase.

use crate::message::{AllocPhase, Msg};
use crate::pool::SyncPtr;
use wormsim_topology::Mesh;

/// Partition passes between forced rebuilds. The release-volume trigger
/// is the primary one, but several release paths (inline sequential
/// cycles on an idle pool, kills, aborts) can under-feed it; this caps
/// how long a stale, fully-merged partition can linger regardless.
const REBUILD_PARTITION_CAP: u32 = 64;

/// Deferred global effects of one shard's movement pass, replayed by the
/// caller at the cycle boundary. `rank` is the message's index in the
/// cycle's service order — the k-way merge key that reconstructs the
/// sequential processing sequence.
#[derive(Default)]
pub(crate) struct ShardScratch {
    /// `(rank, slot key)` freed this cycle (tail drains and completions,
    /// in sequential-equivalent order per message); their wake lists
    /// drain in rank order at the merge.
    pub freed: Vec<(u32, u32)>,
    /// `(rank, msg id)` of messages fully delivered this cycle; their
    /// stats bookkeeping (f64 latency records, free-list push, recovery
    /// records) replays in rank order at the merge.
    pub completions: Vec<(u32, u32)>,
    /// VC slots released per VC index (order-insensitive counts).
    pub vc_released: Vec<u64>,
    /// Flits ejected at destinations by this shard.
    pub delivered: u32,
}

impl ShardScratch {
    fn reset(&mut self, num_vcs: u8) {
        self.freed.clear();
        self.completions.clear();
        self.vc_released.resize(num_vcs as usize, 0);
        self.vc_released.iter_mut().for_each(|v| *v = 0);
        self.delivered = 0;
    }
}

/// Raw views of the simulator state one cycle's parallel movement pass
/// writes. All pointers are into `Simulator`-owned vectors; shards write
/// provably disjoint index sets (see the module docs), and the pool's
/// completion handshake orders every write before the caller's merge.
pub(crate) struct MoveArena {
    pub msgs: SyncPtr<Msg>,
    // Struct-of-arrays hot flags, indexed by message id (message-local:
    // each worker touches only its own shard's ids).
    pub alive: SyncPtr<bool>,
    pub alloc: SyncPtr<AllocPhase>,
    pub stalled: SyncPtr<bool>,
    pub last_progress: SyncPtr<u64>,
    pub slots: SyncPtr<Option<u32>>,
    pub occ_mask: SyncPtr<u32>,
    pub link_used: SyncPtr<u64>,
    pub eject_used: SyncPtr<u64>,
    pub arrivals: SyncPtr<u64>,
    pub injecting: SyncPtr<Option<u32>>,
    pub depth: u8,
    pub stamp: u64,
    pub cycle: u64,
    pub measuring: bool,
}

/// The sharded engine's persistent state: the footprint union-find, the
/// per-shard work lists and deferred-effect scratches, the rank-merge
/// batch buffer, and the rebuild-trigger accounting (all
/// allocation-reusing across cycles and `reset`s).
pub(crate) struct ShardRuntime {
    shards: u16,
    num_vcs: u8,
    /// Channel keys are `0..num_channel_slots`, node keys follow.
    num_channel_slots: usize,
    /// Total key count (channels + nodes); the shard-dealing divisor.
    num_keys: usize,
    /// Whether this host has more than one core. Sampled once at
    /// construction: on a single core the pooled path is pure overhead,
    /// so the movement phase takes the plain sequential loop instead
    /// (unless a test forces the pooled path).
    multicore: bool,
    /// Union-find parent per key.
    parent: Vec<u32>,
    /// Live path entries (held VCs) across all messages, maintained
    /// incrementally from acquire/release events and recounted exactly at
    /// each rebuild. The yardstick the release trigger measures against.
    live_entries: u64,
    /// VC releases observed since the last rebuild (movement tail drains,
    /// completions, kills, aborts, watchdog recoveries). Each release is
    /// potential cluster-splitting slack the incremental unions can never
    /// reclaim.
    releases_since_rebuild: u64,
    /// Partition passes since the last rebuild (the fallback trigger).
    partitions_since_rebuild: u32,
    /// Per-shard `(service rank, msg id)` movement lists for this cycle.
    pub lists: Vec<Vec<(u32, u32)>>,
    /// Per-shard deferred effects for this cycle.
    pub scratch: Vec<ShardScratch>,
    /// Rank-merged payloads of one deferred-effect kind (most recent
    /// [`ShardRuntime::merge_ranked`] call), in global service order.
    pub merged: Vec<u32>,
    /// K-way merge cursors (reused across cycles).
    cursors: Vec<usize>,
}

impl ShardRuntime {
    pub fn new(mesh: &Mesh, shards: u16, num_vcs: u8) -> Box<ShardRuntime> {
        let multicore = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
        let mut rt = Box::new(ShardRuntime {
            shards,
            num_vcs,
            num_channel_slots: 0,
            num_keys: 0,
            multicore,
            parent: Vec::new(),
            live_entries: 0,
            releases_since_rebuild: 0,
            partitions_since_rebuild: 0,
            lists: Vec::new(),
            scratch: Vec::new(),
            merged: Vec::new(),
            cursors: Vec::new(),
        });
        rt.reconfigure(mesh, shards, num_vcs);
        rt
    }

    /// Re-shape for a (possibly different) mesh, shard count, and VC
    /// count, reusing existing allocations — the sharded counterpart of
    /// `Simulator::reset`.
    pub fn reconfigure(&mut self, mesh: &Mesh, shards: u16, num_vcs: u8) {
        debug_assert!(shards >= 1);
        self.shards = shards;
        self.num_vcs = num_vcs;
        self.num_channel_slots = mesh.num_channel_slots();
        self.num_keys = self.num_channel_slots + mesh.num_nodes();
        self.parent.resize(self.num_keys, 0);
        self.lists.resize_with(shards as usize, Vec::new);
        self.lists.truncate(shards as usize);
        self.scratch
            .resize_with(shards as usize, ShardScratch::default);
        self.scratch.truncate(shards as usize);
        // Identity partition: every key its own cluster (a rebuild with
        // no live messages).
        self.rebuild(&[], &[], &[]);
    }

    /// Whether the pooled movement path can possibly pay for itself here.
    #[inline]
    pub fn multicore(&self) -> bool {
        self.multicore
    }

    /// Pre-size the per-cycle buffers for `max_active` concurrent
    /// messages so the pooled path performs no allocation inside the
    /// measurement window. Worst case puts every message in one shard, so
    /// each list reserves the full population; the freed/merged buffers
    /// get headroom for multi-key releases.
    pub fn prewarm(&mut self, max_active: usize) {
        for l in &mut self.lists {
            l.reserve(max_active.saturating_sub(l.capacity()));
        }
        for s in &mut self.scratch {
            s.completions
                .reserve(max_active.saturating_sub(s.completions.capacity()));
            s.freed
                .reserve((2 * max_active).saturating_sub(s.freed.capacity()));
        }
        self.merged
            .reserve((2 * max_active).saturating_sub(self.merged.capacity()));
    }

    #[inline]
    fn node_key(&self, node: usize) -> u32 {
        (self.num_channel_slots + node) as u32
    }

    /// Union-find root with path halving.
    fn find(&mut self, mut k: u32) -> u32 {
        loop {
            let p = self.parent[k as usize];
            if p == k {
                return k;
            }
            let gp = self.parent[p as usize];
            self.parent[k as usize] = gp;
            k = gp;
        }
    }

    /// Merge two clusters; the smaller-key root wins, so the merged
    /// cluster deterministically inherits the winner's key-range shard.
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (winner, loser) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[loser as usize] = winner;
    }

    /// Footprint growth hook, called from `try_allocate` on every
    /// successful VC claim: the new channel joins the claiming message's
    /// cluster (via the previous head channel) and pulls in its
    /// downstream node (ejection budget + arrival counter).
    #[inline]
    pub fn note_allocation(&mut self, ch: u32, dest_node: usize, prev_ch: Option<u32>) {
        self.live_entries += 1;
        let nk = self.node_key(dest_node);
        self.union(ch, nk);
        if let Some(p) = prev_ch {
            self.union(ch, p);
        }
    }

    /// Footprint shrink hook: `n` VC slots released (tail drains,
    /// completions, kills, chaos aborts, watchdog recoveries). Feeds the
    /// release-volume rebuild trigger — releases are exactly the events
    /// whose cluster-splitting effect the incremental unions cannot
    /// express.
    #[inline]
    pub fn note_releases(&mut self, n: u64) {
        self.releases_since_rebuild += n;
        self.live_entries = self.live_entries.saturating_sub(n);
    }

    /// Whether enough release slack has accumulated since the last
    /// rebuild to be worth a reclaim pass. Triggered when the churn
    /// rivals a quarter of the live footprint (small floor so light
    /// traffic still rebuilds eventually), with a partition-count cap as
    /// a fallback for under-counted release paths.
    #[inline]
    pub fn should_rebuild(&self) -> bool {
        self.releases_since_rebuild >= (self.live_entries / 4).max(64)
            || self.partitions_since_rebuild >= REBUILD_PARTITION_CAP
    }

    /// Recompute the union-find from the live message paths, shedding
    /// every stale merge, and recount `live_entries` exactly. Purely
    /// performance state: rebuild timing affects which clusters exist,
    /// never any simulation result.
    pub fn rebuild(&mut self, active: &[u32], msgs: &[Msg], alive: &[bool]) {
        for (k, p) in self.parent.iter_mut().enumerate() {
            *p = k as u32;
        }
        let mut live = 0u64;
        for &id in active {
            if !alive[id as usize] {
                continue;
            }
            let m = &msgs[id as usize];
            if m.path.is_empty() {
                continue;
            }
            let mut prev: Option<u32> = None;
            for e in m.path.iter() {
                live += 1;
                let nk = self.node_key(e.dest.index());
                self.union(e.ch, nk);
                if let Some(p) = prev {
                    self.union(e.ch, p);
                }
                prev = Some(e.ch);
            }
        }
        self.live_entries = live;
        self.releases_since_rebuild = 0;
        self.partitions_since_rebuild = 0;
    }

    /// Split the cycle's service order into per-shard `(rank, id)` lists
    /// and reset the per-shard scratches. A message's shard is dealt from
    /// its cluster root by contiguous key ranges — no per-key assignment
    /// table, no banding pass at rebuild time.
    pub fn partition(&mut self, order: &[u32], msgs: &[Msg], alive: &[bool]) {
        self.partitions_since_rebuild += 1;
        for l in &mut self.lists {
            l.clear();
        }
        let num_vcs = self.num_vcs;
        for s in &mut self.scratch {
            s.reset(num_vcs);
        }
        let shards = self.shards as u64;
        let num_keys = self.num_keys as u64;
        for (i, &id) in order.iter().enumerate() {
            if !alive[id as usize] {
                continue;
            }
            let m = &msgs[id as usize];
            if m.path.is_empty() {
                continue;
            }
            let ch = m.path[0].ch;
            let root = self.find(ch);
            let shard = (root as u64 * shards / num_keys) as usize;
            self.lists[shard].push((i as u32, id));
        }
    }

    /// Merge one deferred-effect kind into [`ShardRuntime::merged`] in
    /// global rank order. Run-copying k-way merge: pick the shard with
    /// the smallest head rank, then bulk-copy its items up to the next
    /// competing shard's head rank. Ranks are disjoint across shards (a
    /// message lives in exactly one shard's list), so whole per-message
    /// runs copy in one inner loop — a memcpy-like pass when effects
    /// cluster, instead of an every-shard scan per item.
    pub fn merge_ranked(&mut self, pick: impl Fn(&ShardScratch) -> &[(u32, u32)]) {
        self.merged.clear();
        self.cursors.clear();
        self.cursors.resize(self.scratch.len(), 0);
        loop {
            let mut best: Option<(u32, usize)> = None;
            let mut limit = u32::MAX;
            for (si, s) in self.scratch.iter().enumerate() {
                if let Some(&(rank, _)) = pick(s).get(self.cursors[si]) {
                    match best {
                        Some((br, _)) if rank >= br => limit = limit.min(rank),
                        _ => {
                            if let Some((br, _)) = best {
                                limit = limit.min(br);
                            }
                            best = Some((rank, si));
                        }
                    }
                }
            }
            let Some((_, si)) = best else { break };
            let items = pick(&self.scratch[si]);
            let mut c = self.cursors[si];
            while let Some(&(rank, payload)) = items.get(c) {
                if rank >= limit {
                    break;
                }
                self.merged.push(payload);
                c += 1;
            }
            self.cursors[si] = c;
        }
    }
}

/// One message's movement pass — the sharded mirror of
/// `Simulator::move_flits`, kept line-for-line parallel with it (the
/// shard-equivalence test matrix pins them together). Differences: writes
/// go through the arena's raw views (including the struct-of-arrays hot
/// flags, indexed by the message id), and the global accumulators of the
/// sequential version (`delivered_this_cycle`, `vc_usage`, wake-ups,
/// completion stats) are deferred into `scratch` instead.
///
/// # Safety
///
/// Caller must guarantee that (a) `arena`'s pointers are live and sized
/// for every index this message's footprint can touch, and (b) no other
/// thread concurrently touches this message or any channel/node in its
/// footprint — the union-find partition establishes exactly this.
pub(crate) unsafe fn move_one(arena: &MoveArena, rank: u32, id: u32, scratch: &mut ShardScratch) {
    let i = id as usize;
    let m = &mut *arena.msgs.at(i);
    if !*arena.alive.at(i) || m.path.is_empty() {
        return;
    }
    if *arena.stalled.at(i) {
        return;
    }
    let depth = arena.depth;
    let stamp = arena.stamp;
    let mut progressed = false;
    let path = m.path.as_mut_slice();

    // Ejection at the destination (head entry only).
    let head_idx = path.len() - 1;
    let head_entry = path[head_idx];
    let head_node = head_entry.dest;
    if head_node == m.dest && head_entry.occ > 0 {
        let eject = &mut *arena.eject_used.at(head_node.index());
        if *eject != stamp {
            *eject = stamp;
            path[head_idx].occ -= 1;
            m.delivered += 1;
            scratch.delivered += 1;
            progressed = true;
        }
    }

    // Pipeline shifts, head side first; the head stage is peeled off for
    // the header-arrival phase flip, the interior loop is branchless.
    if head_idx >= 1 {
        let cur = path[head_idx];
        let lu = &mut *arena.link_used.at(cur.ch as usize);
        if path[head_idx - 1].occ > 0 && cur.occ < depth && cur.entered < m.length && *lu != stamp {
            *lu = stamp;
            path[head_idx - 1].occ -= 1;
            path[head_idx].occ += 1;
            path[head_idx].entered += 1;
            progressed = true;
            if path[head_idx].entered == 1 {
                *arena.alloc.at(i) = if cur.dest == m.dest {
                    AllocPhase::Moving
                } else {
                    AllocPhase::Contend
                };
            }
            if arena.measuring {
                *arena.arrivals.at(cur.dest.index()) += 1;
            }
        }
    }
    let nl_mask = arena.measuring as u64;
    for j in (1..head_idx).rev() {
        let cur = path[j];
        let prev_occ = path[j - 1].occ;
        let lu = &mut *arena.link_used.at(cur.ch as usize);
        let can = (prev_occ > 0) & (cur.occ < depth) & (cur.entered < m.length) & (*lu != stamp);
        let d = can as u8;
        *lu = if can { stamp } else { *lu };
        path[j - 1].occ = prev_occ - d;
        path[j].occ = cur.occ + d;
        path[j].entered = cur.entered + d as u32;
        progressed |= can;
        *arena.arrivals.at(cur.dest.index()) += d as u64 & nl_mask;
    }

    // Source injection into the first held VC.
    if m.at_source > 0 {
        let first = path[0];
        let lu = &mut *arena.link_used.at(first.ch as usize);
        if first.occ < depth && first.entered < m.length && *lu != stamp {
            *lu = stamp;
            path[0].occ += 1;
            path[0].entered += 1;
            m.at_source -= 1;
            progressed = true;
            if path.len() == 1 && path[0].entered == 1 {
                *arena.alloc.at(i) = if first.dest == m.dest {
                    AllocPhase::Moving
                } else {
                    AllocPhase::Contend
                };
            }
            if m.first_injected.is_none() {
                m.first_injected = Some(arena.cycle);
            }
            if arena.measuring {
                *arena.arrivals.at(first.dest.index()) += 1;
            }
            if m.at_source == 0 {
                // The tail left the source: free the injection port.
                // Unique writer — only the port holder reaches here.
                *arena.injecting.at(m.src.index()) = None;
            }
        }
    }

    if progressed {
        *arena.last_progress.at(i) = arena.cycle;
    } else {
        // Stall detection, identical to the sequential path: the movement
        // predicates read only this message's own state, so a fully
        // immobile message stays immobile until its own state changes.
        let head = path[head_idx];
        let mut movable = head.dest == m.dest && head.occ > 0;
        movable = movable || (m.at_source > 0 && path[0].occ < depth && path[0].entered < m.length);
        if !movable {
            for j in 1..path.len() {
                if path[j - 1].occ > 0 && path[j].occ < depth && path[j].entered < m.length {
                    movable = true;
                    break;
                }
            }
        }
        *arena.stalled.at(i) = !movable;
    }

    // Release drained tail VCs.
    while m.path.len() > 1 {
        let front = m.path[0];
        if front.entered == m.length && front.occ == 0 {
            *arena.slots.at(front.key as usize) = None;
            *arena.occ_mask.at(front.ch as usize) &= !(1 << front.vc);
            scratch.vc_released[front.vc as usize] += 1;
            scratch.freed.push((rank, front.key));
            m.path.pop_front();
        } else {
            break;
        }
    }

    // Completion: release everything here (footprint-local), defer the
    // stats/free-list bookkeeping to the caller's rank-ordered merge.
    if m.is_complete() {
        for e in &m.path {
            *arena.slots.at(e.key as usize) = None;
            *arena.occ_mask.at(e.ch as usize) &= !(1 << e.vc);
            scratch.vc_released[e.vc as usize] += 1;
            scratch.freed.push((rank, e.key));
        }
        m.path.clear();
        *arena.alive.at(i) = false;
        scratch.completions.push((rank, id));
    }
}
