//! Flat wake-list storage: every per-VC-slot wake list lives in one
//! shared arena of singly-linked nodes instead of a `Vec<Vec<u32>>`.
//!
//! The old layout paid one heap allocation per slot that ever had a
//! waiter and scattered the list headers (24 bytes each) across the
//! address space; with `num_channel_slots × num_vcs` slots on a 64×64
//! mesh that is ~400k `Vec` headers of mostly-empty lists. Here a slot is
//! two `u32`s (`head`/`tail` indices into the arena, `NONE` when empty),
//! so the release path's emptiness probe is a dense-array load, and
//! draining a whole list is an O(1) splice onto the free chain.
//!
//! Ordering contract: iteration yields waiters in insertion order — the
//! wake pass re-arms blocked headers in exactly the sequence the old
//! per-slot `Vec` produced, which the byte-identity discipline depends
//! on.

/// Sentinel index for "no node" (list ends, empty slots, empty free
/// chain).
const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct WaiterNode {
    msg: u32,
    next: u32,
}

/// All wake lists of one simulator, arena-backed. See the module docs.
pub(crate) struct WaiterTable {
    /// First arena node of each slot's list (`NONE` = empty).
    head: Vec<u32>,
    /// Last arena node of each slot's list (`NONE` = empty).
    tail: Vec<u32>,
    /// Shared node arena; freed nodes chain through `next`.
    nodes: Vec<WaiterNode>,
    /// Head of the free chain (`NONE` = exhausted; next register grows
    /// the arena).
    free: u32,
}

impl WaiterTable {
    pub fn new() -> Self {
        WaiterTable {
            head: Vec::new(),
            tail: Vec::new(),
            nodes: Vec::new(),
            free: NONE,
        }
    }

    /// (Re)shape for `num_slots` VC slots and drop every list. The arena
    /// keeps its capacity, so a same-shape reset performs no allocation.
    pub fn reset(&mut self, num_slots: usize) {
        self.head.resize(num_slots, NONE);
        self.tail.resize(num_slots, NONE);
        self.clear_all();
    }

    /// Drop every list without reshaping (fault activations invalidate
    /// all registrations at once).
    pub fn clear_all(&mut self) {
        self.head.iter_mut().for_each(|h| *h = NONE);
        self.tail.iter_mut().for_each(|t| *t = NONE);
        self.nodes.clear();
        self.free = NONE;
    }

    #[inline]
    pub fn is_empty(&self, key: u32) -> bool {
        self.head[key as usize] == NONE
    }

    /// Arena nodes currently on some list (0 after `reset`/`clear_all`;
    /// used by the rewind audit).
    pub fn live_nodes(&self) -> usize {
        let mut on_free = 0usize;
        let mut cur = self.free;
        while cur != NONE {
            on_free += 1;
            cur = self.nodes[cur as usize].next;
        }
        self.nodes.len() - on_free
    }

    /// Pre-size the arena for `nodes` concurrent registrations.
    pub fn reserve_nodes(&mut self, nodes: usize) {
        if self.nodes.capacity() < nodes {
            self.nodes.reserve(nodes - self.nodes.len());
        }
    }

    /// Append `id` to `key`'s list unless already registered (same dedup
    /// the per-slot `Vec` did with `contains`, bounding each list by the
    /// number of live contenders).
    pub fn register(&mut self, key: u32, id: u32) {
        let mut cur = self.head[key as usize];
        while cur != NONE {
            let n = self.nodes[cur as usize];
            if n.msg == id {
                return;
            }
            cur = n.next;
        }
        let slot = if self.free != NONE {
            let s = self.free;
            self.free = self.nodes[s as usize].next;
            self.nodes[s as usize] = WaiterNode {
                msg: id,
                next: NONE,
            };
            s
        } else {
            self.nodes.push(WaiterNode {
                msg: id,
                next: NONE,
            });
            (self.nodes.len() - 1) as u32
        };
        let t = self.tail[key as usize];
        if t == NONE {
            self.head[key as usize] = slot;
        } else {
            self.nodes[t as usize].next = slot;
        }
        self.tail[key as usize] = slot;
    }

    /// Iterate `key`'s waiters in insertion order.
    #[inline]
    pub fn iter(&self, key: u32) -> WaiterIter<'_> {
        WaiterIter {
            nodes: &self.nodes,
            cur: self.head[key as usize],
        }
    }

    /// Detach `key`'s whole list, returning its nodes to the free chain
    /// in O(1) (one splice, no per-node walk).
    pub fn release(&mut self, key: u32) {
        let h = self.head[key as usize];
        if h == NONE {
            return;
        }
        let t = self.tail[key as usize];
        self.nodes[t as usize].next = self.free;
        self.free = h;
        self.head[key as usize] = NONE;
        self.tail[key as usize] = NONE;
    }
}

pub(crate) struct WaiterIter<'a> {
    nodes: &'a [WaiterNode],
    cur: u32,
}

impl Iterator for WaiterIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.cur == NONE {
            return None;
        }
        let n = self.nodes[self.cur as usize];
        self.cur = n.next;
        Some(n.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_and_dedup() {
        let mut t = WaiterTable::new();
        t.reset(4);
        t.register(2, 10);
        t.register(2, 11);
        t.register(2, 10); // duplicate: dropped
        t.register(0, 7);
        assert_eq!(t.iter(2).collect::<Vec<_>>(), vec![10, 11]);
        assert_eq!(t.iter(0).collect::<Vec<_>>(), vec![7]);
        assert!(t.is_empty(1));
        assert_eq!(t.live_nodes(), 3);
    }

    #[test]
    fn release_recycles_nodes_without_growing_the_arena() {
        let mut t = WaiterTable::new();
        t.reset(2);
        for id in 0..8 {
            t.register(0, id);
        }
        t.release(0);
        assert!(t.is_empty(0));
        assert_eq!(t.live_nodes(), 0);
        let cap = t.nodes.capacity();
        for id in 20..28 {
            t.register(1, id);
        }
        assert_eq!(t.nodes.capacity(), cap, "recycled nodes must be reused");
        assert_eq!(t.iter(1).collect::<Vec<_>>(), (20..28).collect::<Vec<_>>());
    }

    #[test]
    fn reset_rewinds_every_list() {
        let mut t = WaiterTable::new();
        t.reset(3);
        t.register(0, 1);
        t.register(1, 2);
        t.reset(3);
        for k in 0..3 {
            assert!(t.is_empty(k));
        }
        assert_eq!(t.live_nodes(), 0);
    }
}
