//! A persistent worker pool shared by the engine's intra-run sharding
//! and the experiment fan-out.
//!
//! `parallel_map` used to spawn and join a fresh set of scoped threads per
//! call — hundreds of times per figure sweep. The pool here keeps one set
//! of workers alive for the whole process; each batch posts a type-erased
//! job, the workers chunk-claim item indices off a shared counter, and the
//! calling thread participates as the first worker, so a one-item batch
//! touches no thread machinery at all. Workers own long-lived state (the
//! experiment runner parks a reusable `Simulator` in a thread-local),
//! which is what makes `Simulator::reset` pay off across a sweep. The
//! sharded simulator posts one job per cycle (one item per shard), which
//! is why the pool lives in the engine crate.
//!
//! Batches are serialized: one job runs at a time, and a second caller
//! blocks until the first finishes. Nested calls — a task that itself
//! calls [`WorkerPool::run`], e.g. a sharded simulation running inside a
//! `parallel_map` batch — are detected via a thread-local in-job flag and
//! run inline on the calling thread instead of deadlocking on the job
//! guard.
//!
//! Besides the process-wide [`WorkerPool::global`] instance, callers that
//! need a bounded lifetime — the serving layer most of all, which must
//! join every thread on SIGTERM — can own a pool via [`WorkerPool::new`]
//! and retire it with [`WorkerPool::shutdown`] (or just drop it: `Drop`
//! shuts down too). Shutdown waits for any in-flight batch, wakes every
//! idle worker, and joins them all, so a retired pool provably leaks no
//! threads. A pool that has been shut down still accepts `run` calls; the
//! batch simply executes on the calling thread.
//!
//! ## Panic discipline
//!
//! A panicking task must leave the pool reusable: the next batch on the
//! same process-wide pool must neither deadlock nor run with fewer
//! workers than it enrolled. Three mechanisms guarantee that:
//!
//! - every task invocation is wrapped in `catch_unwind` (first payload
//!   wins, remaining items still run, matching the old scoped-thread
//!   fan-out where sibling workers kept draining);
//! - an enrolled worker checks out through a drop guard, so even an
//!   unwind that escapes `catch_unwind` (a panicking panic payload, a
//!   poisoned internal lock) still signals the caller — otherwise the
//!   caller would wait forever on `exited == enrolled`;
//! - the caller closes enrollment and drains enrolled workers through a
//!   drop guard too, so a caller-side unwind cannot return the stack
//!   frame that the job's lifetime-erased pointers alias while workers
//!   still hold them;
//! - all internal locks are poison-tolerant: a panic while one was held
//!   (which poisons it) must not cascade into killing every worker that
//!   next touches the mutex.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// How many items one `fetch_add` claims. Coarser chunks amortize the
/// shared counter; 8 chunks per worker keeps the tail balanced.
fn chunk_size(total: usize, workers: usize) -> usize {
    (total / (workers * 8).max(1)).max(1)
}

/// Lock a mutex, shrugging off poison: the pool's invariants are
/// re-established by counters and epochs, not by the data a panicking
/// thread may have half-written, so a poisoned lock is still usable.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Whether this thread is currently executing a pool task. A nested
    /// [`WorkerPool::run`] from such a thread runs inline instead of
    /// trying to re-enter the (non-reentrant) job guard.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// A panic payload captured from a worker (first one wins).
type PanicSlot = Mutex<Option<Box<dyn Any + Send>>>;

/// The state of the currently posted job. All references are
/// lifetime-erased pointers into the posting caller's stack frame; they
/// are dereferenced only by enrolled workers, and the caller does not
/// return until every enrolled worker has checked out (under the pool
/// mutex), so the erasure is sound.
#[derive(Clone, Copy)]
struct ActiveJob {
    task: &'static (dyn Fn(usize) + Sync),
    next: &'static AtomicUsize,
    panic: &'static PanicSlot,
    total: usize,
    chunk: usize,
}

struct JobSlot {
    /// Bumped once per posted job so a worker never enrolls twice in the
    /// same batch.
    epoch: u64,
    /// The live job, `None` while idle or once enrollment has closed.
    job: Option<ActiveJob>,
    /// Workers enrolled in the live job.
    enrolled: usize,
    /// How many more workers may enroll (clamped to outstanding chunks).
    open_seats: usize,
    /// Enrolled workers that have finished claiming.
    exited: usize,
    /// Set by [`WorkerPool::shutdown`]: idle workers return instead of
    /// waiting for another job, and no new workers are spawned.
    stop: bool,
}

struct Inner {
    state: Mutex<JobSlot>,
    /// Signals workers that a job was posted (or that shutdown began).
    ready: Condvar,
    /// Signals the caller that a worker checked out.
    done: Condvar,
}

/// A persistent pool: worker threads are spawned lazily up to the largest
/// `threads` any batch has asked for, and live until [`WorkerPool::shutdown`]
/// (or drop) joins them. The process-wide instance from
/// [`WorkerPool::global`] is never dropped and lives for the whole process.
pub struct WorkerPool {
    inner: Arc<Inner>,
    /// Serializes batches (one job at a time).
    job_guard: Mutex<()>,
    /// Join handles of the worker threads spawned so far; drained (and
    /// joined) by `shutdown`.
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Unique thread-name prefix for this pool's workers. Short enough to
    /// survive the kernel's 15-byte `comm` truncation, so tests (and
    /// operators) can attribute a thread to its pool from `/proc`.
    name_prefix: String,
}

/// Closes enrollment and drains enrolled workers when dropped — the
/// caller-side half of the panic discipline. Runs on the normal exit
/// path too (drop order at the end of [`WorkerPool::run`]).
struct JobCloseGuard<'a> {
    inner: &'a Inner,
}

impl Drop for JobCloseGuard<'_> {
    fn drop(&mut self) {
        let mut s = lock_unpoisoned(&self.inner.state);
        s.job = None;
        s.open_seats = 0;
        while s.exited < s.enrolled {
            s = self.inner.done.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Checks a worker out of its enrolled job when dropped, even if the
/// claim loop unwound — the worker-side half of the panic discipline.
struct CheckoutGuard<'a> {
    inner: &'a Inner,
}

impl Drop for CheckoutGuard<'_> {
    fn drop(&mut self) {
        let mut s = lock_unpoisoned(&self.inner.state);
        s.exited += 1;
        drop(s);
        self.inner.done.notify_all();
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// The process-wide pool. It is never shut down: its workers live for
    /// the rest of the process.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// A pool with its own worker set and lifetime. Workers spawn lazily
    /// on the first batch that needs them; [`WorkerPool::shutdown`] (or
    /// dropping the pool) joins every one of them.
    pub fn new() -> WorkerPool {
        static POOL_IDS: AtomicUsize = AtomicUsize::new(0);
        let id = POOL_IDS.fetch_add(1, Ordering::Relaxed);
        WorkerPool {
            inner: Arc::new(Inner {
                state: Mutex::new(JobSlot {
                    epoch: 0,
                    job: None,
                    enrolled: 0,
                    open_seats: 0,
                    exited: 0,
                    stop: false,
                }),
                ready: Condvar::new(),
                done: Condvar::new(),
            }),
            job_guard: Mutex::new(()),
            workers: Mutex::new(Vec::new()),
            name_prefix: format!("wsim{id}-"),
        }
    }

    /// The name prefix of this pool's worker threads (e.g. `wsim0-`);
    /// worker `n` is named `wsim0-w{n}`. Stable for the pool's lifetime,
    /// unique per pool, and short enough to survive `/proc` comm
    /// truncation — the thread-leak regression test keys off it.
    pub fn thread_name_prefix(&self) -> &str {
        &self.name_prefix
    }

    /// Worker threads currently alive (spawned and not yet joined).
    pub fn worker_count(&self) -> usize {
        lock_unpoisoned(&self.workers).len()
    }

    /// Retire the pool: wait for any in-flight batch, tell every idle
    /// worker to exit, and join them all. Returns how many workers were
    /// joined. Idempotent — a second call joins nothing and returns 0.
    /// `run` remains usable afterwards; batches simply execute on the
    /// calling thread.
    pub fn shutdown(&self) -> usize {
        // Serialize against a running batch: once the guard is held, no
        // job is live and every worker is back in (or headed to) the wait
        // loop, where it will observe `stop`.
        let _serial = lock_unpoisoned(&self.job_guard);
        {
            let mut s = lock_unpoisoned(&self.inner.state);
            s.stop = true;
        }
        self.inner.ready.notify_all();
        let handles = std::mem::take(&mut *lock_unpoisoned(&self.workers));
        let joined = handles.len();
        for h in handles {
            let _ = h.join();
        }
        joined
    }

    /// Run `task(i)` for every `i in 0..total` across at most `threads`
    /// participants (the calling thread included) and block until all
    /// items are done. Pool participation is clamped to the number of
    /// outstanding chunks, so small batches enroll few (or zero) workers
    /// instead of waking the whole pool. On a panic inside `task` the
    /// first payload is returned along with how many items had been
    /// claimed; remaining items still run (matching the old scoped-thread
    /// fan-out, where sibling workers kept draining).
    ///
    /// Calling `run` from inside a pool task (nesting) runs the batch
    /// inline on the calling thread — sequential, but correct, where it
    /// used to deadlock on the job guard.
    pub fn run(
        &self,
        threads: usize,
        total: usize,
        task: &(dyn Fn(usize) + Sync),
    ) -> Result<(), (usize, Box<dyn Any + Send>)> {
        if total == 0 {
            return Ok(());
        }
        if IN_POOL_JOB.with(|f| f.get()) {
            return run_inline(total, task);
        }
        let _serial = lock_unpoisoned(&self.job_guard);
        let workers = threads.clamp(1, total);
        let chunk = chunk_size(total, workers);
        let chunks = total.div_ceil(chunk);
        // The caller claims chunks too, so it fills the first seat. A pool
        // that has been shut down enrolls no helpers: the batch runs
        // entirely on the caller.
        let stopped = lock_unpoisoned(&self.inner.state).stop;
        let helpers = if stopped {
            0
        } else {
            (workers - 1).min(chunks - 1)
        };
        self.ensure_workers(helpers);

        let next = AtomicUsize::new(0);
        let panic: PanicSlot = Mutex::new(None);
        // Erase the borrows' lifetimes to park them in the shared slot;
        // see `ActiveJob` for the validity argument.
        let job = ActiveJob {
            task: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    task,
                )
            },
            next: unsafe { std::mem::transmute::<&AtomicUsize, &'static AtomicUsize>(&next) },
            panic: unsafe { std::mem::transmute::<&PanicSlot, &'static PanicSlot>(&panic) },
            total,
            chunk,
        };
        {
            // The close guard is armed before the job is visible to any
            // worker, so every exit from this scope — return or unwind —
            // closes enrollment and drains enrolled workers before the
            // erased stack frame can be given up.
            let _close = (helpers > 0).then_some(JobCloseGuard { inner: &self.inner });
            if helpers > 0 {
                let mut s = lock_unpoisoned(&self.inner.state);
                s.epoch += 1;
                s.job = Some(job);
                s.enrolled = 0;
                s.open_seats = helpers;
                s.exited = 0;
                drop(s);
                self.inner.ready.notify_all();
            }

            IN_POOL_JOB.with(|f| f.set(true));
            let caller = CallerFlagGuard;
            claim_chunks(&job);
            drop(caller);
        }

        let captured = lock_unpoisoned(&panic).take();
        match captured {
            None => Ok(()),
            Some(payload) => Err((next.load(Ordering::Relaxed).min(total), payload)),
        }
    }

    /// Spawn workers until at least `want` exist.
    fn ensure_workers(&self, want: usize) {
        let mut workers = lock_unpoisoned(&self.workers);
        while workers.len() < want {
            let inner = Arc::clone(&self.inner);
            let name = format!("{}w{}", self.name_prefix, workers.len());
            let handle = thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&inner))
                .expect("spawn pool worker");
            workers.push(handle);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Clears the caller's in-job flag on drop (unwind included).
struct CallerFlagGuard;

impl Drop for CallerFlagGuard {
    fn drop(&mut self) {
        IN_POOL_JOB.with(|f| f.set(false));
    }
}

/// The nested-call fallback: run every item on the calling thread with
/// the same per-item panic capture as the pooled path.
fn run_inline(
    total: usize,
    task: &(dyn Fn(usize) + Sync),
) -> Result<(), (usize, Box<dyn Any + Send>)> {
    let mut first_panic = None;
    for i in 0..total {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            first_panic.get_or_insert(payload);
        }
    }
    match first_panic {
        None => Ok(()),
        Some(payload) => Err((total, payload)),
    }
}

/// Claim and run chunks until the shared counter runs dry. Panics are
/// caught per item; the first payload is kept for the caller to re-raise.
fn claim_chunks(job: &ActiveJob) {
    loop {
        let start = job.next.fetch_add(job.chunk, Ordering::Relaxed);
        if start >= job.total {
            break;
        }
        let end = (start + job.chunk).min(job.total);
        for i in start..end {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (job.task)(i))) {
                let mut slot = lock_unpoisoned(job.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut s = lock_unpoisoned(&inner.state);
            loop {
                if s.stop {
                    return;
                }
                if s.epoch != last_epoch && s.open_seats > 0 {
                    if let Some(job) = s.job {
                        last_epoch = s.epoch;
                        s.enrolled += 1;
                        s.open_seats -= 1;
                        break job;
                    }
                }
                s = inner.ready.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        };
        // The checkout guard (not a trailing statement) signals the
        // caller even if the claim loop unwinds; the flag guard keeps
        // nested `run` calls from a task inline.
        let _checkout = CheckoutGuard { inner };
        IN_POOL_JOB.with(|f| f.set(true));
        let _flag = CallerFlagGuard;
        claim_chunks(&job);
    }
}

/// A raw pointer the fan-out may share across threads: each task writes a
/// distinct index (or provably disjoint set of indices), and the pool's
/// completion handshake orders all writes before the caller reads.
pub struct SyncPtr<T>(pub *mut T);

impl<T> SyncPtr<T> {
    /// The element pointer at `i`. Going through a method (rather than
    /// the field) makes closures capture the `Sync` wrapper, not the raw
    /// pointer inside it.
    pub fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        WorkerPool::global()
            .run(8, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .expect("no panics");
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn pool_zero_items_is_a_noop() {
        WorkerPool::global()
            .run(8, 0, &|_| unreachable!("no items to claim"))
            .expect("empty batch");
    }

    #[test]
    fn pool_single_item_runs_on_the_caller() {
        let caller = thread::current().id();
        let ran = AtomicUsize::new(0);
        WorkerPool::global()
            .run(16, 1, &|i| {
                assert_eq!(i, 0);
                // One chunk, one seat: the posting thread takes it.
                assert_eq!(thread::current().id(), caller);
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .expect("no panics");
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_reports_panics_with_claim_count() {
        let err = WorkerPool::global()
            .run(4, 10, &|i| {
                if i == 3 {
                    panic!("boom at {i}");
                }
            })
            .expect_err("task panicked");
        let (claimed, payload) = err;
        assert!((1..=10).contains(&claimed), "claimed {claimed}");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn pool_chunks_cover_uneven_totals() {
        for total in [1usize, 2, 3, 7, 17, 63, 64, 65] {
            let sum = AtomicUsize::new(0);
            WorkerPool::global()
                .run(5, total, &|i| {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                })
                .expect("no panics");
            assert_eq!(sum.load(Ordering::Relaxed), total * (total + 1) / 2);
        }
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        // Regression (enrollment audit): a batch that panics on every
        // item must leave the pool fully functional — the next batch on
        // the same global pool runs every item, across several rounds of
        // alternating panicking and clean batches.
        let pool = WorkerPool::global();
        for round in 0..3 {
            let err = pool
                .run(8, 32, &|i| panic!("round {round} item {i}"))
                .expect_err("every item panics");
            assert_eq!(err.0, 32, "all items still claimed");
            let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
            pool.run(8, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .expect("clean batch after a panicked one");
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} item {i}");
            }
        }
    }

    #[test]
    fn nested_run_executes_inline_instead_of_deadlocking() {
        // A task that posts its own batch (the sharded simulator inside
        // `parallel_map`) must run that inner batch inline rather than
        // deadlock on the job guard.
        let outer_hits: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let inner_hits: Vec<AtomicUsize> = (0..8 * 16).map(|_| AtomicUsize::new(0)).collect();
        WorkerPool::global()
            .run(4, outer_hits.len(), &|i| {
                outer_hits[i].fetch_add(1, Ordering::Relaxed);
                WorkerPool::global()
                    .run(4, 16, &|j| {
                        inner_hits[i * 16 + j].fetch_add(1, Ordering::Relaxed);
                    })
                    .expect("inner batch");
            })
            .expect("outer batch");
        for h in outer_hits.iter().chain(&inner_hits) {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    /// Threads of `pool`, counted by name prefix from `/proc` (Linux; on
    /// other platforms returns `None` and the callers skip the check).
    /// The prefix is unique per pool, so concurrent tests spawning their
    /// own (or the global pool's) threads cannot perturb the count.
    fn named_thread_count(prefix: &str) -> Option<usize> {
        let tasks = std::fs::read_dir("/proc/self/task").ok()?;
        let mut n = 0;
        for t in tasks.flatten() {
            let comm = std::fs::read_to_string(t.path().join("comm")).unwrap_or_default();
            if comm.trim_end().starts_with(prefix) {
                n += 1;
            }
        }
        Some(n)
    }

    #[test]
    fn shutdown_joins_every_worker_and_is_idempotent() {
        let pool = WorkerPool::new();
        let hits: Vec<AtomicUsize> = (0..256).map(|_| AtomicUsize::new(0)).collect();
        pool.run(4, hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
        .expect("no panics");
        let alive = pool.worker_count();
        assert!(alive >= 1, "a 256-item batch on 4 threads spawns helpers");
        assert_eq!(pool.shutdown(), alive, "shutdown joins every worker");
        assert_eq!(pool.shutdown(), 0, "second shutdown has nothing to join");
        assert_eq!(pool.worker_count(), 0);
    }

    #[test]
    fn run_after_shutdown_executes_inline() {
        let pool = WorkerPool::new();
        pool.run(4, 64, &|_| {}).expect("warm batch");
        pool.shutdown();
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        pool.run(8, hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
        .expect("post-shutdown batch");
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
        assert_eq!(pool.worker_count(), 0, "no workers respawn after shutdown");
    }

    #[test]
    fn dropped_pool_leaks_no_threads() {
        // Regression for the serving layer's SIGTERM path: dropping a
        // pool must join its detached workers, not leak them. The check
        // is by thread name (unique prefix per pool) so other tests'
        // threads — the global pool's included — cannot interfere.
        let prefix;
        {
            let pool = WorkerPool::new();
            prefix = pool.thread_name_prefix().to_string();
            pool.run(4, 256, &|_| {}).expect("no panics");
            assert!(pool.worker_count() >= 1);
            if let Some(n) = named_thread_count(&prefix) {
                assert!(n >= 1, "workers visible in /proc while the pool lives");
            }
        }
        // Drop joined the workers, so they are gone *now*, not eventually.
        if let Some(n) = named_thread_count(&prefix) {
            assert_eq!(n, 0, "dropped pool left {n} live worker threads");
        }
    }

    #[test]
    fn nested_run_still_reports_inner_panics() {
        WorkerPool::global()
            .run(2, 2, &|_| {
                WorkerPool::global()
                    .run(2, 4, &|j| {
                        if j == 1 {
                            panic!("inner boom");
                        }
                    })
                    .expect_err("inner panicked");
            })
            .expect("outer itself does not panic");
    }
}
