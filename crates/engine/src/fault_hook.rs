//! The online fault-activation hook.
//!
//! A [`FaultDriver`] is the engine-side seam for mid-run fault injection
//! (`wormsim-chaos` supplies the implementation): once per cycle, before
//! traffic generation, the simulator polls the driver; each returned
//! [`FaultActivation`] atomically swaps the routing context and algorithm
//! for ones built against the extended fault pattern, after which the
//! simulator triages every message — in flight, queued, or backing off —
//! against the set of newly faulty nodes.

use std::sync::Arc;
use wormsim_routing::{RoutingAlgorithm, RoutingContext};

/// A ready-to-install routing state for an extended fault pattern: the new
/// context (same mesh, more faults) and an algorithm instance bound to it.
/// The algorithm must report the same `num_vcs` as the one it replaces —
/// VC-slot ownership carries across the swap.
pub struct FaultActivation {
    /// Context built against the extended pattern (see
    /// `RoutingContext::with_pattern`).
    pub ctx: Arc<RoutingContext>,
    /// Algorithm instance bound to `ctx`. Shared (`Arc`) so the simulator
    /// can install it without reallocating; `Box<dyn RoutingAlgorithm>`
    /// converts with `.into()`.
    pub algo: Arc<dyn RoutingAlgorithm>,
}

/// Produces fault activations as simulation time passes.
///
/// `poll` is called repeatedly at the top of each cycle until it returns
/// `None`, so a driver holding several events due at the same cycle hands
/// them over one at a time (each already folded into the next's pattern).
/// Determinism contract: the returned sequence may depend only on `cycle`
/// and the driver's own (seeded) state — never on wall-clock or ambient
/// randomness — so a fixed seed plus schedule reproduces a run exactly.
pub trait FaultDriver: Send {
    /// The next activation due at or before `cycle`, or `None`.
    fn poll(&mut self, cycle: u64) -> Option<FaultActivation>;
}
