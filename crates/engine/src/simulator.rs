//! The cycle loop: injection, routing/VC allocation, flit movement,
//! watchdog, statistics.

use crate::config::{ConfigError, SimConfig};
use crate::fault_hook::{FaultActivation, FaultDriver};
use crate::message::{AllocPhase, Msg, MsgId, PathEntry};
use crate::pool::{SyncPtr, WorkerPool};
use crate::profile::{Phase, PhaseTimes};
use crate::shard::{move_one, MoveArena, ShardRuntime};
use crate::waiters::WaiterTable;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;
use wormsim_metrics::{
    LatencyStats, NodeLoadStats, RecoveryStats, SimReport, TelemetryCollector, ThroughputStats,
    VcUsageStats, SETTLE_FRACTION,
};
use wormsim_obs::{EventKind, NullSink, Sink, StallDiagnosis, StallMessage, TraceEvent, WaitEdge};
use wormsim_routing::{MessageState, RoutingAlgorithm, RoutingContext};
use wormsim_topology::{ChannelId, NodeId};
use wormsim_traffic::{DestinationSampler, Injector, Workload};

/// The flit-level wormhole simulator. Construct with an algorithm bound to
/// a [`RoutingContext`], a [`Workload`], and a [`SimConfig`]; then either
/// [`Simulator::run`] the full warm-up + measurement schedule or drive it
/// manually with [`Simulator::step`] / [`Simulator::inject_message`].
///
/// The simulator is generic over a trace [`Sink`]. The default
/// [`NullSink`] has `Sink::ENABLED = false`, so every emit site — guarded
/// by `if S::ENABLED` — constant-folds away: an untraced simulator pays
/// nothing for the instrumentation, keeping the zero-allocation steady
/// state and byte-identical reports. Attach a real sink with
/// [`Simulator::with_sink`].
///
/// It is additionally generic over `const PROFILE: bool`, the same
/// compile-away discipline applied to per-phase wall-clock profiling:
/// with the default `PROFILE = false` every `if PROFILE` stamp site
/// constant-folds away; a `Simulator::<NullSink, true>` accumulates a
/// per-phase cycle-time breakdown readable via
/// [`Simulator::phase_times`]. Profiling only observes wall-clock time —
/// simulation behavior and reports are identical either way.
pub struct Simulator<S: Sink = NullSink, const PROFILE: bool = false> {
    cfg: SimConfig,
    algo: Arc<dyn RoutingAlgorithm>,
    ctx: Arc<RoutingContext>,
    workload: Workload,
    num_vcs: u8,

    /// VC ownership: `slots[ch.index() * num_vcs + vc]` = owning message.
    slots: Vec<Option<u32>>,
    /// Per-channel VC occupancy bitmask: bit `vc` of `occ_mask[ch]` is set
    /// iff `slots[ch * num_vcs + vc]` is `Some`. The allocator's candidate
    /// gather works on these masks with `trailing_zeros` loops instead of
    /// probing `slots` per VC (`num_vcs ≤ 32`, enforced at construction).
    occ_mask: Vec<u32>,
    /// Per-channel wake-flag bitmask: bit `vc` of `waiter_mask[ch]` is set
    /// iff `waiters[ch * num_vcs + vc]` is non-empty, so release paths and
    /// the stall scanner skip empty wake lists without loading them.
    waiter_mask: Vec<u32>,
    msgs: Vec<Msg>,
    // --- per-message hot flags, struct-of-arrays, indexed by slab id ---
    // Parallel to `msgs`. The service-order, watchdog, retain, and
    // allocation-dispatch passes each read exactly one of these per
    // message; keeping them in dense arrays makes those passes linear
    // scans over 1–8-byte elements instead of strides through `Msg`
    // records.
    /// Slab liveness flag.
    alive: Vec<bool>,
    /// Header-allocation phase (see [`AllocPhase`]).
    alloc: Vec<AllocPhase>,
    /// Movement-stall skip flag: no flit of the message can move until
    /// its own state changes (see the stall-detection comment in
    /// [`Simulator::move_flits`]).
    stalled: Vec<bool>,
    /// Cycle of the last flit movement (watchdog input).
    last_progress: Vec<u64>,
    free_list: Vec<u32>,
    /// Messages currently in the network or injecting.
    active: Vec<u32>,
    /// Per-node source queues of generated-but-not-started messages.
    queues: Vec<VecDeque<u32>>,
    /// Per-node message currently occupying the injection port.
    injecting: Vec<Option<u32>>,
    injectors: Vec<Injector>,
    sampler: DestinationSampler,
    rng: SmallRng,

    cycle: u64,
    /// Per-cycle link bandwidth budget (one flit per physical channel).
    /// Epoch-stamped: slot `ch` holds `cycle + 1` when the channel moved a
    /// flit this cycle, so no per-cycle clear is needed (0 never matches).
    link_used: Vec<u64>,
    /// Per-cycle ejection budget (one flit per node); epoch-stamped like
    /// `link_used`.
    eject_used: Vec<u64>,
    /// Scratch order buffer, shuffled every cycle.
    order: Vec<u32>,
    /// Scratch buffer for watchdog-expired message ids (reused per cycle).
    stuck_scratch: Vec<u32>,
    /// Scratch buffer for free `(slot key, vc)` allocation candidates
    /// (reused per routing decision).
    eligible_scratch: Vec<(u32, u8)>,
    /// Scratch buffer for the busy candidate slot keys of one routing
    /// decision (the slots whose release must wake the header on failure).
    busy_scratch: Vec<u32>,
    /// Scratch buffer for slot keys freed while moving one message's flits.
    freed_scratch: Vec<u32>,
    /// Per-VC-slot wake lists: blocked headers to re-arbitrate when the
    /// slot frees. Deduplicated on push; stale entries (headers that moved
    /// on, died, or were recycled) are dropped when the list drains.
    /// Arena-backed flat storage (see [`WaiterTable`]) — one shared node
    /// pool instead of a `Vec` per slot.
    waiters: WaiterTable,
    /// `active` mirrored in `(created, id)` order. Maintained incrementally
    /// (binary insert on promotion, mirrored removals) and only under
    /// [`crate::config::Arbitration::OldestFirst`], replacing the full
    /// re-sort the service-order phase used to do every cycle.
    ordered: Vec<u32>,
    /// Cached [`RoutingAlgorithm::recheck_wait`] of the current algorithm
    /// (refreshed when a fault activation swaps the algorithm).
    recheck_wait: Option<u32>,

    latency: LatencyStats,
    network_latency: LatencyStats,
    throughput: ThroughputStats,
    vc_usage: VcUsageStats,
    node_load: NodeLoadStats,
    recoveries: u64,
    /// Hops taken on the fault-tolerance overlay VCs (ring detour hops).
    ring_hops: u64,
    /// Misroutes summed over delivered messages.
    total_misroutes: u64,

    /// Online fault source, polled at the top of every cycle.
    fault_driver: Option<Box<dyn FaultDriver>>,
    /// Recovery statistics; `Some` once a fault driver is installed.
    recovery: Option<RecoveryStats>,
    /// Chaos-aborted messages waiting out their backoff:
    /// `(ready cycle, msg id)`, insertion (= triage) order.
    backoff: Vec<(u64, u32)>,
    /// Fault events whose delivered rate has not yet settled:
    /// `(event index, activation cycle, pre-fault rate)`.
    pending_settle: Vec<(usize, u64, f64)>,
    /// Sliding per-cycle delivered-flit counts (most recent at the back);
    /// maintained only while a fault driver is installed.
    delivered_window: VecDeque<u32>,
    /// Running sum of `delivered_window`.
    window_sum: u64,
    /// Flits ejected this cycle (network-wide), feeding the window.
    delivered_this_cycle: u32,

    /// Trace-event destination; [`NullSink`] by default (instrumentation
    /// compiled out).
    sink: S,
    /// Per-window telemetry accumulator; `Some` iff
    /// `cfg.telemetry_window > 0`.
    telemetry: Option<TelemetryCollector>,
    /// The most recent watchdog stall diagnosis (replaces the old raw
    /// `eprintln!` dump; see [`Simulator::last_stall`]).
    last_stall: Option<StallDiagnosis>,
    /// Messages promoted queue → injection port this cycle.
    injected_this_cycle: u64,
    /// Blocked-header wait cycles accounted this cycle.
    blocked_this_cycle: u64,
    /// Messages fully delivered this cycle.
    completed_this_cycle: u64,
    /// Sharded-movement state (footprint union-find, per-shard work lists
    /// and deferred-effect scratches); `Some` iff `cfg.shards > 1`. `None`
    /// keeps the sequential phase-5 loop — and its zero-allocation steady
    /// state — exactly as before.
    shard_rt: Option<Box<ShardRuntime>>,
    /// Test/bench hook: run the pooled movement path even on a
    /// single-core host, where `shards > 1` otherwise takes the inline
    /// sequential fast path (see [`Simulator::move_flits_sharded`]).
    force_parallel: bool,
    /// Per-phase wall-clock accumulator; only written when `PROFILE`
    /// (every stamp site is `if PROFILE`-guarded and compiles away in
    /// the default instantiation).
    phase_times: PhaseTimes,
}

impl Simulator {
    /// Build an untraced simulator. The algorithm must be bound to the
    /// same context. Accepts `Box<dyn RoutingAlgorithm>` (as built by
    /// `build_algorithm`) or an already-shared `Arc<dyn RoutingAlgorithm>`.
    pub fn new(
        algo: impl Into<Arc<dyn RoutingAlgorithm>>,
        ctx: Arc<RoutingContext>,
        workload: Workload,
        cfg: SimConfig,
    ) -> Self {
        Simulator::with_sink(algo, ctx, workload, cfg, NullSink)
    }

    /// Like [`Simulator::new`], but reports an unhonorable configuration
    /// as a [`ConfigError`] instead of panicking.
    pub fn try_new(
        algo: impl Into<Arc<dyn RoutingAlgorithm>>,
        ctx: Arc<RoutingContext>,
        workload: Workload,
        cfg: SimConfig,
    ) -> Result<Self, ConfigError> {
        Simulator::try_with_sink(algo, ctx, workload, cfg, NullSink)
    }
}

impl<S: Sink> Simulator<S> {
    /// Build a simulator emitting [`TraceEvent`]s to `sink`. Behavior is
    /// byte-identical to [`Simulator::new`] — sinks observe, they never
    /// perturb (no RNG draws happen on the emit paths).
    ///
    /// Pinned to the default `PROFILE = false` so the sink type keeps
    /// inferring at call sites; use [`Simulator::try_build`] with
    /// explicit generics for a phase-profiled instantiation.
    pub fn with_sink(
        algo: impl Into<Arc<dyn RoutingAlgorithm>>,
        ctx: Arc<RoutingContext>,
        workload: Workload,
        cfg: SimConfig,
        sink: S,
    ) -> Self {
        Simulator::try_with_sink(algo, ctx, workload, cfg, sink)
            .unwrap_or_else(|e| panic!("invalid simulator configuration: {e}"))
    }

    /// Like [`Simulator::with_sink`], but reports an unhonorable
    /// configuration (too many VCs for the occupancy bitmasks, a zero
    /// shard count) as a [`ConfigError`] instead of panicking.
    pub fn try_with_sink(
        algo: impl Into<Arc<dyn RoutingAlgorithm>>,
        ctx: Arc<RoutingContext>,
        workload: Workload,
        cfg: SimConfig,
        sink: S,
    ) -> Result<Self, ConfigError> {
        Simulator::try_build(algo, ctx, workload, cfg, sink)
    }
}

impl<S: Sink, const PROFILE: bool> Simulator<S, PROFILE> {
    /// Construct with every generic explicit — the constructor behind
    /// [`Simulator::new`] / [`Simulator::with_sink`], exposed so
    /// phase-profiled instantiations can be built:
    /// `Simulator::<NullSink, true>::try_build(..)`. (Const-parameter
    /// defaults do not participate in expression inference, so the
    /// inferring constructors are pinned to `PROFILE = false` instead.)
    pub fn try_build(
        algo: impl Into<Arc<dyn RoutingAlgorithm>>,
        ctx: Arc<RoutingContext>,
        workload: Workload,
        cfg: SimConfig,
        sink: S,
    ) -> Result<Self, ConfigError> {
        let algo = algo.into();
        let mesh = ctx.mesh();
        let num_nodes = mesh.num_nodes();
        let num_vcs = algo.num_vcs();
        if num_vcs as usize > 32 {
            return Err(ConfigError::TooManyVcs {
                requested: num_vcs,
                limit: 32,
            });
        }
        if cfg.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        let pattern = ctx.pattern();
        let healthy: Vec<NodeId> = pattern.healthy_nodes(mesh).collect();
        let num_healthy = healthy.len();
        let injectors = mesh
            .nodes()
            .map(|n| {
                if pattern.is_faulty(n) {
                    Injector::new(0.0)
                } else {
                    Injector::new(workload.rate)
                }
            })
            .collect();
        let sampler = DestinationSampler::new(workload.pattern, mesh, healthy);
        let channels = mesh.channels().count();
        let recheck_wait = algo.recheck_wait();
        let num_slots = mesh.num_channel_slots() * num_vcs as usize;
        let shard_rt = (cfg.shards > 1).then(|| ShardRuntime::new(mesh, cfg.shards, num_vcs));
        Ok(Simulator {
            algo,
            workload,
            num_vcs,
            slots: vec![None; mesh.num_channel_slots() * num_vcs as usize],
            occ_mask: vec![0; mesh.num_channel_slots()],
            waiter_mask: vec![0; mesh.num_channel_slots()],
            msgs: Vec::new(),
            alive: Vec::new(),
            alloc: Vec::new(),
            stalled: Vec::new(),
            last_progress: Vec::new(),
            free_list: Vec::new(),
            active: Vec::new(),
            queues: vec![VecDeque::new(); num_nodes],
            injecting: vec![None; num_nodes],
            injectors,
            sampler,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cycle: 0,
            link_used: vec![0; mesh.num_channel_slots()],
            eject_used: vec![0; num_nodes],
            order: Vec::new(),
            stuck_scratch: Vec::new(),
            eligible_scratch: Vec::new(),
            busy_scratch: Vec::new(),
            freed_scratch: Vec::new(),
            waiters: {
                let mut w = WaiterTable::new();
                w.reset(num_slots);
                w
            },
            ordered: Vec::new(),
            recheck_wait,
            latency: LatencyStats::new(),
            network_latency: LatencyStats::new(),
            throughput: ThroughputStats::new(num_healthy),
            vc_usage: VcUsageStats::new(num_vcs, channels),
            node_load: NodeLoadStats::new(num_nodes),
            recoveries: 0,
            ring_hops: 0,
            total_misroutes: 0,
            fault_driver: None,
            recovery: None,
            backoff: Vec::new(),
            pending_settle: Vec::new(),
            delivered_window: VecDeque::new(),
            window_sum: 0,
            delivered_this_cycle: 0,
            sink,
            telemetry: if cfg.telemetry_window > 0 {
                Some(TelemetryCollector::new(cfg.telemetry_window))
            } else {
                None
            },
            last_stall: None,
            injected_this_cycle: 0,
            blocked_this_cycle: 0,
            completed_this_cycle: 0,
            shard_rt,
            force_parallel: false,
            phase_times: PhaseTimes::new(),
            cfg,
            ctx,
        })
    }

    /// Rewind this simulator for a fresh run with a (possibly different)
    /// algorithm, context, workload, and schedule, reusing every
    /// population-dependent allocation: the message slab (per-message
    /// `PathBuf` capacities included), source queues, scratch buffers,
    /// wake lists, and statistics vectors. Once a first run has sized
    /// those structures, a same-shape `reset` + run performs no heap
    /// allocation (asserted by `bench_engine`'s counting allocator).
    ///
    /// Determinism: the run after a `reset` is byte-identical to one on a
    /// freshly constructed simulator with the same arguments. The one
    /// subtle requirement is message-id order — ids are slab indices and
    /// act as tie-breakers in oldest-first arbitration — so the free list
    /// is rebuilt in descending order, making recycled ids pop in creation
    /// order `0, 1, 2, …` exactly as a fresh slab would assign them.
    pub fn reset(
        &mut self,
        algo: impl Into<Arc<dyn RoutingAlgorithm>>,
        ctx: Arc<RoutingContext>,
        workload: Workload,
        cfg: SimConfig,
    ) {
        self.try_reset(algo, ctx, workload, cfg)
            .unwrap_or_else(|e| panic!("invalid simulator configuration: {e}"))
    }

    /// Like [`Simulator::reset`], but reports an unhonorable configuration
    /// as a [`ConfigError`] instead of panicking. On `Err` the simulator
    /// is untouched and still usable with its previous configuration.
    pub fn try_reset(
        &mut self,
        algo: impl Into<Arc<dyn RoutingAlgorithm>>,
        ctx: Arc<RoutingContext>,
        workload: Workload,
        cfg: SimConfig,
    ) -> Result<(), ConfigError> {
        let algo = algo.into();
        let num_vcs = algo.num_vcs();
        if num_vcs as usize > 32 {
            return Err(ConfigError::TooManyVcs {
                requested: num_vcs,
                limit: 32,
            });
        }
        if cfg.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        self.algo = algo;
        self.ctx = ctx;
        self.workload = workload;
        self.cfg = cfg;
        self.num_vcs = num_vcs;
        let mesh = self.ctx.mesh().clone();
        let num_nodes = mesh.num_nodes();
        let num_channels = mesh.num_channel_slots();
        let num_slots = num_channels * num_vcs as usize;

        self.slots.resize(num_slots, None);
        self.slots.iter_mut().for_each(|s| *s = None);
        self.occ_mask.resize(num_channels, 0);
        self.occ_mask.iter_mut().for_each(|m| *m = 0);
        self.waiter_mask.resize(num_channels, 0);
        self.waiter_mask.iter_mut().for_each(|m| *m = 0);
        self.waiters.reset(num_slots);
        self.link_used.resize(num_channels, 0);
        self.link_used.iter_mut().for_each(|u| *u = 0);
        self.eject_used.resize(num_nodes, 0);
        self.eject_used.iter_mut().for_each(|u| *u = 0);

        // Park the whole slab (path capacities survive) and rebuild the
        // free list descending so pops recycle ids in ascending order.
        for m in &mut self.msgs {
            m.path.clear();
        }
        let n = self.msgs.len();
        self.alive.resize(n, false);
        self.alive.iter_mut().for_each(|a| *a = false);
        self.alloc.resize(n, AllocPhase::Contend);
        self.alloc.iter_mut().for_each(|a| *a = AllocPhase::Contend);
        self.stalled.resize(n, false);
        self.stalled.iter_mut().for_each(|s| *s = false);
        self.last_progress.resize(n, 0);
        self.last_progress.iter_mut().for_each(|p| *p = 0);
        self.free_list.clear();
        self.free_list.extend((0..self.msgs.len() as u32).rev());
        self.active.clear();
        self.ordered.clear();
        self.order.clear();
        self.stuck_scratch.clear();
        self.eligible_scratch.clear();
        self.busy_scratch.clear();
        self.freed_scratch.clear();

        self.queues.resize_with(num_nodes, VecDeque::new);
        for q in &mut self.queues {
            q.clear();
        }
        self.injecting.resize(num_nodes, None);
        self.injecting.iter_mut().for_each(|p| *p = None);
        let pattern = self.ctx.pattern();
        let rate = self.workload.rate;
        self.injectors.clear();
        self.injectors.extend(mesh.nodes().map(|n| {
            if pattern.is_faulty(n) {
                Injector::new(0.0)
            } else {
                Injector::new(rate)
            }
        }));
        self.sampler
            .reset(self.workload.pattern, &mesh, pattern.healthy_nodes(&mesh));
        let num_healthy = self.sampler.healthy().len();
        self.rng = SmallRng::seed_from_u64(self.cfg.seed);
        self.cycle = 0;
        self.recheck_wait = self.algo.recheck_wait();

        self.latency.reset();
        self.network_latency.reset();
        self.throughput.reset(num_healthy);
        self.vc_usage.reset(num_vcs, mesh.channels().count());
        self.node_load.reset(num_nodes);
        self.recoveries = 0;
        self.ring_hops = 0;
        self.total_misroutes = 0;
        self.fault_driver = None;
        self.recovery = None;
        self.backoff.clear();
        self.pending_settle.clear();
        self.delivered_window.clear();
        self.window_sum = 0;
        self.delivered_this_cycle = 0;
        self.telemetry = if self.cfg.telemetry_window > 0 {
            Some(TelemetryCollector::new(self.cfg.telemetry_window))
        } else {
            None
        };
        self.last_stall = None;
        self.injected_this_cycle = 0;
        self.blocked_this_cycle = 0;
        self.completed_this_cycle = 0;
        self.phase_times.clear();
        if self.cfg.shards > 1 {
            match self.shard_rt.as_deref_mut() {
                Some(rt) => rt.reconfigure(&mesh, self.cfg.shards, num_vcs),
                None => self.shard_rt = Some(ShardRuntime::new(&mesh, self.cfg.shards, num_vcs)),
            }
        } else {
            self.shard_rt = None;
        }
        Ok(())
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the attached trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the simulator, returning the sink (to finish writers,
    /// export traces, inspect recorded events).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The per-phase wall-clock breakdown accumulated so far. All zeros
    /// unless the simulator was instantiated with `PROFILE = true`
    /// (e.g. `Simulator::<NullSink, true>::new(..)`); cleared by
    /// [`Simulator::reset`].
    pub fn phase_times(&self) -> &PhaseTimes {
        &self.phase_times
    }

    /// Stamp the end of a profiled phase: charge the span since the last
    /// mark to `phase` and advance the mark. Compiles to nothing when
    /// `PROFILE` is false (the mark stays `None` and is dead code).
    #[inline(always)]
    fn phase_lap(&mut self, mark: &mut Option<std::time::Instant>, phase: Phase) {
        if PROFILE {
            let now = std::time::Instant::now();
            if let Some(prev) = mark.replace(now) {
                self.phase_times.add(phase, now.duration_since(prev));
            }
        }
    }

    /// The most recent watchdog stall diagnosis. Structured replacement
    /// for the old stderr-only dump; with `cfg.debug_watchdog` the same
    /// diagnosis is also printed. Captured only when a real sink is
    /// attached or `debug_watchdog` is set — building the diagnosis
    /// allocates, which the default `NullSink` fast path must not
    /// ([`diagnose_stall`](Simulator::diagnose_stall) computes one on
    /// demand regardless).
    pub fn last_stall(&self) -> Option<&StallDiagnosis> {
        self.last_stall.as_ref()
    }

    /// Install an online fault source. From the next [`Simulator::step`] on,
    /// the driver is polled at the top of every cycle and its activations
    /// are applied before traffic generation; [`RecoveryStats`] collection
    /// starts now (the report's `recovery` field becomes `Some`).
    pub fn install_fault_driver(&mut self, driver: Box<dyn FaultDriver>) {
        self.fault_driver = Some(driver);
        if self.recovery.is_none() {
            self.recovery = Some(RecoveryStats::new(self.cfg.settle_window));
        }
    }

    /// Recovery statistics collected so far (`None` without a fault driver).
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of messages currently active (injecting or in-network).
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Messages waiting in source queues.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Total watchdog recoveries so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Messages delivered so far (measurement window only).
    pub fn delivered(&self) -> u64 {
        self.throughput.messages_delivered()
    }

    /// Whether statistics are currently being collected.
    fn measuring(&self) -> bool {
        self.cycle >= self.cfg.warmup_cycles
            && self.cycle < self.cfg.warmup_cycles + self.cfg.measure_cycles
    }

    /// Manually enqueue a message (used by tests and examples; bypasses the
    /// stochastic injectors). Returns its handle.
    ///
    /// ```
    /// # use std::sync::Arc;
    /// # use wormsim_topology::Mesh;
    /// # use wormsim_fault::FaultPattern;
    /// # use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
    /// # use wormsim_traffic::Workload;
    /// # use wormsim_engine::{SimConfig, Simulator};
    /// let mesh = Mesh::square(10);
    /// let ctx = Arc::new(RoutingContext::new(mesh.clone(), FaultPattern::fault_free(&mesh)));
    /// let algo = build_algorithm(AlgorithmKind::NHop, ctx.clone(), VcConfig::paper());
    /// let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(0.0), SimConfig::quick());
    /// let id = sim.inject_message(mesh.node(0, 0), mesh.node(9, 9));
    /// assert!(sim.run_until_drained(10_000));
    /// assert!(sim.is_delivered(id));
    /// ```
    pub fn inject_message(&mut self, src: NodeId, dest: NodeId) -> MsgId {
        assert!(!self.ctx.pattern().is_faulty(src), "source is faulty");
        assert!(!self.ctx.pattern().is_faulty(dest), "destination is faulty");
        assert_ne!(src, dest, "source equals destination");
        let id = self.alloc_msg(src, dest);
        self.queues[src.index()].push_back(id.0);
        id
    }

    /// Whether a manually injected message has been fully delivered.
    pub fn is_delivered(&self, id: MsgId) -> bool {
        !self.alive[id.0 as usize]
    }

    /// Pre-size every population-dependent structure so a run creating up
    /// to `messages` messages performs no heap allocation afterwards. The
    /// slab is filled with dead, capacity-reserved messages parked on the
    /// free list (creation then always recycles), and source queues,
    /// scratch buffers, wake lists, and the shard runtime reserve for the
    /// same population.
    ///
    /// Per-message path capacity is derived from the *actual* mesh shape:
    /// a traversal pushes one entry per hop and the grow-only buffer
    /// reclaims only when the path empties, so the bound is the longest
    /// simple detour a routing algorithm takes — covered by one full
    /// perimeter, `2 × (width + height)` hops. (This used to be a caller
    /// constant shaped for the 10×10 paper mesh; a 64×64 run then spent
    /// its first cycles growing every path buffer.)
    ///
    /// Queue reservations assume roughly uniform source selection (4× the
    /// per-node mean plus slack); a pathological workload funneling most
    /// creations through one source could still grow its queue. Intended
    /// for benchmarks that assert an allocation-free measurement window;
    /// simulation behavior is completely unaffected.
    pub fn prewarm(&mut self, messages: usize) {
        let mesh = self.ctx.mesh();
        let max_path = 2 * (mesh.width() as usize + mesh.height() as usize);
        let have = self.msgs.len();
        if messages > have {
            self.msgs.reserve(messages - have);
            self.free_list.reserve(messages);
            for idx in have..messages {
                let state = MessageState::new(NodeId(0), NodeId(0));
                let mut m = Msg::new(NodeId(0), NodeId(0), 0, 0, state);
                m.path.reserve(max_path);
                self.msgs.push(m);
                self.free_list.push(idx as u32);
            }
        }
        let n = self.msgs.len();
        self.alive.resize(n, false);
        self.alloc.resize(n, AllocPhase::Contend);
        self.stalled.resize(n, false);
        self.last_progress.resize(n, 0);
        let num_nodes = self.queues.len();
        let per_node = 4 * messages / num_nodes.max(1) + 64;
        for q in &mut self.queues {
            q.reserve(per_node);
        }
        // Concurrently active messages each hold a VC slot (plus one
        // possible queue promotion per node per cycle).
        let max_active = self.slots.len() + num_nodes;
        self.active.reserve(max_active);
        self.order.reserve(max_active);
        self.ordered.reserve(max_active);
        self.stuck_scratch.reserve(max_active);
        self.backoff.reserve(max_active);
        // Each blocked header registers on at most one routing decision's
        // busy candidates at a time.
        let per_route = self.num_vcs as usize * 8;
        self.waiters
            .reserve_nodes(max_active.min(per_route * num_nodes));
        self.eligible_scratch.reserve(per_route);
        self.busy_scratch.reserve(per_route);
        self.freed_scratch.reserve(max_path);
        if let Some(rt) = self.shard_rt.as_deref_mut() {
            rt.prewarm(max_active);
        }
    }

    fn alloc_msg(&mut self, src: NodeId, dest: NodeId) -> MsgId {
        let state = self.algo.init_message(src, dest);
        let length = self.workload.message_length;
        let idx = if let Some(idx) = self.free_list.pop() {
            // Reset in place: keeps the slot's path capacity, so slab
            // reuse allocates nothing.
            self.msgs[idx as usize].reset(src, dest, length, self.cycle, state);
            idx
        } else {
            self.msgs
                .push(Msg::new(src, dest, length, self.cycle, state));
            self.alive.push(false);
            self.alloc.push(AllocPhase::Contend);
            self.stalled.push(false);
            self.last_progress.push(0);
            self.msgs.len() as u32 - 1
        };
        let i = idx as usize;
        self.alive[i] = true;
        self.alloc[i] = AllocPhase::Contend;
        self.stalled[i] = false;
        self.last_progress[i] = self.cycle;
        MsgId(idx)
    }

    #[inline]
    fn key_channel(&self, key: u32) -> ChannelId {
        ChannelId(key / self.num_vcs as u32)
    }

    #[inline]
    fn key_vc(&self, key: u32) -> u8 {
        (key % self.num_vcs as u32) as u8
    }

    /// The node where a message's header currently resides.
    fn head_node(&self, m: &Msg) -> NodeId {
        match m.path.back() {
            None => m.src,
            Some(e) => e.dest,
        }
    }

    /// Run the configured warm-up + measurement schedule and produce the
    /// report.
    pub fn run(&mut self) -> SimReport {
        for _ in 0..self.cfg.total_cycles() {
            self.step();
        }
        self.report()
    }

    /// Run until all queued/active messages are delivered or `max_cycles`
    /// elapse; returns true when the network fully drained. Traffic
    /// injectors are not polled (rate 0 workloads / manual injection).
    #[must_use = "an ignored `false` means stats describe an undrained network"]
    pub fn run_until_drained(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.drained() {
                return true;
            }
            self.step();
        }
        self.drained()
    }

    /// No message active, queued, or waiting out a post-abort backoff.
    fn drained(&self) -> bool {
        self.active.is_empty() && self.queued() == 0 && self.backoff.is_empty()
    }

    /// Build the report for everything measured so far.
    pub fn report(&self) -> SimReport {
        let ctx = &self.ctx;
        let mesh = ctx.mesh();
        let mut throughput = self.throughput.clone();
        throughput.set_cycles(
            self.cfg
                .measure_cycles
                .min(
                    self.cycle
                        .saturating_sub(self.cfg.warmup_cycles.min(self.cycle)),
                )
                .max(1),
        );
        let ring_load = if ctx.pattern().is_fault_free() {
            None
        } else {
            let on_ring: Vec<bool> = mesh.nodes().map(|n| ctx.rings().on_any_ring(n)).collect();
            let usable: Vec<bool> = mesh.nodes().map(|n| !ctx.pattern().is_faulty(n)).collect();
            Some(self.node_load.ring_summary(&on_ring, &usable))
        };
        SimReport {
            algorithm: self.algo.name().to_string(),
            offered_rate: self.workload.rate,
            message_length: self.workload.message_length,
            seed_faults: ctx.pattern().num_seed_faulty(),
            total_faults: ctx.pattern().num_faulty(),
            measured_cycles: self.cfg.measure_cycles,
            latency: self.latency.clone(),
            network_latency: self.network_latency.clone(),
            throughput,
            vc_usage: self.vc_usage.clone(),
            node_load: self.node_load.clone(),
            recoveries: self.recoveries,
            ring_hops: self.ring_hops,
            total_misroutes: self.total_misroutes,
            in_flight_at_end: self.active.len() as u64,
            ring_load,
            recovery: self.recovery.clone(),
            telemetry: self.telemetry.as_ref().map(|t| t.snapshot()),
        }
    }

    /// Audit the simulator's internal consistency; panics on violation.
    /// Exercised by the engine's invariant tests after every cycle.
    ///
    /// Checked invariants:
    /// 1. VC-slot ownership and message path entries form a bijection.
    /// 2. Per-entry flit accounting: `occ ≤ buffer depth`,
    ///    `entered ≤ length`, and `entered[j] = occ[j] + entered[j+1]`
    ///    (the head entry drains into `delivered`).
    /// 3. Per-message conservation: source flits + buffered flits +
    ///    delivered flits = message length.
    /// 4. Injection bookkeeping: a message with flits still at the source
    ///    and a non-empty path owns its node's injection port.
    /// 5. Chaos bookkeeping: a message waiting out a backoff holds no VC
    ///    and has every flit back at its (healthy) source; no owned VC
    ///    slot touches a faulty node — aborts must not leak freed VCs.
    pub fn check_invariants(&self) {
        let depth = self.cfg.buffer_depth as u32;
        // 1. Ownership bijection.
        let mut owned = std::collections::HashMap::new();
        for (k, owner) in self.slots.iter().enumerate() {
            if let Some(id) = owner {
                owned.insert(k as u32, *id);
            }
        }
        let mut seen = 0usize;
        for &id in &self.active {
            let m = &self.msgs[id as usize];
            if !self.alive[id as usize] {
                continue;
            }
            for e in &m.path {
                assert_eq!(
                    owned.get(&e.key),
                    Some(&id),
                    "path entry not owned by its message"
                );
                assert_eq!(
                    (e.ch, e.vc),
                    (self.key_channel(e.key).0, self.key_vc(e.key)),
                    "path entry's cached channel/vc out of sync with its key"
                );
                assert_eq!(
                    Some(e.dest),
                    self.ctx.mesh().channel_dest(ChannelId(e.ch)),
                    "path entry's cached downstream node out of sync"
                );
                seen += 1;
            }
            // 2. Flit accounting along the path.
            let mut downstream_entered = m.delivered;
            for e in m.path.iter().rev() {
                assert!(e.occ as u32 <= depth, "buffer overflow");
                assert!(e.entered <= m.length, "entered beyond length");
                assert_eq!(
                    e.entered,
                    e.occ as u32 + downstream_entered,
                    "flit accounting broken"
                );
                downstream_entered = e.entered;
            }
            // 3. Conservation.
            let buffered: u32 = m.path.iter().map(|e| e.occ as u32).sum();
            let at_head_of_chain = m.path.front().map(|e| e.entered).unwrap_or(m.delivered);
            assert_eq!(
                m.at_source + at_head_of_chain,
                m.length,
                "flits lost between source and network"
            );
            assert_eq!(
                m.at_source + buffered + m.delivered,
                m.length,
                "flit conservation violated"
            );
            // 4. Injection port bookkeeping.
            if m.at_source > 0 && !m.path.is_empty() {
                assert_eq!(
                    self.injecting[m.src.index()],
                    Some(id),
                    "injecting message without the port"
                );
            }
        }
        assert_eq!(seen, owned.len(), "orphaned VC slot ownership");
        // 5. Chaos bookkeeping.
        let pattern = self.ctx.pattern();
        let mesh = self.ctx.mesh();
        for &(_, id) in &self.backoff {
            let m = &self.msgs[id as usize];
            assert!(self.alive[id as usize], "dead message in backoff");
            assert!(m.path.is_empty(), "backoff message still holds VCs");
            assert_eq!(
                m.at_source, m.length,
                "backoff message left flits in the network"
            );
            assert!(
                !pattern.is_faulty(m.src),
                "backoff message at a dead source"
            );
            assert!(!self.active.contains(&id), "backoff message still active");
        }
        for (k, owner) in self.slots.iter().enumerate() {
            if owner.is_some() {
                let ch = self.key_channel(k as u32);
                assert!(
                    !pattern.is_faulty(mesh.channel_src(ch)),
                    "owned VC slot on a channel leaving a faulty node"
                );
                let dest = mesh.channel_dest(ch).expect("owned channel exists");
                assert!(
                    !pattern.is_faulty(dest),
                    "owned VC slot on a channel entering a faulty node"
                );
            }
        }
        // 6. Allocation-phase soundness: a routable header that is not at
        // its destination must be contending or blocked — a `Moving` mark
        // here would make the allocator skip it forever (blocked headers
        // additionally rely on wake lists / recheck / watchdog to wake).
        for &id in &self.active {
            let m = &self.msgs[id as usize];
            if !self.alive[id as usize] {
                continue;
            }
            let routable = m.path.is_empty() || m.header_at_head();
            if routable && self.head_node(m) != m.dest {
                assert_ne!(
                    self.alloc[id as usize],
                    AllocPhase::Moving,
                    "routable header stuck in the Moving phase"
                );
            }
        }
        // 7. Bitmask mirrors: occupancy bits track `slots`, wake flags
        // track wake-list non-emptiness, bit for bit.
        for ch in 0..self.occ_mask.len() {
            let mut expect_occ = 0u32;
            let mut expect_wait = 0u32;
            for vc in 0..self.num_vcs as u32 {
                let key = (ch as u32 * self.num_vcs as u32 + vc) as usize;
                if self.slots[key].is_some() {
                    expect_occ |= 1 << vc;
                }
                if !self.waiters.is_empty(key as u32) {
                    expect_wait |= 1 << vc;
                }
            }
            assert_eq!(
                self.occ_mask[ch], expect_occ,
                "occupancy bitmask out of sync with slots on channel {ch}"
            );
            assert_eq!(
                self.waiter_mask[ch], expect_wait,
                "wake-flag bitmask out of sync with wake lists on channel {ch}"
            );
        }
    }

    /// Advance the simulation by one cycle.
    pub fn step(&mut self) {
        let measuring = self.measuring();
        // Phase-profiling mark; stays `None` (and every `phase_lap`
        // compiles away) unless `PROFILE` is set.
        let mut mark = if PROFILE {
            Some(std::time::Instant::now())
        } else {
            None
        };

        // 0. Online fault activation (before traffic so this cycle already
        // generates/routes against the new pattern).
        if self.fault_driver.is_some() {
            self.poll_fault_driver();
        }

        // 1. Stochastic message generation (open-loop Poisson sources).
        if self.workload.rate > 0.0 {
            self.generate_traffic(measuring);
        }

        // 1b. Re-enqueue chaos-aborted messages whose backoff expired; they
        // compete for the injection port like freshly generated traffic.
        if !self.backoff.is_empty() {
            let cycle = self.cycle;
            let queues = &mut self.queues;
            let msgs = &self.msgs;
            self.backoff.retain(|&(ready, id)| {
                if ready <= cycle {
                    queues[msgs[id as usize].src.index()].push_back(id);
                    false
                } else {
                    true
                }
            });
        }

        // 2. Promote queued messages onto free injection ports.
        let oldest_first = matches!(
            self.cfg.arbitration,
            crate::config::Arbitration::OldestFirst
        );
        for node in 0..self.queues.len() {
            if self.injecting[node].is_none() {
                if let Some(id) = self.queues[node].pop_front() {
                    self.injecting[node] = Some(id);
                    self.active.push(id);
                    self.injected_this_cycle += 1;
                    if S::ENABLED {
                        self.sink.record(
                            TraceEvent::new(self.cycle, EventKind::Inject, id).at(node as u16),
                        );
                    }
                    if oldest_first {
                        self.ordered_insert(id);
                    }
                }
            }
        }

        self.phase_lap(&mut mark, Phase::Inject);

        // 3. Service order: random (the paper's conflict resolution) or
        // oldest-first (starvation-free ablation alternative). Oldest-first
        // copies the incrementally maintained `(created, id)` mirror
        // instead of re-sorting the whole active set every cycle.
        self.order.clear();
        match self.cfg.arbitration {
            crate::config::Arbitration::Random => {
                self.order.extend_from_slice(&self.active);
                self.order.shuffle(&mut self.rng);
            }
            crate::config::Arbitration::OldestFirst => {
                debug_assert_eq!(self.ordered.len(), self.active.len());
                debug_assert!(
                    self.ordered.windows(2).all(|w| {
                        (self.msgs[w[0] as usize].created, w[0])
                            < (self.msgs[w[1] as usize].created, w[1])
                    }),
                    "ordered mirror lost its sort order"
                );
                self.order.extend_from_slice(&self.ordered);
            }
        }

        self.phase_lap(&mut mark, Phase::Route);

        // 4. Routing + VC allocation for headers.
        let order = std::mem::take(&mut self.order);
        for &id in &order {
            self.try_allocate(id);
        }
        self.phase_lap(&mut mark, Phase::Allocate);

        // 5. Flit movement (ejection, pipeline shifts, source injection).
        // `link_used`/`eject_used` need no clearing: they are epoch-stamped
        // with `cycle + 1`, so last cycle's marks simply stop matching.
        // With `cfg.shards > 1` the pass is partitioned into
        // footprint-disjoint shards on the worker pool with a deterministic
        // rank-ordered merge — byte-identical to the sequential loop (see
        // `crate::shard`). Traced runs stay sequential: sinks observe the
        // exact interleaving, and `Sink::ENABLED` is a compile-time
        // constant, so the untraced instantiation carries no branch here.
        if self.shard_rt.is_some() && !S::ENABLED {
            self.move_flits_sharded(&order, measuring, &mut mark);
        } else {
            for &id in &order {
                self.move_flits(id, measuring);
            }
            self.phase_lap(&mut mark, Phase::Move);
        }
        self.order = order;

        // 6. Watchdog — a linear scan over the dense last-progress array.
        let timeout = self.cfg.deadlock_timeout;
        let cycle = self.cycle;
        let mut stuck = std::mem::take(&mut self.stuck_scratch);
        stuck.clear();
        {
            let alive = &self.alive;
            let last_progress = &self.last_progress;
            stuck.extend(self.active.iter().copied().filter(|&id| {
                alive[id as usize] && cycle.saturating_sub(last_progress[id as usize]) > timeout
            }));
        }
        for &id in &stuck {
            self.recover(id);
        }
        self.stuck_scratch = stuck;

        // 7. Statistics & cleanup. VC-busy accounting is incremental:
        // `vc_usage` tracks currently-held slots via acquire/release at the
        // claim and release sites, and `tick()` folds them into the busy
        // totals — no scan over active message paths.
        if measuring {
            self.vc_usage.tick();
            self.node_load.tick();
        }
        let alive = &self.alive;
        self.active.retain(|&id| alive[id as usize]);
        if oldest_first {
            self.ordered.retain(|&id| alive[id as usize]);
        }

        // 8. Delivered-rate window + settling detection (chaos runs only).
        if self.recovery.is_some() {
            self.update_delivery_window();
        }

        // 9. Telemetry fold (before the per-cycle counters reset). The
        // counters themselves are maintained unconditionally — plain adds,
        // far cheaper than branching on them at every site.
        if let Some(t) = self.telemetry.as_mut() {
            let vc_held: u64 = self.vc_usage.held_counts().iter().sum();
            t.record_cycle(
                self.cycle,
                self.injected_this_cycle,
                self.completed_this_cycle,
                u64::from(self.delivered_this_cycle),
                self.blocked_this_cycle,
                vc_held,
                self.ring_hops,
            );
        }
        self.delivered_this_cycle = 0;
        self.injected_this_cycle = 0;
        self.blocked_this_cycle = 0;
        self.completed_this_cycle = 0;

        self.phase_lap(&mut mark, Phase::Recover);
        if PROFILE {
            self.phase_times.tick_cycle();
        }

        self.cycle += 1;
    }

    /// Push this cycle's delivered-flit count into the sliding window and
    /// check pending fault events for settling: an event settles at the
    /// first cycle where the window (a) holds only post-fault cycles and
    /// (b) averages at least [`SETTLE_FRACTION`] of the pre-fault rate.
    fn update_delivery_window(&mut self) {
        self.delivered_window.push_back(self.delivered_this_cycle);
        self.window_sum += self.delivered_this_cycle as u64;
        if self.delivered_window.len() as u64 > self.cfg.settle_window {
            let oldest = self
                .delivered_window
                .pop_front()
                .expect("window is non-empty");
            self.window_sum -= oldest as u64;
        }
        if self.pending_settle.is_empty() {
            return;
        }
        let rate = self.window_rate();
        let window = self.cfg.settle_window;
        let now = self.cycle;
        let rec = self
            .recovery
            .as_mut()
            .expect("settling tracked only with recovery stats");
        self.pending_settle.retain(|&(ev, at, pre)| {
            // Elapsed counts the activation cycle itself (the window is
            // updated before `cycle` increments).
            let elapsed = now + 1 - at;
            if elapsed < window {
                return true; // window still mixes pre-fault cycles
            }
            if rate >= SETTLE_FRACTION * pre {
                rec.set_settled(ev, elapsed);
                false
            } else {
                true
            }
        });
    }

    /// Mean delivered flits/cycle over the current window.
    fn window_rate(&self) -> f64 {
        if self.delivered_window.is_empty() {
            return 0.0;
        }
        self.window_sum as f64 / self.delivered_window.len() as f64
    }

    fn generate_traffic(&mut self, measuring: bool) {
        // Node ids are dense (one injector per node, row-major), so index
        // iteration visits the same nodes in the same order as
        // `mesh.nodes()` without touching the mesh.
        for idx in 0..self.injectors.len() {
            let node = NodeId(idx as u16);
            let due = self.injectors[idx].poll_rng(self.cycle, &mut self.rng);
            for _ in 0..due {
                let Some(dest) = self.sampler.sample(node, &mut self.rng) else {
                    continue;
                };
                let id = self.alloc_msg(node, dest);
                self.queues[idx].push_back(id.0);
                if measuring {
                    self.throughput.record_injection();
                }
            }
        }
    }

    /// Route the header of message `id` and claim an output VC if possible.
    ///
    /// Only [`AllocPhase::Contend`] headers do real work. `Moving` headers
    /// are skipped outright; `Blocked` ones just account a wait cycle —
    /// their candidate set is stable between hops (`route` is idempotent),
    /// so re-arbitration is deferred until a VC slot they registered for
    /// frees ([`Simulator::wake_waiters`]) or the algorithm's
    /// `recheck_wait` threshold says the set widens at this exact wait
    /// count. Because the only RNG draw in here happens on a *successful*
    /// allocation, and a skipped attempt is always one that would have
    /// failed, the RNG stream — and thus the whole simulation — is
    /// byte-identical to re-routing every blocked header every cycle.
    fn try_allocate(&mut self, id: u32) {
        let i = id as usize;
        if !self.alive[i] {
            return;
        }
        match self.alloc[i] {
            AllocPhase::Moving => return,
            AllocPhase::Blocked => {
                // Fall through to a full attempt only when `route` must see
                // exactly the threshold wait count (the widened attempt the
                // always-retry loop would have made); otherwise just keep
                // the wait counter ticking as that loop did.
                if Some(self.msgs[i].state.wait_cycles) != self.recheck_wait {
                    self.msgs[i].state.wait_cycles += 1;
                    self.blocked_this_cycle += 1;
                    return;
                }
            }
            AllocPhase::Contend => {}
        }
        let m = &self.msgs[i];
        // Routable: header at source (path empty, owning the injection
        // port) or header buffered at the last held VC's downstream node.
        let at_source = m.path.is_empty();
        if !at_source && !m.header_at_head() {
            return; // header still in transit to the head VC
        }
        let head = self.head_node(m);
        if head == m.dest {
            return; // ejection handles it
        }

        let mut state = m.state;
        let cands = self.algo.route(head, &mut state);
        if S::ENABLED {
            self.sink
                .record(TraceEvent::new(self.cycle, EventKind::RouteDecision, id).at(head.0));
        }
        let mesh = self.ctx.mesh();

        // Gather free (channel, vc) pairs, preferred tier first, into the
        // reusable scratch buffer (taken out of `self` to satisfy the
        // borrow checker; returned before every exit). Busy candidate keys
        // are collected alongside: on failure they are exactly the slots
        // whose release must wake this header.
        let mut eligible = std::mem::take(&mut self.eligible_scratch);
        let mut busy = std::mem::take(&mut self.busy_scratch);
        eligible.clear();
        busy.clear();
        let allowed = vc_width_mask(self.num_vcs);
        for tier in 0..2 {
            for hop in cands.iter() {
                let mask = if tier == 0 {
                    hop.preferred
                } else {
                    hop.fallback
                };
                if mask.is_empty() {
                    continue;
                }
                let ch = mesh.channel(head, hop.dir);
                debug_assert!(mesh.channel_exists(ch), "candidate off-mesh");
                expand_candidates(
                    mask.0 & allowed,
                    self.occ_mask[ch.0 as usize],
                    ch.0 * self.num_vcs as u32,
                    &mut eligible,
                    &mut busy,
                );
            }
            if !eligible.is_empty() {
                break;
            }
        }

        if eligible.is_empty() {
            // Sleep on every busy candidate slot. (No candidates at all —
            // fault-blocked with nowhere to go — leaves the wake lists
            // empty; only the watchdog, the recheck threshold, or a fault
            // activation can change that picture, and all three re-set
            // `Contend`.) Dedup on push bounds each list by the number of
            // live contenders, keeping steady-state pushes allocation-free.
            for &key in &busy {
                self.waiters.register(key, id);
                self.waiter_mask[(key / self.num_vcs as u32) as usize] |=
                    1 << (key % self.num_vcs as u32);
            }
            self.eligible_scratch = eligible;
            self.busy_scratch = busy;
            state.wait_cycles += 1;
            self.blocked_this_cycle += 1;
            if S::ENABLED {
                self.sink
                    .record(TraceEvent::new(self.cycle, EventKind::Block, id).at(head.0));
            }
            self.msgs[i].state = state;
            self.alloc[i] = AllocPhase::Blocked;
            return;
        }
        let &(key, vc) = eligible.choose(&mut self.rng).expect("non-empty");
        self.eligible_scratch = eligible;
        self.busy_scratch = busy;
        let ch = self.key_channel(key);
        let next = mesh.channel_dest(ch).expect("candidate channel exists");
        let dir = mesh.channel_dir(ch);
        self.algo.on_hop(head, next, dir, vc, &mut state);
        if self.algo.is_overlay_vc(vc) {
            self.ring_hops += 1;
        }
        self.slots[key as usize] = Some(id);
        self.occ_mask[ch.0 as usize] |= 1 << vc;
        self.vc_usage.acquire(vc);
        if S::ENABLED {
            self.sink.record(
                TraceEvent::new(self.cycle, EventKind::VcAcquire, id)
                    .at(head.0)
                    .on(ch.0, vc),
            );
        }
        if let Some(rt) = self.shard_rt.as_deref_mut() {
            // Footprint growth: fold the new channel, its downstream node,
            // and the previous head channel into one movement cluster.
            let prev_ch = self.msgs[i].path.back().map(|e| e.ch);
            rt.note_allocation(ch.0, next.index(), prev_ch);
        }
        self.alloc[i] = AllocPhase::Moving;
        // The path grew: the header can advance into the fresh (empty) VC
        // buffer, so any movement stall is over.
        self.stalled[i] = false;
        let m = &mut self.msgs[i];
        m.state = state;
        m.path.push_back(PathEntry {
            key,
            ch: ch.0,
            vc,
            dest: next,
            entered: 0,
            occ: 0,
        });
    }

    /// Binary-insert `id` into the `(created, id)`-sorted mirror of
    /// `active` (oldest-first arbitration only). Promotion order mostly
    /// tracks creation order, so the insert usually lands at the tail.
    fn ordered_insert(&mut self, id: u32) {
        let key = (self.msgs[id as usize].created, id);
        let pos = self
            .ordered
            .binary_search_by_key(&key, |&x| (self.msgs[x as usize].created, x))
            .unwrap_or_else(|p| p);
        self.ordered.insert(pos, id);
    }

    /// Wake every header asleep on slot `key`: the freed VC re-arbitrates
    /// its registered contenders next cycle. Entries that are no longer
    /// blocked (moved on, died, slab slot recycled) are stale; they are
    /// dropped here, and a spurious wake of a recycled id merely costs one
    /// failed attempt (which draws no RNG).
    fn wake_waiters(&mut self, key: u32) {
        let ch = key / self.num_vcs as u32;
        let vc = (key % self.num_vcs as u32) as u8;
        // The wake flag mirrors list non-emptiness: one bit test replaces
        // loading the (cache-cold) list header for the common empty case.
        if self.waiter_mask[ch as usize] & (1 << vc) == 0 {
            return;
        }
        self.waiter_mask[ch as usize] &= !(1 << vc);
        let cycle = self.cycle;
        debug_assert!(
            !self.waiters.is_empty(key),
            "wake flag set on an empty list"
        );
        for wid in self.waiters.iter(key) {
            let wi = wid as usize;
            if self.alive[wi] && self.alloc[wi] == AllocPhase::Blocked {
                self.alloc[wi] = AllocPhase::Contend;
                if S::ENABLED {
                    self.sink
                        .record(TraceEvent::new(cycle, EventKind::Wake, wid).on(ch, vc));
                }
            }
        }
        // Iteration done: splice the whole list back onto the free chain.
        self.waiters.release(key);
    }

    /// Advance the message's flit pipeline by up to one flit per held link.
    fn move_flits(&mut self, id: u32, measuring: bool) {
        let depth = self.cfg.buffer_depth;
        let stamp = self.cycle + 1;
        let i = id as usize;
        // A stalled wormhole (checked below after each movement pass)
        // cannot move any flit until its own state changes, and it
        // would not have marked `link_used`/`eject_used` either, so
        // skipping it is byte-identical to walking its path again. Both
        // skip flags are dense-array loads; the `Msg` record is only
        // touched once a message actually has movement work.
        if !self.alive[i] || self.stalled[i] || self.msgs[i].path.is_empty() {
            return;
        }
        // Slot keys freed below (tail drains, completion) collect into the
        // reusable scratch so their wake lists can drain once the message
        // borrow ends.
        let mut freed = std::mem::take(&mut self.freed_scratch);
        freed.clear();
        let m = &mut self.msgs[i];
        let mut progressed = false;

        // Work on a contiguous slice: the pipeline loop indexes entry
        // pairs every cycle, and the path buffer stores them contiguously
        // by construction (no ring-buffer arithmetic, no
        // `make_contiguous`). Each entry carries its channel and
        // downstream node, so no mesh queries (with their coordinate
        // divisions) happen in here at all.
        let path = m.path.as_mut_slice();

        // Ejection at the destination (head entry only).
        let head_idx = path.len() - 1;
        let head_entry = path[head_idx];
        let head_node = head_entry.dest;
        if head_node == m.dest && head_entry.occ > 0 && self.eject_used[head_node.index()] != stamp
        {
            self.eject_used[head_node.index()] = stamp;
            path[head_idx].occ -= 1;
            m.delivered += 1;
            self.delivered_this_cycle += 1;
            progressed = true;
        }

        // Pipeline shifts: into entry j from entry j-1, head side first so
        // slots freed this cycle can be refilled (standard pipelining).
        //
        // The head stage is peeled off: it is the only one where a move
        // can be a header arrival (flipping the allocation phase). The
        // interior loop below is branchless — whether a stage moves is
        // roughly a coin flip under link contention, so folding the move
        // condition into arithmetic (conditional moves instead of a
        // data-dependent branch) sidesteps the mispredict per stage.
        if head_idx >= 1 {
            let cur = path[head_idx];
            let lu = &mut self.link_used[cur.ch as usize];
            if path[head_idx - 1].occ > 0
                && cur.occ < depth
                && cur.entered < m.length
                && *lu != stamp
            {
                *lu = stamp;
                path[head_idx - 1].occ -= 1;
                path[head_idx].occ += 1;
                path[head_idx].entered += 1;
                progressed = true;
                if path[head_idx].entered == 1 {
                    // The header flit just reached the head VC's buffer:
                    // routable from the next allocation pass on (unless it
                    // arrived home, where ejection takes over).
                    self.alloc[i] = if cur.dest == m.dest {
                        AllocPhase::Moving
                    } else {
                        AllocPhase::Contend
                    };
                }
                if measuring {
                    self.node_load.record_arrival(cur.dest);
                }
            }
        }
        let nl_mask = measuring as u64;
        for j in (1..head_idx).rev() {
            let cur = path[j];
            let prev_occ = path[j - 1].occ;
            let lu = &mut self.link_used[cur.ch as usize];
            let can =
                (prev_occ > 0) & (cur.occ < depth) & (cur.entered < m.length) & (*lu != stamp);
            let d = can as u8;
            *lu = if can { stamp } else { *lu };
            path[j - 1].occ = prev_occ - d;
            path[j].occ = cur.occ + d;
            path[j].entered = cur.entered + d as u32;
            progressed |= can;
            self.node_load.record_arrivals(cur.dest, d as u64 & nl_mask);
        }

        // Source injection into the first held VC.
        if m.at_source > 0 {
            let first = path[0];
            let ch = first.ch;
            if first.occ < depth && first.entered < m.length && self.link_used[ch as usize] != stamp
            {
                self.link_used[ch as usize] = stamp;
                path[0].occ += 1;
                path[0].entered += 1;
                m.at_source -= 1;
                progressed = true;
                if path.len() == 1 && path[0].entered == 1 {
                    // Header injected straight into the head VC (single-hop
                    // path so far): routable next pass unless already home.
                    self.alloc[i] = if first.dest == m.dest {
                        AllocPhase::Moving
                    } else {
                        AllocPhase::Contend
                    };
                }
                if m.first_injected.is_none() {
                    m.first_injected = Some(self.cycle);
                }
                if measuring {
                    self.node_load.record_arrival(first.dest);
                }
                if m.at_source == 0 {
                    // The tail left the source: free the injection port.
                    self.injecting[m.src.index()] = None;
                }
            }
        }

        if progressed {
            self.last_progress[i] = self.cycle;
        } else {
            // Stall detection (only worth deciding when nothing moved —
            // a message that just moved re-scans next cycle anyway). Each
            // movement predicate above reads only the message's own state
            // (`occ`/`entered`/`at_source`) plus constants (`depth`,
            // `length`) — the per-cycle link/ejection budgets are checked
            // last and only ever *deny* a move. So if no predicate holds
            // on the current state, none can hold on a later cycle either
            // until this message's own state changes — which happens only
            // in `try_allocate` (path growth) or a reset. Mark it stalled
            // and skip its movement pass until then.
            let head = path[head_idx];
            let mut movable = head.dest == m.dest && head.occ > 0;
            movable =
                movable || (m.at_source > 0 && path[0].occ < depth && path[0].entered < m.length);
            if !movable {
                for j in 1..path.len() {
                    if path[j - 1].occ > 0 && path[j].occ < depth && path[j].entered < m.length {
                        movable = true;
                        break;
                    }
                }
            }
            self.stalled[i] = !movable;
        }

        // Release drained tail VCs (the tail flit has passed through).
        while m.path.len() > 1 {
            let front = m.path[0];
            if front.entered == m.length && front.occ == 0 {
                self.slots[front.key as usize] = None;
                self.occ_mask[front.ch as usize] &= !(1 << front.vc);
                self.vc_usage.release(front.vc);
                freed.push(front.key);
                m.path.pop_front();
            } else {
                break;
            }
        }

        // Completion.
        if m.is_complete() {
            for e in &m.path {
                self.slots[e.key as usize] = None;
                self.occ_mask[e.ch as usize] &= !(1 << e.vc);
                self.vc_usage.release(e.vc);
                freed.push(e.key);
            }
            m.path.clear();
            self.alive[i] = false;
            if S::ENABLED {
                self.sink
                    .record(TraceEvent::new(self.cycle, EventKind::Deliver, id).at(m.dest.0));
            }
            self.finish_completion(id, measuring);
        }

        for &key in &freed {
            self.wake_waiters(key);
        }
        self.freed_scratch = freed;
    }

    /// The statistics/bookkeeping tail of a message completion, shared by
    /// the sequential movement pass and the sharded merge (which replays
    /// completions in service-rank order, reproducing the sequential
    /// sequence of these calls exactly — the latency records are
    /// order-sensitive f64 sums, and the free-list push order decides
    /// future message-id assignment).
    fn finish_completion(&mut self, id: u32, measuring: bool) {
        let m = &mut self.msgs[id as usize];
        let misroutes = m.state.misroutes as u64;
        let abort = m.abort_tag.take();
        let latency = self.cycle + 1 - m.created;
        let network_latency = self.cycle + 1
            - m.first_injected
                .expect("a completed message must have injected flits");
        let length = m.length;
        self.completed_this_cycle += 1;
        self.total_misroutes += misroutes;
        if let Some((ev, aborted_at)) = abort {
            if let Some(rec) = self.recovery.as_mut() {
                rec.record_recovered(ev as usize, self.cycle + 1 - aborted_at);
            }
        }
        self.free_list.push(id);
        if measuring {
            self.throughput.record_delivery(length);
            self.latency.record(latency);
            self.network_latency.record(network_latency);
        }
    }

    /// Phase 5 on the worker pool: partition the service order into
    /// footprint-disjoint shards (contiguous union-find index ranges),
    /// move each shard's messages in rank order concurrently, then replay
    /// the deferred global effects in rank order. Produces byte-identical
    /// state to the sequential loop — see `crate::shard` for the full
    /// argument.
    ///
    /// Two sequential fast paths keep `shards > 1` from ever costing more
    /// than `shards = 1`:
    /// - On a single-core host (unless [`Simulator::force_parallel_movement`]
    ///   is set) the pool cannot help, so the plain sequential loop runs —
    ///   which *is* the oracle, so equivalence is definitional.
    /// - When the partition lands every movable message in one cluster,
    ///   that shard's rank-sorted list is exactly the movable subsequence
    ///   of the service order; running it inline skips the pool handshake
    ///   and the deferred-effect replay entirely.
    fn move_flits_sharded(
        &mut self,
        order: &[u32],
        measuring: bool,
        mark: &mut Option<std::time::Instant>,
    ) {
        let mut rt = self
            .shard_rt
            .take()
            .expect("sharded movement requires a shard runtime");
        if !self.force_parallel && !rt.multicore() {
            for &id in order {
                self.move_flits(id, measuring);
            }
            self.shard_rt = Some(rt);
            self.phase_lap(mark, Phase::Move);
            return;
        }
        if rt.should_rebuild() {
            // Shed stale cluster merges (releases never split clusters
            // incrementally); pure performance state, never observable —
            // triggered by the release volume since the last rebuild
            // instead of a fixed cycle period.
            rt.rebuild(&self.active, &self.msgs, &self.alive);
        }
        rt.partition(order, &self.msgs, &self.alive);
        let busy = rt.lists.iter().filter(|l| !l.is_empty()).count();
        if busy == 1 {
            let li = rt
                .lists
                .iter()
                .position(|l| !l.is_empty())
                .expect("one non-empty list");
            let list = std::mem::take(&mut rt.lists[li]);
            for &(_, id) in &list {
                self.move_flits(id, measuring);
            }
            rt.lists[li] = list;
        } else if busy > 1 {
            let shards = rt.lists.len();
            let arena = MoveArena {
                msgs: SyncPtr(self.msgs.as_mut_ptr()),
                alive: SyncPtr(self.alive.as_mut_ptr()),
                alloc: SyncPtr(self.alloc.as_mut_ptr()),
                stalled: SyncPtr(self.stalled.as_mut_ptr()),
                last_progress: SyncPtr(self.last_progress.as_mut_ptr()),
                slots: SyncPtr(self.slots.as_mut_ptr()),
                occ_mask: SyncPtr(self.occ_mask.as_mut_ptr()),
                link_used: SyncPtr(self.link_used.as_mut_ptr()),
                eject_used: SyncPtr(self.eject_used.as_mut_ptr()),
                arrivals: SyncPtr(self.node_load.arrivals_mut().as_mut_ptr()),
                injecting: SyncPtr(self.injecting.as_mut_ptr()),
                depth: self.cfg.buffer_depth,
                stamp: self.cycle + 1,
                cycle: self.cycle,
                measuring,
            };
            let lists = &rt.lists;
            let scratch = SyncPtr(rt.scratch.as_mut_ptr());
            let task = move |i: usize| {
                // Worker `i` owns shard `i`'s scratch and every channel,
                // node, and message reachable from shard `i`'s footprints —
                // disjoint across workers by the union-find partition.
                let scratch = unsafe { &mut *scratch.at(i) };
                for &(rank, id) in &lists[i] {
                    unsafe { move_one(&arena, rank, id, scratch) };
                }
            };
            if let Err((_, payload)) = WorkerPool::global().run(shards, shards, &task) {
                // Surface worker panics exactly like the sequential loop
                // would (the pool has already drained and unenrolled).
                std::panic::resume_unwind(payload);
            }
            // The parallel shard run is `move`; the deterministic
            // rank-ordered effect replay that follows is `merge`.
            self.phase_lap(mark, Phase::Move);
            self.apply_shard_effects(&mut rt, measuring);
            self.phase_lap(mark, Phase::Merge);
        }
        if busy <= 1 {
            self.phase_lap(mark, Phase::Move);
        }
        self.shard_rt = Some(rt);
    }

    /// Replay one sharded cycle's deferred global effects in the exact
    /// order the sequential loop would have produced them. Each effect
    /// kind is first merged (rank order, run-copying k-way merge) into the
    /// runtime's preallocated batch buffer, then replayed with a plain
    /// index walk — the merge is a memcpy-like pass, not a per-item scan
    /// over every shard.
    fn apply_shard_effects(&mut self, rt: &mut ShardRuntime, measuring: bool) {
        let mut delivered = 0u32;
        let mut released = 0u64;
        for s in &rt.scratch {
            delivered += s.delivered;
            released += s.freed.len() as u64;
            for (vc, &n) in s.vc_released.iter().enumerate() {
                if n > 0 {
                    self.vc_usage.release_n(vc as u8, n);
                }
            }
        }
        self.delivered_this_cycle += delivered;
        rt.note_releases(released);
        rt.merge_ranked(|s| &s.completions);
        for k in 0..rt.merged.len() {
            let id = rt.merged[k];
            self.finish_completion(id, measuring);
        }
        rt.merge_ranked(|s| &s.freed);
        for k in 0..rt.merged.len() {
            let key = rt.merged[k];
            self.wake_waiters(key);
        }
    }

    /// Drain every activation the installed fault driver has due.
    fn poll_fault_driver(&mut self) {
        let mut driver = self
            .fault_driver
            .take()
            .expect("caller checked driver presence");
        while let Some(act) = driver.poll(self.cycle) {
            self.apply_activation(act);
        }
        self.fault_driver = Some(driver);
    }

    /// Swap in routing state for an extended fault pattern and triage all
    /// traffic against the newly faulty nodes (the chaos recovery
    /// protocol):
    ///
    /// - an endpoint the message still needs died → permanently lost;
    /// - its path crosses a new fault → aborted: held VCs released, flits
    ///   reset to the source, re-routed against the new pattern, and
    ///   re-injection scheduled with bounded exponential backoff;
    /// - queued at a healthy source → route state re-sampled (requeued);
    /// - otherwise untouched, except that ring state is cleared (region
    ///   ids changed with the pattern).
    fn apply_activation(&mut self, act: FaultActivation) {
        let FaultActivation { ctx: new_ctx, algo } = act;
        assert_eq!(
            (new_ctx.mesh().width(), new_ctx.mesh().height()),
            (self.ctx.mesh().width(), self.ctx.mesh().height()),
            "fault activation built for a different mesh"
        );
        assert_eq!(
            algo.num_vcs(),
            self.num_vcs,
            "fault activation changes the VC count"
        );
        let old_ctx = std::mem::replace(&mut self.ctx, new_ctx);
        self.algo = algo;
        let mesh = self.ctx.mesh().clone();

        // Newly unusable nodes (seeds plus nodes swallowed by the convex
        // closure, possibly merged into pre-existing regions).
        let newly: Vec<bool> = mesh
            .nodes()
            .map(|n| self.ctx.pattern().is_faulty(n) && !old_ctx.pattern().is_faulty(n))
            .collect();
        let newly_count = newly.iter().filter(|&&b| b).count();

        let pre_rate = self.window_rate();
        let ev = self
            .recovery
            .as_mut()
            .expect("recovery stats exist while a driver is installed")
            .begin_event(self.cycle, newly_count, pre_rate);
        self.pending_settle.push((ev, self.cycle, pre_rate));

        // Dead nodes stop generating; destination sampling moves to the
        // new healthy set. Throughput keeps normalizing by the initial
        // healthy count so pre/post-fault rates stay comparable.
        for (idx, dead) in newly.iter().enumerate() {
            if *dead {
                self.injectors[idx] = Injector::new(0.0);
            }
        }
        let pattern = self.ctx.pattern();
        self.sampler
            .reset(self.workload.pattern, &mesh, pattern.healthy_nodes(&mesh));

        // In-flight triage, in `active` order (deterministic).
        let snapshot: Vec<u32> = self.active.clone();
        for &id in &snapshot {
            let m = &self.msgs[id as usize];
            if !self.alive[id as usize] {
                continue;
            }
            let src_dead = newly[m.src.index()];
            let dest_dead = newly[m.dest.index()];
            let crosses = m
                .path
                .iter()
                .any(|e| newly[e.dest.index()] || newly[mesh.channel_src(ChannelId(e.ch)).index()]);
            if dest_dead || (src_dead && (m.at_source > 0 || crosses)) {
                // Destination gone, or flits stranded at / re-injection
                // required from a dead source.
                self.kill_active(id);
                self.recovery.as_mut().expect("stats exist").record_lost(ev);
            } else if crosses {
                self.abort_for_fault(id, ev);
            } else {
                // Survivor: its ring state references the old pattern's
                // region ids, which the swap invalidated.
                self.msgs[id as usize].state.ring = None;
            }
        }

        // Queued triage, node order then queue order (deterministic).
        for node in 0..self.queues.len() {
            if self.queues[node].is_empty() {
                continue;
            }
            let q = std::mem::take(&mut self.queues[node]);
            if newly[node] {
                // The source died with its whole queue.
                for id in q {
                    self.alive[id as usize] = false;
                    self.free_list.push(id);
                    self.recovery.as_mut().expect("stats exist").record_lost(ev);
                }
                continue;
            }
            let mut kept = VecDeque::with_capacity(q.len());
            for id in q {
                let (src, dest) = {
                    let m = &self.msgs[id as usize];
                    (m.src, m.dest)
                };
                if newly[dest.index()] {
                    self.alive[id as usize] = false;
                    self.free_list.push(id);
                    self.recovery.as_mut().expect("stats exist").record_lost(ev);
                } else {
                    // Route re-sampled against the updated pattern.
                    let state = self.algo.init_message(src, dest);
                    self.msgs[id as usize].state = state;
                    self.recovery
                        .as_mut()
                        .expect("stats exist")
                        .record_requeued(ev);
                    kept.push_back(id);
                }
            }
            self.queues[node] = kept;
        }

        // Backoff triage: a waiting message whose endpoint died is lost.
        let backoff = std::mem::take(&mut self.backoff);
        for (ready, id) in backoff {
            let (src, dest) = {
                let m = &self.msgs[id as usize];
                (m.src, m.dest)
            };
            if newly[src.index()] || newly[dest.index()] {
                self.alive[id as usize] = false;
                self.msgs[id as usize].abort_tag = None;
                self.free_list.push(id);
                self.recovery.as_mut().expect("stats exist").record_lost(ev);
            } else {
                self.backoff.push((ready, id));
            }
        }

        // Prune `active` now: killed ids' slab slots are already on the
        // free list and may be re-allocated by this very cycle's traffic
        // generation, and aborted ids re-enter via the source queue — a
        // stale entry would double-route them.
        let in_backoff: std::collections::HashSet<u32> =
            self.backoff.iter().map(|&(_, id)| id).collect();
        let alive = &self.alive;
        self.active
            .retain(|&id| alive[id as usize] && !in_backoff.contains(&id));
        if matches!(
            self.cfg.arbitration,
            crate::config::Arbitration::OldestFirst
        ) {
            self.ordered
                .retain(|&id| alive[id as usize] && !in_backoff.contains(&id));
        }

        // The context/algorithm swap invalidated every cached routing
        // decision: all surviving headers must re-contend (their candidate
        // sets were computed against the old pattern) and every wake list
        // is stale. The new algorithm may also widen at a different wait
        // threshold.
        self.recheck_wait = self.algo.recheck_wait();
        self.waiters.clear_all();
        self.waiter_mask.iter_mut().for_each(|m| *m = 0);
        for &id in &self.active {
            self.alloc[id as usize] = AllocPhase::Contend;
        }
    }

    /// Remove an active message from the network for good: release held
    /// VCs, free the injection port, recycle the slab slot. The caller
    /// prunes `active` (activation triage immediately, the watchdog via
    /// the end-of-step retain).
    fn kill_active(&mut self, id: u32) {
        let mut freed = std::mem::take(&mut self.freed_scratch);
        freed.clear();
        let m = &mut self.msgs[id as usize];
        for e in &m.path {
            self.slots[e.key as usize] = None;
            self.occ_mask[e.ch as usize] &= !(1 << e.vc);
            self.vc_usage.release(e.vc);
            freed.push(e.key);
        }
        m.path.clear();
        self.alive[id as usize] = false;
        m.abort_tag = None;
        let src = m.src;
        if self.injecting[src.index()] == Some(id) {
            self.injecting[src.index()] = None;
        }
        self.free_list.push(id);
        if let Some(rt) = self.shard_rt.as_deref_mut() {
            rt.note_releases(freed.len() as u64);
        }
        for &key in &freed {
            self.wake_waiters(key);
        }
        self.freed_scratch = freed;
    }

    /// Chaos abort: drop the message's flits back to its source, release
    /// every held VC, re-route it against the new pattern, and schedule
    /// re-injection after `backoff_base << min(aborts-1, backoff_cap)`
    /// cycles.
    fn abort_for_fault(&mut self, id: u32, ev: usize) {
        let mut freed = std::mem::take(&mut self.freed_scratch);
        freed.clear();
        let (src, dest) = {
            let m = &mut self.msgs[id as usize];
            for e in &m.path {
                self.slots[e.key as usize] = None;
                self.occ_mask[e.ch as usize] &= !(1 << e.vc);
                self.vc_usage.release(e.vc);
                freed.push(e.key);
            }
            m.path.clear();
            m.at_source = m.length;
            m.delivered = 0;
            m.first_injected = None;
            self.last_progress[id as usize] = self.cycle;
            m.chaos_aborts += 1;
            m.abort_tag = Some((ev as u32, self.cycle));
            self.alloc[id as usize] = AllocPhase::Contend;
            self.stalled[id as usize] = false;
            (m.src, m.dest)
        };
        if let Some(rt) = self.shard_rt.as_deref_mut() {
            rt.note_releases(freed.len() as u64);
        }
        for &key in &freed {
            self.wake_waiters(key);
        }
        self.freed_scratch = freed;
        if self.injecting[src.index()] == Some(id) {
            self.injecting[src.index()] = None;
        }
        if S::ENABLED {
            self.sink
                .record(TraceEvent::new(self.cycle, EventKind::Abort, id).at(src.0));
        }
        let state = self.algo.init_message(src, dest);
        let m = &mut self.msgs[id as usize];
        m.state = state;
        let exp = (m.chaos_aborts - 1).min(self.cfg.recovery_backoff_cap);
        let delay = self.cfg.recovery_backoff_base << exp;
        self.backoff.push((self.cycle + delay, id));
        self.recovery
            .as_mut()
            .expect("stats exist")
            .record_abort(ev);
    }

    /// Watchdog recovery: drop the message's flits, free its VCs, and
    /// re-inject it from its source with fresh routing state.
    fn recover(&mut self, id: u32) {
        // A survivor of an online fault event whose source has since died
        // cannot be re-injected: drop it for good.
        if self.ctx.pattern().is_faulty(self.msgs[id as usize].src) {
            self.kill_active(id);
            if let Some(rec) = self.recovery.as_mut() {
                if rec.num_events() > 0 {
                    rec.record_lost(rec.num_events() - 1);
                }
            }
            return;
        }
        self.recoveries += 1;
        // Structured stall forensics replace the old ad-hoc stderr dump:
        // snapshot the blocked-message wait-for graph (the wake lists are
        // exactly its edges) and name the deadlock cycle or congestion
        // hotspot. The diagnosis is kept as a value so tests and tools can
        // assert on the identified resource instead of scraping stderr.
        // Building it allocates, so the untraced/undebugged fast path skips
        // it to preserve the zero-allocation steady state.
        if S::ENABLED || self.cfg.debug_watchdog {
            let diag = self.diagnose_stall(Some(MsgId(id)));
            if self.cfg.debug_watchdog {
                eprint!("{diag}");
            }
            self.last_stall = Some(diag);
        }
        if S::ENABLED {
            let head = self.head_node(&self.msgs[id as usize]).0;
            self.sink
                .record(TraceEvent::new(self.cycle, EventKind::Recover, id).at(head));
        }
        let src;
        let mut freed = std::mem::take(&mut self.freed_scratch);
        freed.clear();
        {
            let m = &mut self.msgs[id as usize];
            for e in &m.path {
                self.slots[e.key as usize] = None;
                self.occ_mask[e.ch as usize] &= !(1 << e.vc);
                self.vc_usage.release(e.vc);
                freed.push(e.key);
            }
            m.path.clear();
            m.at_source = m.length;
            m.delivered = 0;
            m.first_injected = None;
            self.last_progress[id as usize] = self.cycle;
            m.recoveries += 1;
            self.alloc[id as usize] = AllocPhase::Contend;
            self.stalled[id as usize] = false;
            src = m.src;
        }
        if let Some(rt) = self.shard_rt.as_deref_mut() {
            rt.note_releases(freed.len() as u64);
        }
        for &key in &freed {
            self.wake_waiters(key);
        }
        self.freed_scratch = freed;
        let state = self.algo.init_message(src, self.msgs[id as usize].dest);
        self.msgs[id as usize].state = state;
        // Give the injection port back if this message held it; otherwise
        // requeue at the front.
        if self.injecting[src.index()] == Some(id) {
            // Keeps the port; restarts next cycle from the source.
        } else {
            self.injecting[src.index()] = match self.injecting[src.index()] {
                Some(other) if other != id => {
                    // Port busy with another message: requeue this one.
                    self.queues[src.index()].push_front(id);
                    // Remove from active; re-promoted later.
                    self.alive[id as usize] = true;
                    self.active.retain(|&x| x != id);
                    self.ordered.retain(|&x| x != id);
                    return;
                }
                _ => Some(id),
            };
            if !self.active.contains(&id) {
                self.active.push(id);
                if matches!(
                    self.cfg.arbitration,
                    crate::config::Arbitration::OldestFirst
                ) {
                    self.ordered_insert(id);
                }
            }
        }
    }

    /// Snapshot the blocked-message wait-for graph into a structured
    /// [`StallDiagnosis`]: one edge per (sleeping header, occupied
    /// candidate slot) pair, plus the focus message's own situation.
    /// Cheap relative to a recovery (it only scans non-empty wake lists),
    /// and side-effect free — callable from tests at any cycle.
    pub fn diagnose_stall(&self, focus: Option<MsgId>) -> StallDiagnosis {
        let mut edges = Vec::new();
        // The wake-flag masks locate non-empty lists: one `trailing_zeros`
        // loop per channel instead of scanning every (channel, VC) slot.
        for (ch, &mask) in self.waiter_mask.iter().enumerate() {
            let mut bits = mask;
            while bits != 0 {
                let vc = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                self.stall_edges_for(ch as u32, vc, &mut edges);
            }
        }
        let blocked = self
            .active
            .iter()
            .filter(|&&id| {
                let i = id as usize;
                self.alive[i] && self.alloc[i] == AllocPhase::Blocked
            })
            .count();
        let focus = focus.map(|id| self.stall_message(id.0));
        StallDiagnosis::build(self.cycle, focus, blocked, edges)
    }

    /// Collect the wait-for edges of one (channel, VC) slot's wake list.
    fn stall_edges_for(&self, channel: u32, vc: u8, edges: &mut Vec<WaitEdge>) {
        let key = channel * self.num_vcs as u32 + vc as u32;
        let Some(holder) = self.slots[key as usize] else {
            // Freed but not yet drained: its sleepers are about to wake.
            return;
        };
        for waiter in self.waiters.iter(key) {
            let wi = waiter as usize;
            // Stale entries (moved on, died, recycled) are not waiting.
            if self.alive[wi] && self.alloc[wi] == AllocPhase::Blocked {
                edges.push(WaitEdge {
                    waiter,
                    channel,
                    vc,
                    holder,
                });
            }
        }
    }

    /// Snapshot one message's situation for a stall report.
    fn stall_message(&self, id: u32) -> StallMessage {
        let m = &self.msgs[id as usize];
        let mesh = self.ctx.mesh();
        let coord = |n: NodeId| {
            let c = mesh.coord(n);
            (c.x, c.y)
        };
        StallMessage {
            id,
            src: coord(m.src),
            dest: coord(m.dest),
            head: coord(self.head_node(m)),
            at_source: m.path.is_empty(),
            delivered: m.delivered,
            wait_cycles: m.state.wait_cycles,
            recoveries: m.recoveries,
            holds: m.path.iter().map(|e| (e.ch, e.vc)).collect(),
        }
    }

    /// Test/bench hook: run the pooled sharded-movement path even on a
    /// single-core host, where `shards > 1` otherwise takes the inline
    /// sequential fast path. Lets equivalence suites exercise the
    /// worker-pool partition/merge machinery deterministically anywhere.
    #[doc(hidden)]
    pub fn force_parallel_movement(&mut self, on: bool) {
        self.force_parallel = on;
    }

    /// Test support: audit the struct-of-arrays hot-flag buffers against
    /// the structures they were split from. Reconstructs the legacy
    /// per-message view — liveness from slab free-list membership, the
    /// allocation phase from held VCs and wake-list registrations — and
    /// asserts the flat arrays agree. Panics on any divergence.
    #[doc(hidden)]
    pub fn check_soa_layout(&self) {
        let n = self.msgs.len();
        assert_eq!(self.alive.len(), n, "alive[] not slab-length");
        assert_eq!(self.alloc.len(), n, "alloc[] not slab-length");
        assert_eq!(self.stalled.len(), n, "stalled[] not slab-length");
        assert_eq!(
            self.last_progress.len(),
            n,
            "last_progress[] not slab-length"
        );
        // Legacy `msg.alive = false` ⟺ the slot is recyclable: every
        // free-list member must read dead and hold no VCs.
        for &id in &self.free_list {
            let i = id as usize;
            assert!(!self.alive[i], "free slab slot {id} marked alive");
            assert!(
                self.msgs[i].path.is_empty(),
                "free slab slot {id} still holds VCs"
            );
        }
        // Legacy `msg.alloc == Moving` while the header sits routable at
        // the head VC only happens for ejecting messages; conversely a
        // Blocked header can never be flagged stalled-in-movement (the
        // movement pass clears `stalled` when it parks the header).
        for &id in &self.active {
            let i = id as usize;
            if !self.alive[i] {
                continue;
            }
            let m = &self.msgs[i];
            assert!(
                self.last_progress[i] <= self.cycle,
                "msg {id} progressed in the future"
            );
            if self.alloc[i] == AllocPhase::Blocked {
                assert!(
                    !m.header_at_head() || !m.is_complete(),
                    "msg {id} blocked after completion"
                );
            }
            if m.path.is_empty() && m.at_source == m.length {
                // Nothing launched yet: a header that has never entered
                // the network cannot be movement-stalled.
                assert!(!self.stalled[i], "unlaunched msg {id} marked stalled");
            }
        }
        // Every live wake-list registration indexes a real slab slot.
        for key in 0..self.slots.len() {
            for wid in self.waiters.iter(key as u32) {
                assert!((wid as usize) < n, "wake list {key} names ghost msg {wid}");
            }
        }
    }

    /// Test support: assert every flattened buffer is fully rewound — the
    /// state a fresh simulator would have. Meant to be called right after
    /// [`Simulator::reset`] on a warm (previously run) instance to prove
    /// reuse leaks no stale occupancy bits, liveness flags, or wake-list
    /// nodes into the next run.
    #[doc(hidden)]
    pub fn assert_rewound(&self) {
        assert!(self.active.is_empty(), "active set survived reset");
        assert_eq!(
            self.free_list.len(),
            self.msgs.len(),
            "some slab slots not parked on the free list"
        );
        assert!(self.alive.iter().all(|&a| !a), "stale liveness bits");
        assert!(self.stalled.iter().all(|&s| !s), "stale stall bits");
        assert!(
            self.last_progress.iter().all(|&c| c == 0),
            "stale watchdog stamps"
        );
        assert!(
            self.msgs.iter().all(|m| m.path.is_empty()),
            "parked message still holds VCs"
        );
        assert_eq!(
            self.waiters.live_nodes(),
            0,
            "wake-list nodes survived reset"
        );
        assert!(self.slots.iter().all(|s| s.is_none()), "stale slot owners");
        assert!(
            self.occ_mask.iter().all(|&m| m == 0),
            "stale occupancy bits"
        );
        assert!(
            self.waiter_mask.iter().all(|&m| m == 0),
            "stale waiter bits"
        );
    }
}

/// All-ones mask over the low `num_vcs` bits (`u32::MAX` at the full
/// 32-VC width, where `1 << 32` would overflow).
#[inline]
fn vc_width_mask(num_vcs: u8) -> u32 {
    if num_vcs >= 32 {
        u32::MAX
    } else {
        (1u32 << num_vcs) - 1
    }
}

/// Expand one candidate hop's VC mask against the channel's occupancy
/// bitmask: free VCs append `(slot key, vc)` to `eligible`, occupied ones
/// append their slot key to `busy`, both in ascending VC order — exactly
/// the order the per-VC probe loop over `slots` used to produce, so the
/// allocator's RNG-visible candidate list is unchanged. `bits` must
/// already be clipped to the engine's VC width and `base` is the
/// channel's first slot key (`ch * num_vcs`).
#[inline]
fn expand_candidates(
    bits: u32,
    occ: u32,
    base: u32,
    eligible: &mut Vec<(u32, u8)>,
    busy: &mut Vec<u32>,
) {
    let mut free = bits & !occ;
    while free != 0 {
        let vc = free.trailing_zeros();
        free &= free - 1;
        eligible.push((base + vc, vc as u8));
    }
    let mut taken = bits & occ;
    while taken != 0 {
        let vc = taken.trailing_zeros();
        taken &= taken - 1;
        busy.push(base + vc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Arbitration;
    use wormsim_fault::FaultPattern;
    use wormsim_routing::{build_algorithm, AlgorithmKind, VcConfig};
    use wormsim_topology::{Coord, Mesh, Rect};

    fn make_sim(
        kind: AlgorithmKind,
        pattern: FaultPattern,
        rate: f64,
        cfg: SimConfig,
    ) -> Simulator {
        let mesh = Mesh::square(10);
        let ctx = Arc::new(RoutingContext::new(mesh, pattern));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let mut wl = Workload::paper_uniform(rate);
        wl.message_length = 20;
        Simulator::new(algo, ctx, wl, cfg)
    }

    fn fault_free() -> FaultPattern {
        FaultPattern::fault_free(&Mesh::square(10))
    }

    #[test]
    fn single_message_delivery_and_latency() {
        let mut sim = make_sim(AlgorithmKind::Duato, fault_free(), 0.0, SimConfig::quick());
        let mesh = Mesh::square(10);
        let (src, dest) = (mesh.node(0, 0), mesh.node(5, 0));
        let id = sim.inject_message(src, dest);
        assert!(sim.run_until_drained(1000));
        assert!(sim.is_delivered(id));
        // Uncontended wormhole: latency ≈ distance + length.
        // (Delivery isn't recorded in latency stats during warm-up; check
        // via drain cycles instead.)
        assert!(sim.cycle() >= 5 + 20);
        assert!(sim.cycle() < 5 + 20 + 10, "took {} cycles", sim.cycle());
    }

    #[test]
    fn every_algorithm_delivers_on_fault_free_mesh() {
        let mesh = Mesh::square(10);
        for kind in AlgorithmKind::ALL {
            let mut sim = make_sim(kind, fault_free(), 0.0, SimConfig::quick());
            let ids = vec![
                sim.inject_message(mesh.node(0, 0), mesh.node(9, 9)),
                sim.inject_message(mesh.node(9, 0), mesh.node(0, 9)),
                sim.inject_message(mesh.node(5, 5), mesh.node(2, 7)),
            ];
            assert!(sim.run_until_drained(2_000), "{kind:?} failed to drain");
            for id in ids {
                assert!(sim.is_delivered(id), "{kind:?} lost a message");
            }
            assert_eq!(sim.recoveries(), 0, "{kind:?} tripped the watchdog");
        }
    }

    #[test]
    fn delivery_around_fault_block() {
        let mesh = Mesh::square(10);
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))])
                .unwrap();
        for kind in AlgorithmKind::ALL {
            let mut sim = make_sim(kind, pattern.clone(), 0.0, SimConfig::quick());
            // Straight-line route blocked by the region.
            let id = sim.inject_message(mesh.node(3, 5), mesh.node(8, 5));
            assert!(sim.run_until_drained(3_000), "{kind:?} failed to drain");
            assert!(sim.is_delivered(id), "{kind:?} lost the message");
        }
    }

    #[test]
    fn wormhole_pipelining_rate() {
        // A lone message's tail should arrive ~1 flit/cycle after the head:
        // total ≈ dist + L, not dist × L.
        let mut sim = make_sim(AlgorithmKind::NHop, fault_free(), 0.0, SimConfig::quick());
        let mesh = Mesh::square(10);
        sim.inject_message(mesh.node(0, 0), mesh.node(9, 9));
        assert!(sim.run_until_drained(200));
        assert!(sim.cycle() < 18 + 20 + 10);
    }

    #[test]
    fn stochastic_run_produces_stats() {
        let cfg = SimConfig {
            warmup_cycles: 500,
            measure_cycles: 2_000,
            ..SimConfig::paper()
        };
        let mut sim = make_sim(AlgorithmKind::Duato, fault_free(), 0.002, cfg);
        let report = sim.run();
        assert!(report.throughput.messages_delivered() > 50);
        assert!(report.latency.count() > 0);
        assert!(report.mean_latency() >= 20.0);
        assert_eq!(report.recoveries, 0);
        // VC usage should show some busy channels.
        assert!(report.vc_usage.utilization().iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn incremental_vc_accounting_matches_path_scan() {
        // The incrementally maintained held-slot counts must equal a
        // brute-force scan over every active message's path after every
        // cycle — including cycles with tail drains, completions, and
        // watchdog recoveries (short timeout + faults force all three).
        let mesh = Mesh::square(10);
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))])
                .unwrap();
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 1_000,
            deadlock_timeout: 300,
            ..SimConfig::paper()
        };
        let mut sim = make_sim(AlgorithmKind::MinimalAdaptive, pattern, 0.01, cfg);
        for _ in 0..1_000 {
            sim.step();
            let mut scanned = vec![0u64; sim.num_vcs as usize];
            for &id in &sim.active {
                let m = &sim.msgs[id as usize];
                for e in &m.path {
                    scanned[sim.key_vc(e.key) as usize] += 1;
                }
            }
            assert_eq!(
                scanned,
                sim.vc_usage.held_counts(),
                "cycle {}: incremental held counts diverged from path scan",
                sim.cycle()
            );
        }
        assert!(sim.recoveries() > 0, "recovery release path unexercised");
    }

    #[test]
    fn full_run_reports_are_byte_identical_for_a_seed() {
        let mesh = Mesh::square(10);
        let pattern = FaultPattern::from_faulty_coords(&mesh, [Coord::new(5, 5)]).unwrap();
        let cfg = SimConfig {
            warmup_cycles: 300,
            measure_cycles: 1_200,
            ..SimConfig::paper()
        };
        let run = || {
            let mut sim = make_sim(AlgorithmKind::DuatoNbc, pattern.clone(), 0.006, cfg);
            serde_json::to_string(&sim.run()).expect("report serializes")
        };
        assert_eq!(
            run(),
            run(),
            "same-seed runs must produce identical reports"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 800,
            ..SimConfig::paper()
        };
        let run = |seed: u64| {
            let mut sim = make_sim(AlgorithmKind::Nbc, fault_free(), 0.003, cfg.with_seed(seed));
            let r = sim.run();
            (
                r.throughput.messages_delivered(),
                r.latency.count(),
                r.mean_latency(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn faulty_nodes_never_generate_or_receive() {
        let mesh = Mesh::square(10);
        let pattern = FaultPattern::from_faulty_coords(&mesh, [Coord::new(5, 5)]).unwrap();
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 1_000,
            ..SimConfig::paper()
        };
        let mut sim = make_sim(AlgorithmKind::FullyAdaptive, pattern, 0.004, cfg);
        let report = sim.run();
        // The faulty node must see zero flit arrivals.
        assert_eq!(report.node_load.arrivals()[mesh.node(5, 5).index()], 0);
        assert!(report.throughput.messages_delivered() > 0);
    }

    #[test]
    fn link_bandwidth_is_respected() {
        // Two messages sharing a column of links: delivered flits over N
        // cycles can't exceed N per link. Indirect check: drain time for
        // two overlapping 20-flit messages along one path ≥ 40 cycles.
        let mut sim = make_sim(
            AlgorithmKind::MinimalAdaptive,
            fault_free(),
            0.0,
            SimConfig::quick(),
        );
        let mesh = Mesh::square(10);
        sim.inject_message(mesh.node(0, 5), mesh.node(9, 5));
        sim.inject_message(mesh.node(0, 5), mesh.node(9, 5));
        assert!(sim.run_until_drained(500));
        // Single injection port: second message starts after the first's
        // tail leaves the source (~20 cycles); then pipelines behind it.
        assert!(sim.cycle() >= 2 * 20, "finished too fast: {}", sim.cycle());
    }

    #[test]
    fn report_includes_ring_load_only_with_faults() {
        let mesh = Mesh::square(10);
        let mut sim = make_sim(AlgorithmKind::Duato, fault_free(), 0.0, SimConfig::quick());
        sim.inject_message(mesh.node(0, 0), mesh.node(1, 0));
        assert!(sim.run_until_drained(100));
        assert!(sim.report().ring_load.is_none());

        let pattern = FaultPattern::from_faulty_coords(&mesh, [Coord::new(5, 5)]).unwrap();
        let mut sim = make_sim(AlgorithmKind::Duato, pattern, 0.0, SimConfig::quick());
        sim.inject_message(mesh.node(0, 0), mesh.node(1, 0));
        assert!(sim.run_until_drained(100));
        assert!(sim.report().ring_load.is_some());
    }

    #[test]
    fn invariants_hold_every_cycle_under_load() {
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 1_500,
            ..SimConfig::paper()
        };
        for kind in [
            AlgorithmKind::Duato,
            AlgorithmKind::PHop,
            AlgorithmKind::FullyAdaptive,
        ] {
            let mut sim = make_sim(kind, fault_free(), 0.01, cfg);
            for _ in 0..1_500 {
                sim.step();
                sim.check_invariants();
            }
        }
    }

    #[test]
    fn invariants_hold_with_faults_and_recovery() {
        let mesh = Mesh::square(10);
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))])
                .unwrap();
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 1_500,
            deadlock_timeout: 300, // force some recoveries
            ..SimConfig::paper()
        };
        let mut sim = make_sim(AlgorithmKind::MinimalAdaptive, pattern, 0.01, cfg);
        for _ in 0..1_500 {
            sim.step();
            sim.check_invariants();
        }
    }

    #[test]
    fn overlay_hops_counted_only_with_faults() {
        let mesh = Mesh::square(10);
        let mut sim = make_sim(AlgorithmKind::NHop, fault_free(), 0.0, SimConfig::quick());
        sim.inject_message(mesh.node(0, 5), mesh.node(9, 5));
        assert!(sim.run_until_drained(500));
        assert_eq!(sim.report().ring_hops, 0);

        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))])
                .unwrap();
        let mut sim = make_sim(AlgorithmKind::NHop, pattern, 0.0, SimConfig::quick());
        sim.inject_message(mesh.node(3, 5), mesh.node(8, 5));
        assert!(sim.run_until_drained(1_000));
        assert!(sim.report().ring_hops > 0, "detour must use overlay VCs");
    }

    #[test]
    fn misroutes_reported_for_fully_adaptive() {
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 4_000,
            ..SimConfig::paper()
        };
        let mut sim = make_sim(AlgorithmKind::FullyAdaptive, fault_free(), 0.01, cfg);
        let r = sim.run();
        // At saturation some messages misroute; the counter must move.
        // (Not asserting a magnitude — just that wiring works and minimal
        // algorithms stay at zero.)
        let _ = r.total_misroutes;
        let mut sim = make_sim(AlgorithmKind::MinimalAdaptive, fault_free(), 0.01, cfg);
        assert_eq!(sim.run().total_misroutes, 0);
    }

    /// Test fault driver: hands out pre-built activations at their cycles.
    struct ScriptedDriver {
        events: VecDeque<(u64, FaultActivation)>,
    }

    impl crate::fault_hook::FaultDriver for ScriptedDriver {
        fn poll(&mut self, cycle: u64) -> Option<FaultActivation> {
            if self.events.front().is_some_and(|(due, _)| *due <= cycle) {
                Some(self.events.pop_front().expect("front exists").1)
            } else {
                None
            }
        }
    }

    fn activation(
        base: &Arc<RoutingContext>,
        kind: AlgorithmKind,
        coords: &[Coord],
    ) -> FaultActivation {
        let pattern = base
            .pattern()
            .extend(base.mesh(), coords.iter().copied())
            .expect("extension acceptable");
        let ctx = Arc::new(base.with_pattern(pattern));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        FaultActivation {
            ctx,
            algo: algo.into(),
        }
    }

    fn install_events(sim: &mut Simulator, events: Vec<(u64, FaultActivation)>) {
        sim.install_fault_driver(Box::new(ScriptedDriver {
            events: events.into(),
        }));
    }

    #[test]
    fn chaos_abort_releases_vcs_and_redelivers() {
        let mesh = Mesh::square(10);
        let kind = AlgorithmKind::Duato;
        let mut sim = make_sim(kind, fault_free(), 0.0, SimConfig::quick());
        let base = sim.ctx.clone();
        // Kill (5,5) while the worm (0,5)→(9,5) is stretched across it.
        install_events(
            &mut sim,
            vec![(8, activation(&base, kind, &[Coord::new(5, 5)]))],
        );
        let id = sim.inject_message(mesh.node(0, 5), mesh.node(9, 5));
        for _ in 0..600 {
            sim.step();
            sim.check_invariants();
        }
        assert!(sim.is_delivered(id), "aborted message never redelivered");
        let rec = sim.recovery_stats().expect("driver installed");
        assert_eq!(rec.num_events(), 1);
        assert_eq!(rec.total_aborted(), 1);
        assert_eq!(rec.total_recovered(), 1);
        assert_eq!(rec.total_lost(), 0);
        assert_eq!(rec.events()[0].newly_faulty, 1);
        let mean = rec.mean_recovery_latency().expect("one recovery");
        // Backoff (16) + re-route around the block (≥ 9 hops + 20 flits).
        assert!(mean >= 16.0 + 29.0, "implausibly fast recovery: {mean}");
        // Every VC freed by the abort must be free or legitimately reowned.
        assert_eq!(sim.in_flight(), 0);
        assert!(sim.slots.iter().all(|s| s.is_none()));
    }

    #[test]
    fn chaos_kills_message_when_destination_dies() {
        let mesh = Mesh::square(10);
        let kind = AlgorithmKind::NHop;
        let mut sim = make_sim(kind, fault_free(), 0.0, SimConfig::quick());
        let base = sim.ctx.clone();
        install_events(
            &mut sim,
            vec![(5, activation(&base, kind, &[Coord::new(5, 5)]))],
        );
        let id = sim.inject_message(mesh.node(0, 0), mesh.node(5, 5));
        for _ in 0..200 {
            sim.step();
            sim.check_invariants();
        }
        assert!(sim.is_delivered(id), "lost message still marked alive");
        let rec = sim.recovery_stats().expect("driver installed");
        assert_eq!(rec.total_lost(), 1);
        assert_eq!(rec.total_aborted(), 0);
        assert_eq!(sim.in_flight(), 0);
        assert_eq!(sim.queued(), 0);
    }

    #[test]
    fn chaos_invariants_settling_and_requeues_under_load() {
        let kind = AlgorithmKind::MinimalAdaptive;
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 4_000,
            ..SimConfig::paper()
        };
        let mut sim = make_sim(kind, fault_free(), 0.006, cfg);
        let base = sim.ctx.clone();
        install_events(
            &mut sim,
            vec![(
                1_000,
                activation(&base, kind, &[Coord::new(4, 4), Coord::new(5, 5)]),
            )],
        );
        for _ in 0..4_000 {
            sim.step();
            sim.check_invariants();
        }
        let rec = sim.recovery_stats().expect("driver installed");
        assert_eq!(rec.num_events(), 1);
        let e = &rec.events()[0];
        assert_eq!(e.newly_faulty, 4, "diagonal pair coalesces to 2x2");
        assert!(e.pre_fault_rate > 0.0);
        assert!(
            e.aborted + e.requeued + e.lost > 0,
            "a mid-run fault under load must disturb some traffic"
        );
        let settle = e.settle_cycles.expect("light load must re-settle");
        assert!(
            settle >= cfg.settle_window,
            "settling can only be declared once the window holds post-fault cycles only"
        );
        // Traffic kept flowing after the event.
        assert!(sim.delivered() > 0);
    }

    #[test]
    fn chaos_runs_are_byte_identical_for_a_seed() {
        let kind = AlgorithmKind::DuatoNbc;
        let cfg = SimConfig {
            warmup_cycles: 300,
            measure_cycles: 2_000,
            ..SimConfig::paper()
        };
        let run = || {
            let mut sim = make_sim(kind, fault_free(), 0.005, cfg);
            let base = sim.ctx.clone();
            install_events(
                &mut sim,
                vec![
                    (800, activation(&base, kind, &[Coord::new(5, 5)])),
                    (1_500, {
                        let p1 = base
                            .pattern()
                            .extend(base.mesh(), [Coord::new(5, 5)])
                            .expect("first event acceptable");
                        let ctx1 = Arc::new(base.with_pattern(p1));
                        activation(&ctx1, kind, &[Coord::new(2, 7)])
                    }),
                ],
            );
            serde_json::to_string(&sim.run()).expect("report serializes")
        };
        let a = run();
        assert_eq!(a, run(), "same seed + schedule must be byte-identical");
        assert!(
            a.contains("\"recovery\""),
            "report must carry RecoveryStats"
        );
    }

    #[test]
    fn injection_port_serializes_messages() {
        let mut sim = make_sim(AlgorithmKind::Duato, fault_free(), 0.0, SimConfig::quick());
        let mesh = Mesh::square(10);
        for _ in 0..5 {
            sim.inject_message(mesh.node(2, 2), mesh.node(7, 7));
        }
        assert!(sim.run_until_drained(2_000));
        // 5 messages × 20 flits through one injection port ≥ 100 cycles.
        assert!(sim.cycle() >= 100);
    }

    fn make_traced_sim(
        kind: AlgorithmKind,
        pattern: FaultPattern,
        rate: f64,
        cfg: SimConfig,
    ) -> Simulator<wormsim_obs::VecSink> {
        let mesh = Mesh::square(10);
        let ctx = Arc::new(RoutingContext::new(mesh, pattern));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let mut wl = Workload::paper_uniform(rate);
        wl.message_length = 20;
        Simulator::with_sink(algo, ctx, wl, cfg, wormsim_obs::VecSink::new())
    }

    #[test]
    fn traced_run_report_is_byte_identical_to_untraced() {
        // The determinism contract behind zero-cost tracing: attaching a
        // sink observes the run without perturbing it. Same fixed-seed
        // faulty scenario as `full_run_reports_are_byte_identical_for_a_seed`.
        let mesh = Mesh::square(10);
        let pattern = FaultPattern::from_faulty_coords(&mesh, [Coord::new(5, 5)]).unwrap();
        let cfg = SimConfig {
            warmup_cycles: 300,
            measure_cycles: 1_200,
            ..SimConfig::paper()
        };
        let untraced = {
            let mut sim = make_sim(AlgorithmKind::DuatoNbc, pattern.clone(), 0.006, cfg);
            serde_json::to_string(&sim.run()).expect("report serializes")
        };
        let mut sim = make_traced_sim(AlgorithmKind::DuatoNbc, pattern, 0.006, cfg);
        let traced = serde_json::to_string(&sim.run()).expect("report serializes");
        assert_eq!(untraced, traced, "tracing perturbed the simulation");
        assert!(!sim.sink().events().is_empty(), "sink saw no events");
    }

    #[test]
    fn trace_replays_to_the_delivered_message_set() {
        // Deterministic manual-injection run on a faulty mesh: the event
        // stream must tell the complete story — every message Injects
        // exactly once, Delivers exactly once, in that order.
        let mesh = Mesh::square(10);
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))])
                .unwrap();
        let mut sim = make_traced_sim(AlgorithmKind::NHop, pattern, 0.0, SimConfig::quick());
        let n = 6u32;
        for i in 0..n {
            let src = mesh.node(1, (i % 3) as u16);
            let dest = mesh.node(8, 5 + (i % 4) as u16);
            sim.inject_message(src, dest);
        }
        assert!(sim.run_until_drained(5_000));
        assert_eq!(sim.recoveries(), 0, "clean replay needs no recoveries");
        let events = sim.into_sink().into_events();
        let all: std::collections::BTreeSet<u32> = (0..n).collect();
        let injected: std::collections::BTreeSet<u32> = events
            .iter()
            .filter(|e| e.kind == EventKind::Inject)
            .map(|e| e.msg)
            .collect();
        let delivered: std::collections::BTreeSet<u32> = events
            .iter()
            .filter(|e| e.kind == EventKind::Deliver)
            .map(|e| e.msg)
            .collect();
        assert_eq!(injected, all, "every message must trace an Inject");
        assert_eq!(delivered, all, "every message must trace a Deliver");
        for id in 0..n {
            let inj = events
                .iter()
                .find(|e| e.kind == EventKind::Inject && e.msg == id)
                .expect("inject exists");
            let del = events
                .iter()
                .find(|e| e.kind == EventKind::Deliver && e.msg == id)
                .expect("deliver exists");
            assert!(inj.cycle <= del.cycle, "m{id} delivered before injecting");
        }
        // Hops are traced too: each delivered message claimed ≥ 1 VC.
        for id in 0..n {
            assert!(
                events
                    .iter()
                    .any(|e| e.kind == EventKind::VcAcquire && e.msg == id),
                "m{id} delivered without a traced VC acquisition"
            );
        }
    }

    #[test]
    fn telemetry_time_series_covers_the_whole_run() {
        let mesh = Mesh::square(10);
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 1_000,
            ..SimConfig::paper()
        }
        .with_telemetry_window(50);
        let mut sim = make_sim(AlgorithmKind::Duato, fault_free(), 0.0, cfg);
        let n = 4u64;
        for i in 0..n {
            sim.inject_message(mesh.node(0, i as u16), mesh.node(9, 9 - i as u16));
        }
        assert!(sim.run_until_drained(2_000));
        let report = sim.report();
        let t = report.telemetry.expect("telemetry enabled");
        assert_eq!(t.window, 50);
        assert_eq!(
            t.windows.iter().map(|w| w.cycles).sum::<u64>(),
            sim.cycle(),
            "windows must tile the simulated cycles exactly"
        );
        assert_eq!(t.total_injected(), n);
        assert_eq!(t.total_delivered(), n);
        assert!(
            t.windows.iter().any(|w| w.mean_vc_held > 0.0),
            "in-flight worms must show up as held VCs"
        );
        // And without a window configured, the field stays None + off-wire.
        let mut sim = make_sim(AlgorithmKind::Duato, fault_free(), 0.0, SimConfig::quick());
        sim.inject_message(mesh.node(0, 0), mesh.node(1, 0));
        assert!(sim.run_until_drained(100));
        let report = sim.report();
        assert!(report.telemetry.is_none());
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("telemetry"));
    }

    #[test]
    fn forged_wait_cycle_is_diagnosed() {
        // Hand-build a three-message deadlock ring in the wait-for
        // structures and check the forensics name it: a waits on a slot
        // held by b, b on one held by c, c on one held by a.
        let mesh = Mesh::square(10);
        let mut sim = make_sim(AlgorithmKind::Duato, fault_free(), 0.0, SimConfig::quick());
        let ids: Vec<u32> = (0..3)
            .map(|i| sim.inject_message(mesh.node(i, 0), mesh.node(9, 9)).0)
            .collect();
        let keys = [0u32, 1, 2];
        for i in 0..3 {
            let holder = ids[(i + 1) % 3];
            sim.alloc[ids[i] as usize] = AllocPhase::Blocked;
            sim.slots[keys[i] as usize] = Some(holder);
            sim.occ_mask[(keys[i] / sim.num_vcs as u32) as usize] |=
                1 << (keys[i] % sim.num_vcs as u32);
            sim.waiters.register(keys[i], ids[i]);
            sim.waiter_mask[(keys[i] / sim.num_vcs as u32) as usize] |=
                1 << (keys[i] % sim.num_vcs as u32);
        }
        let diag = sim.diagnose_stall(Some(MsgId(ids[0])));
        assert_eq!(diag.edges.len(), 3);
        let cycle = diag.wait_cycle.as_ref().expect("forged ring found");
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ids, "cycle must name exactly the forged ring");
        let name = diag.names_resource().expect("resource named");
        assert!(name.starts_with("deadlock cycle:"), "{name}");
        let focus = diag.focus.as_ref().expect("focus snapshotted");
        assert_eq!(focus.id, ids[0]);
        assert!(focus.at_source);
        // Clean up the forgery so Drop-time invariants (if any) stay happy.
        for &key in &keys {
            sim.slots[key as usize] = None;
            sim.occ_mask[(key / sim.num_vcs as u32) as usize] &= !(1 << (key % sim.num_vcs as u32));
            sim.waiters.release(key);
            sim.waiter_mask[(key / sim.num_vcs as u32) as usize] &=
                !(1 << (key % sim.num_vcs as u32));
        }
    }

    #[test]
    fn organic_stall_produces_a_diagnosis() {
        // Same scenario that forces real watchdog recoveries in
        // `incremental_vc_accounting_matches_path_scan`: the diagnosis must
        // be captured as a value, not just printed. A traced sim is used
        // because the NullSink fast path skips diagnosis capture to stay
        // allocation-free (`diagnose_stall` still works on demand there).
        let mesh = Mesh::square(10);
        let pattern =
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 6))])
                .unwrap();
        let cfg = SimConfig {
            warmup_cycles: 0,
            measure_cycles: 1_000,
            deadlock_timeout: 300,
            ..SimConfig::paper()
        };
        let mut sim = make_traced_sim(AlgorithmKind::MinimalAdaptive, pattern, 0.01, cfg);
        for _ in 0..1_000 {
            sim.step();
        }
        assert!(sim.recoveries() > 0, "scenario must trip the watchdog");
        let diag = sim.last_stall().expect("diagnosis captured");
        assert!(diag.focus.is_some(), "watchdog always has a focus message");
        // The Display dump renders and carries the verdict line.
        let text = format!("{diag}");
        assert!(text.contains("[stall]"), "{text}");
        assert!(text.contains("verdict:"), "{text}");
    }

    /// Reference candidate gather: the per-VC probe loop over `slots` that
    /// [`expand_candidates`] replaced, kept as the oracle.
    fn expand_by_array_scan(
        mask: wormsim_routing::VcMask,
        num_vcs: u8,
        slots: &[Option<u32>],
        base: u32,
        eligible: &mut Vec<(u32, u8)>,
        busy: &mut Vec<u32>,
    ) {
        for vc in mask.iter() {
            if vc >= num_vcs {
                break;
            }
            let key = base + vc as u32;
            if slots[key as usize].is_none() {
                eligible.push((key, vc));
            } else {
                busy.push(key);
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn bitmask_expansion_matches_array_scan(
            mask_bits in proptest::prelude::any::<u32>(),
            occ_bits in proptest::prelude::any::<u32>(),
            num_vcs in 1u8..=32,
            ch in 0u32..16,
        ) {
            let allowed = vc_width_mask(num_vcs);
            let occ = occ_bits & allowed;
            // Materialize the occupancy mask as a slots array for the
            // oracle (owner id is irrelevant to the scan).
            let mut slots = vec![None; 16 * num_vcs as usize];
            let base = ch * num_vcs as u32;
            for vc in 0..num_vcs as u32 {
                if occ & (1 << vc) != 0 {
                    slots[(base + vc) as usize] = Some(0u32);
                }
            }
            let mask = wormsim_routing::VcMask(mask_bits);
            let (mut e1, mut b1) = (Vec::new(), Vec::new());
            expand_candidates(mask.0 & allowed, occ, base, &mut e1, &mut b1);
            let (mut e2, mut b2) = (Vec::new(), Vec::new());
            expand_by_array_scan(mask, num_vcs, &slots, base, &mut e2, &mut b2);
            proptest::prop_assert_eq!(e1, e2);
            proptest::prop_assert_eq!(b1, b2);
        }
    }

    #[test]
    fn reset_reuses_slab_and_matches_fresh_run() {
        // A simulator reset between runs — algorithm, pattern, rate, and
        // seed all changing — must produce reports byte-identical to fresh
        // construction, including under oldest-first arbitration where
        // recycled message ids act as tie-breakers.
        let mesh = Mesh::square(10);
        let cases = [
            (AlgorithmKind::Duato, 0.004, 11, Arbitration::Random),
            (AlgorithmKind::Nbc, 0.008, 22, Arbitration::OldestFirst),
            (AlgorithmKind::FullyAdaptive, 0.002, 33, Arbitration::Random),
        ];
        let patterns = [
            FaultPattern::fault_free(&mesh),
            FaultPattern::from_rects(&mesh, &[Rect::new(Coord::new(4, 4), Coord::new(5, 5))])
                .unwrap(),
            FaultPattern::fault_free(&mesh),
        ];
        let mut reused = make_sim(AlgorithmKind::Xy, fault_free(), 0.001, SimConfig::quick());
        let _ = reused.run();
        for ((kind, rate, seed, arb), pattern) in cases.into_iter().zip(patterns) {
            let cfg = SimConfig {
                warmup_cycles: 100,
                measure_cycles: 400,
                ..SimConfig::quick().with_seed(seed).with_arbitration(arb)
            };
            let ctx = Arc::new(RoutingContext::new(mesh.clone(), pattern));
            let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
            let wl = Workload::paper_uniform(rate);
            reused.reset(algo, ctx.clone(), wl.clone(), cfg);
            let warm = reused.run();
            reused.check_invariants();
            let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
            let fresh = Simulator::new(algo, ctx, wl, cfg).run();
            assert_eq!(
                serde_json::to_string(&warm).unwrap(),
                serde_json::to_string(&fresh).unwrap(),
                "reset-reused run diverged for {kind:?}"
            );
        }
    }
}
