//! Tabular figure data with Markdown and CSV rendering.

use serde::{Deserialize, Serialize};

/// A labeled 2-D table of floats: one row per sweep point, one column per
/// series (algorithm).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Label of the row key (e.g. "rate", "faults %").
    pub row_label: String,
    /// Column (series) names.
    pub columns: Vec<String>,
    /// `(row key, values)` — `values.len() == columns.len()`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Create an empty table.
    pub fn new(
        title: impl Into<String>,
        row_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            row_label: row_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the width disagrees with the header.
    pub fn push_row(&mut self, key: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((key.into(), values));
    }

    /// Value lookup by row key and column name.
    pub fn get(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|n| n == column)?;
        let (_, values) = self.rows.iter().find(|(k, _)| k == row)?;
        Some(values[c])
    }

    /// A whole column by name.
    pub fn column(&self, column: &str) -> Option<Vec<f64>> {
        let c = self.columns.iter().position(|n| n == column)?;
        Some(self.rows.iter().map(|(_, v)| v[c]).collect())
    }

    /// Render as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.row_label));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (key, values) in &self.rows {
            out.push_str(&format!("| {key} |"));
            for v in values {
                out.push_str(&format!(" {} |", fmt_value(*v)));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_label.replace(',', ";"));
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.replace(',', ";"));
        }
        out.push('\n');
        for (key, values) in &self.rows {
            out.push_str(&key.replace(',', ";"));
            for v in values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Render the table as a terminal braille line chart: the row keys are
    /// parsed as x values (their numeric prefix; falling back to the row
    /// index), each column becomes a series.
    pub fn to_line_chart(&self, width: usize, height: usize) -> String {
        let xs: Vec<f64> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, (key, _))| parse_numeric_prefix(key).unwrap_or(i as f64))
            .collect();
        let mut chart = wormsim_viz::LineChart::new(width, height).with_title(self.title.clone());
        for (ci, name) in self.columns.iter().enumerate() {
            let points: Vec<(f64, f64)> = self
                .rows
                .iter()
                .enumerate()
                .map(|(ri, (_, values))| (xs[ri], values[ci]))
                .collect();
            chart = chart.with_series(wormsim_viz::Series::new(name.clone(), points));
        }
        chart.render()
    }

    /// Render the table as a horizontal bar chart: one entry per row, one
    /// bar per column.
    pub fn to_bar_chart(&self, width: usize) -> String {
        let mut bars = wormsim_viz::BarChart::new(width)
            .with_title(self.title.clone())
            .with_series_names(self.columns.clone());
        for (key, values) in &self.rows {
            bars.push(key.clone(), values.clone());
        }
        bars.render()
    }
}

/// Parse the leading numeric portion of a row key ("0.0051", "5%", "24",
/// "10×10" → 0.0051, 5, 24, 10).
fn parse_numeric_prefix(s: &str) -> Option<f64> {
    let end = s
        .char_indices()
        .take_while(|(_, c)| c.is_ascii_digit() || *c == '.' || *c == '-')
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    s[..end].parse().ok()
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "—".to_string()
    } else if v == 0.0 || v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Test", "rate", vec!["A".into(), "B".into()]);
        t.push_row("0.001", vec![0.5, 1500.0]);
        t.push_row("0.002", vec![f64::NAN, 2.25]);
        t
    }

    #[test]
    fn lookup() {
        let t = table();
        assert_eq!(t.get("0.001", "A"), Some(0.5));
        assert_eq!(t.get("0.002", "B"), Some(2.25));
        assert_eq!(t.get("0.003", "A"), None);
        assert_eq!(t.get("0.001", "C"), None);
        assert_eq!(t.column("B"), Some(vec![1500.0, 2.25]));
    }

    #[test]
    fn markdown_format() {
        let md = table().to_markdown();
        assert!(md.contains("### Test"));
        assert!(md.contains("| rate | A | B |"));
        assert!(md.contains("| 0.001 | 0.5000 | 1500.0 |"));
        assert!(md.contains("—"), "NaN rendered as em dash");
    }

    #[test]
    fn csv_format() {
        let csv = table().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rate,A,B"));
        assert_eq!(lines.next(), Some("0.001,0.5,1500"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", "r", vec!["A".into()]);
        t.push_row("x", vec![1.0, 2.0]);
    }

    #[test]
    fn numeric_prefix_parsing() {
        assert_eq!(parse_numeric_prefix("0.0051"), Some(0.0051));
        assert_eq!(parse_numeric_prefix("5%"), Some(5.0));
        assert_eq!(parse_numeric_prefix("10×10"), Some(10.0));
        assert_eq!(parse_numeric_prefix("VC12"), None);
    }

    #[test]
    fn line_chart_renders_series() {
        let chart = table().to_line_chart(40, 8);
        assert!(chart.contains("Test"));
        assert!(chart.contains("series: A, B"));
    }

    #[test]
    fn bar_chart_renders_rows() {
        let bars = table().to_bar_chart(20);
        assert!(bars.contains("0.001"));
        assert!(bars.contains("[A]"));
        assert!(bars.contains('—'), "NaN shown as dash");
    }
}
