//! Ablation studies beyond the paper's figures: how the design parameters
//! the paper fixes (VC budget, message length, buffer depth, traffic
//! pattern, misroute cap, arbitration, mesh radix) move the results, plus
//! the turn-model baseline comparison. Each returns a [`FigureResult`] so
//! the `ablations` binary renders them like the paper figures.

use crate::config::ExperimentConfig;
use crate::figures::{paper_52_layout, FigureResult, ANALYSIS_RATE, FULL_LOAD_RATE};
use crate::runner::{derive_seed, parallel_map_with_progress, run_custom, CustomSpec};
use crate::table::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use wormsim_engine::Arbitration;
use wormsim_fault::{random_pattern, FaultPattern};
use wormsim_routing::{min_total_vcs, AlgorithmKind, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::{TrafficPattern, Workload};

fn base_spec(cfg: &ExperimentConfig, kind: AlgorithmKind, rate: f64, seed: u64) -> CustomSpec {
    let mesh = Mesh::square(cfg.mesh_size);
    CustomSpec {
        mesh_size: cfg.mesh_size,
        vc: cfg.vc,
        sim: cfg.sim.with_seed(seed),
        kind,
        pattern: Arc::new(FaultPattern::fault_free(&mesh)),
        workload: Workload::paper_uniform(rate),
    }
}

/// **VC budget** — saturation throughput and latency as the per-channel VC
/// count varies. The paper fixes 24; this shows what that choice buys.
/// Combinations below an algorithm's structural minimum are skipped (NaN).
pub fn ablation_vc_budget(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = [
        AlgorithmKind::NHop,
        AlgorithmKind::Nbc,
        AlgorithmKind::Duato,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::MinimalAdaptive,
        AlgorithmKind::BouraAdaptive,
    ];
    let budgets = [8u8, 12, 16, 20, 24, 32];
    let mesh = Mesh::square(cfg.mesh_size);
    let mut specs = Vec::new();
    let mut index = Vec::new();
    for (bi, &total) in budgets.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            if total < min_total_vcs(kind, &mesh, 4) {
                continue;
            }
            let mut s = base_spec(
                cfg,
                kind,
                ANALYSIS_RATE,
                derive_seed(cfg.base_seed, 10, bi as u64, ki as u64),
            );
            s.vc = VcConfig::with_total(total);
            index.push((bi, ki, specs.len()));
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "vc budget ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut thr = Table::new(
        "Saturation throughput vs VC budget (uniform traffic, near-saturation load)",
        "VCs/channel",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    let mut lat = Table::new(
        "Network latency vs VC budget",
        "VCs/channel",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (bi, &total) in budgets.iter().enumerate() {
        let mut t_row = vec![f64::NAN; kinds.len()];
        let mut l_row = vec![f64::NAN; kinds.len()];
        for &(b, k, si) in &index {
            if b == bi {
                t_row[k] = reports[si].normalized_throughput();
                l_row[k] = reports[si].mean_network_latency();
            }
        }
        thr.push_row(format!("{total}"), t_row);
        lat.push_row(format!("{total}"), l_row);
    }
    FigureResult {
        id: "ablation_vc_budget",
        title: "Ablation: virtual-channel budget".into(),
        tables: vec![thr, lat],
        notes: vec![
            "4 of the budget are always BC overlay VCs; '—' = algorithm needs more VCs".into(),
            format!("rate {ANALYSIS_RATE}, fault-free"),
        ],
    }
}

/// **Message length** — the literature's common 32/64/100-flit choices
/// (paper §5 cites all three, uses 100).
pub fn ablation_message_length(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = [
        AlgorithmKind::NHop,
        AlgorithmKind::PHop,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::MinimalAdaptive,
    ];
    let lengths = [32u32, 64, 100];
    let mut specs = Vec::new();
    for (li, &len) in lengths.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            let mut s = base_spec(
                cfg,
                kind,
                // Offer the same flit load (0.4 flits/node/cycle) at every
                // length so the comparison is load-matched.
                0.4 / len as f64,
                derive_seed(cfg.base_seed, 11, li as u64, ki as u64),
            );
            s.workload.message_length = len;
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "message length ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut thr = Table::new(
        "Saturation throughput vs message length (offered 0.4 flits/node/cycle)",
        "flits/message",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    let mut lat = Table::new(
        "Network latency vs message length",
        "flits/message",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (li, &len) in lengths.iter().enumerate() {
        thr.push_row(
            format!("{len}"),
            (0..kinds.len())
                .map(|ki| reports[li * kinds.len() + ki].normalized_throughput())
                .collect(),
        );
        lat.push_row(
            format!("{len}"),
            (0..kinds.len())
                .map(|ki| reports[li * kinds.len() + ki].mean_network_latency())
                .collect(),
        );
    }
    FigureResult {
        id: "ablation_message_length",
        title: "Ablation: message length".into(),
        tables: vec![thr, lat],
        notes: vec![
            "32/64/100 flits are the lengths the paper's §5 cites from the literature".into(),
        ],
    }
}

/// **Buffer depth** — per-VC input buffer depth (paper unspecified; we
/// default to 2).
pub fn ablation_buffer_depth(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = [
        AlgorithmKind::NHop,
        AlgorithmKind::Duato,
        AlgorithmKind::MinimalAdaptive,
    ];
    let depths = [1u8, 2, 4, 8];
    let mut specs = Vec::new();
    for (di, &depth) in depths.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            let mut s = base_spec(
                cfg,
                kind,
                ANALYSIS_RATE,
                derive_seed(cfg.base_seed, 12, di as u64, ki as u64),
            );
            s.sim.buffer_depth = depth;
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "buffer depth ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut thr = Table::new(
        "Saturation throughput vs per-VC buffer depth",
        "flits/VC buffer",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (di, &depth) in depths.iter().enumerate() {
        thr.push_row(
            format!("{depth}"),
            (0..kinds.len())
                .map(|ki| reports[di * kinds.len() + ki].normalized_throughput())
                .collect(),
        );
    }
    FigureResult {
        id: "ablation_buffer_depth",
        title: "Ablation: per-VC buffer depth".into(),
        tables: vec![thr],
        notes: vec![format!("rate {ANALYSIS_RATE}, fault-free")],
    }
}

/// **Traffic pattern** — uniform vs transpose vs bit-reversal vs hotspot.
pub fn ablation_traffic_patterns(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = [
        AlgorithmKind::NHop,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::MinimalAdaptive,
        AlgorithmKind::Xy,
    ];
    let mesh = Mesh::square(cfg.mesh_size);
    let hotspot = mesh.node(cfg.mesh_size / 2, cfg.mesh_size / 2);
    let patterns: Vec<(&str, TrafficPattern)> = vec![
        ("uniform", TrafficPattern::Uniform),
        ("transpose", TrafficPattern::Transpose),
        ("bit-reversal", TrafficPattern::BitReversal),
        (
            "hotspot 10%",
            TrafficPattern::Hotspot {
                node: hotspot,
                permille: 100,
            },
        ),
    ];
    let mut specs = Vec::new();
    for (pi, (_, tp)) in patterns.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            let mut s = base_spec(
                cfg,
                kind,
                ANALYSIS_RATE,
                derive_seed(cfg.base_seed, 13, pi as u64, ki as u64),
            );
            s.workload.pattern = *tp;
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "traffic patterns ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut thr = Table::new(
        "Saturation throughput vs traffic pattern",
        "pattern",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    let mut lat = Table::new(
        "Network latency vs traffic pattern",
        "pattern",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (pi, (name, _)) in patterns.iter().enumerate() {
        thr.push_row(
            name.to_string(),
            (0..kinds.len())
                .map(|ki| reports[pi * kinds.len() + ki].normalized_throughput())
                .collect(),
        );
        lat.push_row(
            name.to_string(),
            (0..kinds.len())
                .map(|ki| reports[pi * kinds.len() + ki].mean_network_latency())
                .collect(),
        );
    }
    FigureResult {
        id: "ablation_traffic",
        title: "Ablation: traffic pattern".into(),
        tables: vec![thr, lat],
        notes: vec![format!("rate {ANALYSIS_RATE}, fault-free")],
    }
}

/// **Misroute limit** — Fully-Adaptive's cap (paper: 10) swept, fault-free
/// and at 10 % faults.
pub fn ablation_misroute_limit(cfg: &ExperimentConfig) -> FigureResult {
    let limits = [0u8, 2, 10, 30];
    let mesh = Mesh::square(cfg.mesh_size);
    let mut rng = SmallRng::seed_from_u64(derive_seed(cfg.base_seed, 14, 0, 0));
    let faulty = random_pattern(&mesh, 10, &mut rng).expect("pattern");
    let cases: Vec<(&str, Arc<FaultPattern>)> = vec![
        ("fault-free", Arc::new(FaultPattern::fault_free(&mesh))),
        ("10% faults", Arc::new(faulty)),
    ];
    let mut specs = Vec::new();
    for (li, &limit) in limits.iter().enumerate() {
        for (ci, (_, p)) in cases.iter().enumerate() {
            let mut s = base_spec(
                cfg,
                AlgorithmKind::FullyAdaptive,
                ANALYSIS_RATE,
                derive_seed(cfg.base_seed, 14, li as u64, ci as u64 + 1),
            );
            s.vc = VcConfig {
                misroute_limit: limit,
                ..cfg.vc
            };
            s.pattern = p.clone();
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "misroute limit ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut thr = Table::new(
        "Fully-Adaptive throughput vs misroute limit",
        "misroute cap",
        cases.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for (li, &limit) in limits.iter().enumerate() {
        thr.push_row(
            format!("{limit}"),
            (0..cases.len())
                .map(|ci| reports[li * cases.len() + ci].normalized_throughput())
                .collect(),
        );
    }
    FigureResult {
        id: "ablation_misroute",
        title: "Ablation: Fully-Adaptive misroute cap".into(),
        tables: vec![thr],
        notes: vec!["paper fixes the cap at 10".into()],
    }
}

/// **Arbitration** — the paper's random conflict resolution vs
/// oldest-first, at full load over the §5.2 fault layout. Motivated by the
/// starvation analysis in DESIGN.md §3.7.
pub fn ablation_arbitration(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = [
        AlgorithmKind::NHop,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::PHop,
    ];
    let mesh = Mesh::square(cfg.mesh_size);
    let pattern = Arc::new(paper_52_layout(&mesh));
    let arbs = [
        ("random", Arbitration::Random),
        ("oldest-first", Arbitration::OldestFirst),
    ];
    let mut specs = Vec::new();
    for (ai, (_, arb)) in arbs.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            let mut s = base_spec(
                cfg,
                kind,
                FULL_LOAD_RATE,
                derive_seed(cfg.base_seed, 15, ai as u64, ki as u64),
            );
            s.sim = s.sim.with_arbitration(*arb);
            s.pattern = pattern.clone();
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "arbitration ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut table = Table::new(
        "Throughput / latency / recoveries by arbitration policy (§5.2 layout, full load)",
        "policy / metric",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (ai, (name, _)) in arbs.iter().enumerate() {
        table.push_row(
            format!("{name}: throughput"),
            (0..kinds.len())
                .map(|ki| reports[ai * kinds.len() + ki].normalized_throughput())
                .collect(),
        );
        table.push_row(
            format!("{name}: latency"),
            (0..kinds.len())
                .map(|ki| reports[ai * kinds.len() + ki].mean_network_latency())
                .collect(),
        );
        table.push_row(
            format!("{name}: recoveries"),
            (0..kinds.len())
                .map(|ki| reports[ai * kinds.len() + ki].recoveries as f64)
                .collect(),
        );
    }
    FigureResult {
        id: "ablation_arbitration",
        title: "Ablation: allocation arbitration policy".into(),
        tables: vec![table],
        notes: vec![
            "random arbitration admits unbounded starvation on contended BC VCs; oldest-first is starvation-free".into(),
        ],
    }
}

/// **Turn-model baselines** — deterministic XY and the Glass–Ni turn
/// models against the paper's best adaptive algorithms, fault-free and at
/// 10 % faults.
pub fn ablation_turn_models(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = [
        AlgorithmKind::Xy,
        AlgorithmKind::WestFirst,
        AlgorithmKind::NorthLast,
        AlgorithmKind::NegativeFirst,
        AlgorithmKind::NHop,
        AlgorithmKind::DuatoNbc,
    ];
    let mesh = Mesh::square(cfg.mesh_size);
    let mut rng = SmallRng::seed_from_u64(derive_seed(cfg.base_seed, 16, 0, 0));
    let faulty = random_pattern(&mesh, 10, &mut rng).expect("pattern");
    let cases: Vec<(&str, Arc<FaultPattern>)> = vec![
        ("fault-free", Arc::new(FaultPattern::fault_free(&mesh))),
        ("10% faults", Arc::new(faulty)),
    ];
    let mut specs = Vec::new();
    for (ci, (_, p)) in cases.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            let mut s = base_spec(
                cfg,
                kind,
                ANALYSIS_RATE,
                derive_seed(cfg.base_seed, 16, ci as u64, ki as u64 + 1),
            );
            s.pattern = p.clone();
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "turn models ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut thr = Table::new(
        "Saturation throughput: turn-model baselines vs adaptive roster",
        "case",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    let mut lat = Table::new(
        "Network latency: turn-model baselines vs adaptive roster",
        "case",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (ci, (name, _)) in cases.iter().enumerate() {
        thr.push_row(
            name.to_string(),
            (0..kinds.len())
                .map(|ki| reports[ci * kinds.len() + ki].normalized_throughput())
                .collect(),
        );
        lat.push_row(
            name.to_string(),
            (0..kinds.len())
                .map(|ki| reports[ci * kinds.len() + ki].mean_network_latency())
                .collect(),
        );
    }
    FigureResult {
        id: "ablation_turn_models",
        title: "Ablation: deterministic / turn-model baselines".into(),
        tables: vec![thr, lat],
        notes: vec![format!(
            "rate {ANALYSIS_RATE}; all baselines BC-fortified like the roster"
        )],
    }
}

/// **Mesh radix** — the study repeated on 6×6 … 14×14 meshes for one
/// representative algorithm pair; the VC budget scales with the radix
/// (PHop-family class counts grow with the diameter).
pub fn ablation_mesh_size(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = [
        AlgorithmKind::NHop,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::Duato,
    ];
    let sizes = [6u16, 8, 10, 12, 14];
    let mut specs = Vec::new();
    for (si, &k) in sizes.iter().enumerate() {
        let mesh = Mesh::square(k);
        for (ki, &kind) in kinds.iter().enumerate() {
            let needed = min_total_vcs(kind, &mesh, 4).max(24);
            // Bisection-limited saturation scales ~2/k flits/node/cycle;
            // offering 0.6/k flits (= 0.006/k messages at 100 flits) sits
            // past saturation at every size.
            let rate = 0.6 / k as f64 / 100.0;
            let mut s = base_spec(
                cfg,
                kind,
                rate,
                derive_seed(cfg.base_seed, 17, si as u64, ki as u64),
            );
            s.mesh_size = k;
            s.pattern = Arc::new(FaultPattern::fault_free(&mesh));
            s.vc = VcConfig::with_total(needed);
            specs.push(s);
        }
    }
    let reports = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "mesh size ablation",
        |s| run_custom(s).expect("runnable spec"),
    );
    let mut thr = Table::new(
        "Saturation throughput vs mesh radix (offered 0.6/k flits/node/cycle)",
        "mesh",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    let mut lat = Table::new(
        "Network latency vs mesh radix",
        "mesh",
        kinds.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (si, &k) in sizes.iter().enumerate() {
        thr.push_row(
            format!("{k}×{k}"),
            (0..kinds.len())
                .map(|ki| reports[si * kinds.len() + ki].normalized_throughput())
                .collect(),
        );
        lat.push_row(
            format!("{k}×{k}"),
            (0..kinds.len())
                .map(|ki| reports[si * kinds.len() + ki].mean_network_latency())
                .collect(),
        );
    }
    FigureResult {
        id: "ablation_mesh_size",
        title: "Ablation: mesh radix".into(),
        tables: vec![thr, lat],
        notes: vec![
            "VC budget per size = max(24, algorithm minimum); rate scales with 1/k (bisection)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn tiny() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 100;
        cfg.sim.measure_cycles = 400;
        cfg
    }

    #[test]
    fn vc_budget_skips_infeasible() {
        let fig = ablation_vc_budget(&tiny());
        let thr = &fig.tables[0];
        // NHop needs ≥ 14 VCs → the 8 and 12 rows are NaN for it.
        assert!(thr.get("8", "NHop").unwrap().is_nan());
        assert!(thr.get("12", "NHop").unwrap().is_nan());
        assert!(!thr.get("16", "NHop").unwrap().is_nan());
        // Duato fits everywhere.
        assert!(!thr.get("8", "Duato's routing").unwrap().is_nan());
    }

    #[test]
    fn turn_models_run() {
        let fig = ablation_turn_models(&tiny());
        assert_eq!(fig.tables[0].rows.len(), 2);
        for (_, values) in &fig.tables[0].rows {
            for v in values {
                assert!(*v >= 0.0);
            }
        }
    }

    #[test]
    fn mesh_size_scales_budgets() {
        let mesh14 = Mesh::square(14);
        // PHop on 14×14 needs 26 classes + 4 BC = 30 > 24.
        assert!(min_total_vcs(AlgorithmKind::PHop, &mesh14, 4) > 24);
        // The swept kinds all fit their scaled budgets.
        for kind in [
            AlgorithmKind::NHop,
            AlgorithmKind::DuatoNbc,
            AlgorithmKind::Duato,
        ] {
            assert!(min_total_vcs(kind, &mesh14, 4) <= 24.max(min_total_vcs(kind, &mesh14, 4)));
        }
    }

    #[test]
    fn arbitration_ablation_shape() {
        let fig = ablation_arbitration(&tiny());
        let t = &fig.tables[0];
        assert_eq!(t.rows.len(), 6); // 2 policies × 3 metrics
        assert_eq!(t.columns.len(), 3);
    }
}
