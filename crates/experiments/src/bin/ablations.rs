//! Run the ablation studies (extensions beyond the paper's figures).
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin ablations -- all --quick
//! cargo run --release -p wormsim-experiments --bin ablations -- vc_budget arbitration
//! ```

use std::time::Instant;
use wormsim_experiments::{
    ablation_arbitration, ablation_buffer_depth, ablation_mesh_size, ablation_message_length,
    ablation_misroute_limit, ablation_traffic_patterns, ablation_turn_models, ablation_vc_budget,
    ExperimentConfig, FigureResult, Progress, Scale,
};

const NAMES: [&str; 8] = [
    "vc_budget",
    "message_length",
    "buffer_depth",
    "traffic",
    "misroute",
    "arbitration",
    "turn_models",
    "mesh_size",
];

fn usage() -> ! {
    eprintln!(
        "usage: ablations <{}|all> [--quick] [--plot] [--seed N] [--threads N] [--out DIR] \
         [--quiet]",
        NAMES.join("|")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut which: Vec<String> = Vec::new();
    let mut scale = Scale::Paper;
    let mut seed = None;
    let mut threads = None;
    let mut out_dir = "results".to_string();
    let mut plot = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            s if NAMES.contains(&s) => which.push(s.to_string()),
            "all" => which.extend(NAMES.iter().map(|s| s.to_string())),
            "--quick" => scale = Scale::Quick,
            "--plot" => plot = true,
            "--quiet" => quiet = true,
            "--seed" => seed = Some(it.next().unwrap_or_else(|| usage()).parse().expect("seed")),
            "--threads" => {
                threads = Some(
                    it.next()
                        .unwrap_or_else(|| usage())
                        .parse()
                        .expect("threads"),
                )
            }
            "--out" => out_dir = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }
    if which.is_empty() {
        usage();
    }
    let progress = Progress::from_quiet_flag(quiet);
    let mut cfg = ExperimentConfig::new(scale).with_progress(progress);
    if let Some(s) = seed {
        cfg = cfg.with_seed(s);
    }
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    progress.out(format_args!(
        "# wormsim ablation studies ({:?} scale, seed {}, {} threads)\n",
        scale, cfg.base_seed, cfg.threads
    ));
    for name in which {
        let t = Instant::now();
        let fig: FigureResult = match name.as_str() {
            "vc_budget" => ablation_vc_budget(&cfg),
            "message_length" => ablation_message_length(&cfg),
            "buffer_depth" => ablation_buffer_depth(&cfg),
            "traffic" => ablation_traffic_patterns(&cfg),
            "misroute" => ablation_misroute_limit(&cfg),
            "arbitration" => ablation_arbitration(&cfg),
            "turn_models" => ablation_turn_models(&cfg),
            "mesh_size" => ablation_mesh_size(&cfg),
            _ => unreachable!(),
        };
        let elapsed = t.elapsed();
        let mut md = format!("## {}\n\n", fig.title);
        for note in &fig.notes {
            md.push_str(&format!("- {note}\n"));
        }
        md.push('\n');
        for (i, table) in fig.tables.iter().enumerate() {
            md.push_str(&table.to_markdown());
            md.push('\n');
            if plot {
                // Wide tables read better as line charts; bar-style data
                // (few columns) as bars.
                let chart = if table.columns.len() >= 4 {
                    table.to_line_chart(70, 14)
                } else {
                    table.to_bar_chart(50)
                };
                md.push_str("```text\n");
                md.push_str(&chart);
                md.push_str("```\n\n");
            }
            let suffix = if fig.tables.len() > 1 {
                format!("_{}", (b'a' + i as u8) as char)
            } else {
                String::new()
            };
            std::fs::write(format!("{out_dir}/{}{suffix}.csv", fig.id), table.to_csv())
                .expect("write csv");
        }
        md.push_str(&format!("_generated in {elapsed:.2?}_\n"));
        std::fs::write(
            format!("{out_dir}/{}.json", fig.id),
            serde_json::to_string_pretty(&fig).expect("figure serializes"),
        )
        .expect("write json");
        std::fs::write(format!("{out_dir}/{}.md", fig.id), &md).expect("write md");
        progress.out(format_args!("{md}"));
    }
}
