//! Run the dynamic-fault study: mid-run node failures, in-flight recovery,
//! and post-fault re-convergence across three routing algorithms.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin dynamic_faults
//! cargo run --release -p wormsim-experiments --bin dynamic_faults -- \
//!     --quick --seed 7 --threads 4 --out results --check-determinism
//! ```
//!
//! `--check-determinism` additionally runs one chaos scenario twice with
//! the same seed, asserts the two `SimReport`s (including `RecoveryStats`)
//! are byte-identical, and prints the report's FNV-1a fingerprint — the
//! same convention `bench_engine` uses for the static engine.

use std::time::Instant;
use wormsim_chaos::{run_chaos, FaultEvent, FaultSchedule};
use wormsim_experiments::{dynamic_faults, ExperimentConfig, Progress, Scale, DYNAMIC_RATE};
use wormsim_fault::FaultPattern;
use wormsim_routing::{AlgorithmKind, VcConfig};
use wormsim_topology::{Coord, Mesh};
use wormsim_traffic::Workload;

fn usage() -> ! {
    eprintln!(
        "usage: dynamic_faults [--quick] [--plot] [--seed N] [--threads N] [--out DIR] \
         [--check-determinism] [--quiet]"
    );
    std::process::exit(2);
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run one fixed chaos scenario twice and assert byte-identical reports.
fn check_determinism(cfg: &ExperimentConfig) {
    let mesh = Mesh::square(cfg.mesh_size);
    let base = FaultPattern::fault_free(&mesh);
    let arrival = cfg.sim.warmup_cycles + cfg.sim.measure_cycles / 4;
    let schedule = FaultSchedule::new(
        &mesh,
        &base,
        vec![FaultEvent {
            cycle: arrival,
            coords: vec![Coord::new(4, 4), Coord::new(5, 4)],
        }],
    )
    .expect("fixed scenario is acceptable");
    let run = || {
        let report = run_chaos(
            mesh.clone(),
            base.clone(),
            &schedule,
            AlgorithmKind::Duato,
            VcConfig::paper(),
            Workload::paper_uniform(DYNAMIC_RATE),
            cfg.sim.with_seed(cfg.base_seed),
        )
        .expect("fixed scenario runs");
        serde_json::to_string_pretty(&report).expect("report serializes")
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a, b,
        "same seed + schedule must give byte-identical reports"
    );
    assert!(
        a.contains("\"recovery\""),
        "chaos report must carry RecoveryStats"
    );
    println!(
        "determinism check passed: chaos report fingerprint {:016x}",
        fnv1a(a.as_bytes())
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut seed = None;
    let mut threads = None;
    let mut out_dir = "results".to_string();
    let mut plot = false;
    let mut determinism = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--plot" => plot = true,
            "--quiet" => quiet = true,
            "--seed" => seed = Some(it.next().unwrap_or_else(|| usage()).parse().expect("seed")),
            "--threads" => {
                threads = Some(
                    it.next()
                        .unwrap_or_else(|| usage())
                        .parse()
                        .expect("threads"),
                )
            }
            "--out" => out_dir = it.next().unwrap_or_else(|| usage()).clone(),
            "--check-determinism" => determinism = true,
            _ => usage(),
        }
    }
    let progress = Progress::from_quiet_flag(quiet);
    let mut cfg = ExperimentConfig::new(scale).with_progress(progress);
    if let Some(s) = seed {
        cfg = cfg.with_seed(s);
    }
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    if determinism {
        check_determinism(&cfg);
    }
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    progress.out(format_args!(
        "# wormsim dynamic-fault study ({:?} scale, seed {}, {} threads)\n",
        scale, cfg.base_seed, cfg.threads
    ));
    let t = Instant::now();
    let fig = dynamic_faults(&cfg);
    let elapsed = t.elapsed();
    let mut md = format!("## {}\n\n", fig.title);
    for note in &fig.notes {
        md.push_str(&format!("- {note}\n"));
    }
    md.push('\n');
    for (i, table) in fig.tables.iter().enumerate() {
        md.push_str(&table.to_markdown());
        md.push('\n');
        if plot {
            md.push_str("```text\n");
            md.push_str(&table.to_bar_chart(50));
            md.push_str("```\n\n");
        }
        let suffix = (b'a' + i as u8) as char;
        std::fs::write(format!("{out_dir}/{}_{suffix}.csv", fig.id), table.to_csv())
            .expect("write csv");
    }
    md.push_str(&format!("_generated in {elapsed:.2?}_\n"));
    std::fs::write(
        format!("{out_dir}/{}.json", fig.id),
        serde_json::to_string_pretty(&fig).expect("figure serializes"),
    )
    .expect("write json");
    std::fs::write(format!("{out_dir}/{}.md", fig.id), &md).expect("write md");
    progress.out(format_args!("{md}"));
}
