//! Record one faulty-mesh simulation end-to-end with flit-level tracing,
//! cycle telemetry, and stall forensics, then validate its own artifacts.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin trace -- \
//!     --mesh 8 --faults 3 --rate 0.004 --cycles 4000 --out results
//! ```
//!
//! Writes three files to `--out`:
//!
//! - `trace_events.jsonl` — one `TraceEvent` per line (streaming form).
//! - `trace_chrome.json` — Chrome `trace_event` document; load it at
//!   `chrome://tracing` or <https://ui.perfetto.dev> to see one track per
//!   node plus a fabric track of VC wake-ups.
//! - `trace_report.json` — the run's `SimReport`, telemetry included.
//!
//! Before exiting the binary re-parses both trace files and checks they
//! agree, so a zero exit status certifies the artifacts are well-formed.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::Write;
use std::sync::Arc;
use wormsim_engine::{ChromeTraceSink, EventKind, JsonlSink, SimConfig, Simulator, TeeSink};
use wormsim_experiments::Progress;
use wormsim_fault::{random_pattern, FaultPattern};
use wormsim_obs::parse_jsonl;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn parse_algo(s: &str) -> Option<AlgorithmKind> {
    let norm = s.to_lowercase().replace(['_', ' '], "-");
    let all = AlgorithmKind::ALL
        .into_iter()
        .chain(AlgorithmKind::EXTENDED_BASELINES);
    for k in all {
        let name = k
            .paper_name()
            .to_lowercase()
            .replace([' ', '\'', '(', ')'], "-")
            .replace("--", "-");
        if name.trim_matches('-') == norm
            || format!("{k:?}").to_lowercase() == norm.replace('-', "")
        {
            return Some(k);
        }
    }
    None
}

fn usage() -> ! {
    eprintln!(
        "usage: trace [--algo NAME] [--mesh K] [--faults N] [--rate R] [--cycles C] \
         [--seed S] [--telemetry-window W] [--out DIR] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = AlgorithmKind::DuatoNbc;
    let mut mesh_size = 8u16;
    let mut faults = 3usize;
    let mut rate = 0.004f64;
    let mut cycles = 4_000u64;
    let mut seed = 0xB0Bu64;
    let mut window = 200u64;
    let mut out_dir = "results".to_string();
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--algo" => {
                let name = next();
                kind = parse_algo(&name).unwrap_or_else(|| {
                    eprintln!("unknown algorithm {name:?}");
                    usage()
                });
            }
            "--mesh" => mesh_size = next().parse().expect("mesh"),
            "--faults" => faults = next().parse().expect("faults"),
            "--rate" => rate = next().parse().expect("rate"),
            "--cycles" => cycles = next().parse().expect("cycles"),
            "--seed" => seed = next().parse().expect("seed"),
            "--telemetry-window" => window = next().parse().expect("telemetry-window"),
            "--out" => out_dir = next(),
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    let progress = Progress::from_quiet_flag(quiet);
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // Faulty mesh: `faults` nodes drawn reproducibly from the seed.
    let mesh = Mesh::square(mesh_size);
    let pattern = if faults == 0 {
        FaultPattern::fault_free(&mesh)
    } else {
        let mut rng = SmallRng::seed_from_u64(seed);
        random_pattern(&mesh, faults, &mut rng).expect("fault pattern")
    };
    progress.out(format_args!(
        "tracing {} on a {mesh_size}×{mesh_size} mesh, {} faulty nodes, rate {rate}, \
         {cycles} cycles, seed {seed:#x}",
        kind.paper_name(),
        pattern.num_faulty(),
    ));

    let ctx = Arc::new(RoutingContext::new(mesh, pattern));
    let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig {
        warmup_cycles: cycles / 3,
        measure_cycles: cycles - cycles / 3,
        ..SimConfig::paper()
    }
    .with_seed(seed)
    .with_telemetry_window(window);

    let jsonl_path = format!("{out_dir}/trace_events.jsonl");
    let chrome_path = format!("{out_dir}/trace_chrome.json");
    let report_path = format!("{out_dir}/trace_report.json");
    let jsonl_file = File::create(&jsonl_path).expect("create jsonl file");
    let sink = TeeSink(
        JsonlSink::new(jsonl_file),
        ChromeTraceSink::new(mesh_size, mesh_size),
    );
    let mut sim = Simulator::with_sink(algo, ctx, Workload::paper_uniform(rate), cfg, sink);
    let report = sim.run();
    let stall = sim.last_stall().cloned();
    let TeeSink(jsonl, chrome) = sim.into_sink();
    let recorded = jsonl.written();
    jsonl.finish().expect("flush jsonl").flush().expect("sync");
    chrome
        .write_to(File::create(&chrome_path).expect("create chrome file"))
        .expect("write chrome trace");
    std::fs::write(
        &report_path,
        serde_json::to_string_pretty(&report).expect("report serializes"),
    )
    .expect("write report");

    // Self-validation: both artifacts must re-parse and agree with the run.
    let text = std::fs::read_to_string(&jsonl_path).expect("read back jsonl");
    let events = parse_jsonl(&text).expect("jsonl re-parses");
    assert_eq!(
        events.len() as u64,
        recorded,
        "jsonl line count must match recorded event count"
    );
    assert_eq!(events.len(), chrome.len(), "tee halves must agree");
    let chrome_doc =
        serde::json::parse(&std::fs::read_to_string(&chrome_path).expect("read back chrome"))
            .expect("chrome trace re-parses");
    match chrome_doc.get("traceEvents") {
        Some(serde::Value::Array(entries)) => assert!(
            entries.len() > events.len(),
            "chrome doc must hold every event plus track metadata"
        ),
        _ => panic!("chrome trace lacks a traceEvents array"),
    }

    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    println!("recorded {} trace events to {jsonl_path}", events.len());
    println!(
        "  inject {} / route {} / vc-acquire {} / block {} / wake {} / abort {} / recover {} / deliver {}",
        count(EventKind::Inject),
        count(EventKind::RouteDecision),
        count(EventKind::VcAcquire),
        count(EventKind::Block),
        count(EventKind::Wake),
        count(EventKind::Abort),
        count(EventKind::Recover),
        count(EventKind::Deliver),
    );
    println!("chrome trace written to {chrome_path} (open in Perfetto)");
    if let Some(t) = &report.telemetry {
        println!(
            "telemetry: {} windows of {} cycles — {} injected, {} delivered",
            t.windows.len(),
            t.window,
            t.total_injected(),
            t.total_delivered(),
        );
        if let Some(w) = t.peak_blocked_window() {
            println!(
                "  peak contention at cycle {}: {} blocked waits, mean {:.1} VCs held",
                w.start_cycle, w.blocked_waits, w.mean_vc_held,
            );
        }
    }
    match &stall {
        Some(diag) => print!("{diag}"),
        None => println!("no stalls: the watchdog never fired"),
    }
    println!("report written to {report_path}");
}
