//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin figures -- all --quick
//! cargo run --release -p wormsim-experiments --bin figures -- fig4
//! ```
//!
//! Markdown and CSV land in `results/`; the Markdown is also printed.

use std::io::Write;
use std::time::Instant;
use wormsim_experiments::{
    fig1_saturation_throughput, fig2_latency_vs_rate, fig3_vc_utilization,
    fig4_throughput_vs_faults, fig5_latency_vs_faults, fig6_fring_traffic, ExperimentConfig,
    FigureResult, Progress, Scale,
};

fn usage() -> ! {
    eprintln!(
        "usage: figures <fig1|fig2|fig3|fig4|fig5|fig6|all> [--quick] [--plot] [--seed N] [--threads N] [--out DIR] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut which: Vec<&str> = Vec::new();
    let mut scale = Scale::Paper;
    let mut seed = None;
    let mut threads = None;
    let mut out_dir = "results".to_string();
    let mut plot = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig6" => {
                which.push(Box::leak(a.clone().into_boxed_str()))
            }
            "all" => which.extend(["fig1", "fig2", "fig3", "fig4", "fig5", "fig6"]),
            "--quick" => scale = Scale::Quick,
            "--plot" => plot = true,
            "--quiet" => quiet = true,
            "--seed" => seed = Some(it.next().unwrap_or_else(|| usage()).parse().expect("seed")),
            "--threads" => {
                threads = Some(
                    it.next()
                        .unwrap_or_else(|| usage())
                        .parse()
                        .expect("threads"),
                )
            }
            "--out" => out_dir = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }
    if which.is_empty() {
        usage();
    }

    let progress = Progress::from_quiet_flag(quiet);
    let mut cfg = ExperimentConfig::new(scale).with_progress(progress);
    if let Some(s) = seed {
        cfg = cfg.with_seed(s);
    }
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    std::fs::create_dir_all(&out_dir).expect("create results dir");

    progress.out(format_args!(
        "# wormsim figure reproduction ({:?} scale, seed {}, {} threads)\n",
        scale, cfg.base_seed, cfg.threads
    ));
    for id in which {
        let t = Instant::now();
        let fig: FigureResult = match id {
            "fig1" => fig1_saturation_throughput(&cfg),
            "fig2" => fig2_latency_vs_rate(&cfg),
            "fig3" => fig3_vc_utilization(&cfg),
            "fig4" => fig4_throughput_vs_faults(&cfg),
            "fig5" => fig5_latency_vs_faults(&cfg),
            "fig6" => fig6_fring_traffic(&cfg),
            _ => unreachable!(),
        };
        let elapsed = t.elapsed();
        let mut md = format!("## {}\n\n", fig.title);
        for note in &fig.notes {
            md.push_str(&format!("- {note}\n"));
        }
        md.push('\n');
        for (i, table) in fig.tables.iter().enumerate() {
            md.push_str(&table.to_markdown());
            md.push('\n');
            if plot {
                // Wide tables read better as line charts; bar-style data
                // (few columns) as bars.
                let chart = if table.columns.len() >= 4 {
                    table.to_line_chart(70, 14)
                } else {
                    table.to_bar_chart(50)
                };
                md.push_str("```text\n");
                md.push_str(&chart);
                md.push_str("```\n\n");
            }
            let csv_path = format!(
                "{out_dir}/{}{}.csv",
                fig.id,
                if fig.tables.len() > 1 {
                    format!("_{}", (b'a' + i as u8) as char)
                } else {
                    String::new()
                }
            );
            std::fs::write(&csv_path, table.to_csv()).expect("write csv");
        }
        md.push_str(&format!("_generated in {elapsed:.2?}_\n"));
        std::fs::write(
            format!("{out_dir}/{}.json", fig.id),
            serde_json::to_string_pretty(&fig).expect("figure serializes"),
        )
        .expect("write json");
        std::fs::write(format!("{out_dir}/{}.md", fig.id), &md).expect("write md");
        progress.out(format_args!("{md}"));
        let _ = std::io::stdout().flush();
    }
}
