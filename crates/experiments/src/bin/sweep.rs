//! One-off parameterized simulation runs from the command line — the
//! Swiss-army knife for exploring the simulator outside the predefined
//! figure/ablation sweeps.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin sweep -- \
//!     --algo duato-nbc --faults 10 --rate 0.004 --cycles 30000 --seeds 3 --plot
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use wormsim_engine::{Arbitration, SimConfig};
use wormsim_experiments::{parallel_map_with_progress, run_custom, CustomSpec, Progress, Table};
use wormsim_fault::{random_pattern, FaultPattern};
use wormsim_routing::{AlgorithmKind, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

fn parse_algo(s: &str) -> Option<AlgorithmKind> {
    let norm = s.to_lowercase().replace(['_', ' '], "-");
    let all = AlgorithmKind::ALL
        .into_iter()
        .chain(AlgorithmKind::EXTENDED_BASELINES);
    for k in all {
        let name = k
            .paper_name()
            .to_lowercase()
            .replace([' ', '\'', '(', ')'], "-")
            .replace("--", "-");
        if name.trim_matches('-') == norm
            || format!("{k:?}").to_lowercase() == norm.replace('-', "")
        {
            return Some(k);
        }
    }
    None
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--algo NAME]... [--faults N] [--rate R]... [--length L] [--vcs V] \
         [--mesh K] [--cycles C] [--seeds N] [--oldest-first] [--plot] [--quiet]\n\
         algorithms: {:?} + {:?}",
        AlgorithmKind::ALL.map(|k| k.paper_name()),
        AlgorithmKind::EXTENDED_BASELINES.map(|k| k.paper_name()),
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut algos: Vec<AlgorithmKind> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();
    let mut faults = 0usize;
    let mut length = 100u32;
    let mut vcs = 24u8;
    let mut mesh_size = 10u16;
    let mut cycles = 30_000u64;
    let mut seeds = 1u64;
    let mut arbitration = Arbitration::Random;
    let mut plot = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--algo" => {
                let name = next();
                algos.push(parse_algo(&name).unwrap_or_else(|| {
                    eprintln!("unknown algorithm {name:?}");
                    usage()
                }));
            }
            "--rate" => rates.push(next().parse().expect("rate")),
            "--faults" => faults = next().parse().expect("faults"),
            "--length" => length = next().parse().expect("length"),
            "--vcs" => vcs = next().parse().expect("vcs"),
            "--mesh" => mesh_size = next().parse().expect("mesh"),
            "--cycles" => cycles = next().parse().expect("cycles"),
            "--seeds" => seeds = next().parse().expect("seeds"),
            "--oldest-first" => arbitration = Arbitration::OldestFirst,
            "--plot" => plot = true,
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    if algos.is_empty() {
        algos.push(AlgorithmKind::DuatoNbc);
    }
    if rates.is_empty() {
        rates.push(0.004);
    }

    let mesh = Mesh::square(mesh_size);
    let mut rng = SmallRng::seed_from_u64(7);
    let pattern = std::sync::Arc::new(if faults == 0 {
        FaultPattern::fault_free(&mesh)
    } else {
        random_pattern(&mesh, faults, &mut rng).expect("fault pattern")
    });
    let progress = Progress::from_quiet_flag(quiet);
    progress.out(format_args!(
        "mesh {mesh_size}×{mesh_size}, {} faults ({} disabled, {} regions), {} VCs, {}-flit messages, {} cycles × {} seed(s), {:?} arbitration",
        faults,
        pattern.num_faulty(),
        pattern.regions().len(),
        vcs,
        length,
        cycles,
        seeds,
        arbitration
    ));

    let mut specs = Vec::new();
    for &rate in &rates {
        for &kind in &algos {
            for seed in 0..seeds {
                let mut wl = Workload::paper_uniform(rate);
                wl.message_length = length;
                specs.push(CustomSpec {
                    mesh_size,
                    vc: VcConfig::with_total(vcs),
                    sim: SimConfig {
                        warmup_cycles: cycles / 3,
                        measure_cycles: cycles - cycles / 3,
                        ..SimConfig::paper()
                    }
                    .with_seed(0xABCD + seed)
                    .with_arbitration(arbitration),
                    kind,
                    pattern: pattern.clone(),
                    workload: wl,
                });
            }
        }
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let reports = parallel_map_with_progress(&specs, threads, progress, "sweep", |s| {
        run_custom(s).expect("runnable spec")
    });

    let mut thr = Table::new(
        "normalized throughput",
        "rate",
        algos.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    let mut lat = Table::new(
        "network latency (flit cycles)",
        "rate",
        algos.iter().map(|k| k.paper_name().to_string()).collect(),
    );
    for (ri, &rate) in rates.iter().enumerate() {
        let mut trow = Vec::new();
        let mut lrow = Vec::new();
        for ai in 0..algos.len() {
            let base = ri * algos.len() * seeds as usize + ai * seeds as usize;
            let runs = &reports[base..base + seeds as usize];
            trow.push(
                runs.iter().map(|r| r.normalized_throughput()).sum::<f64>() / runs.len() as f64,
            );
            let lats: Vec<f64> = runs
                .iter()
                .map(|r| r.mean_network_latency())
                .filter(|l| l.is_finite())
                .collect();
            lrow.push(if lats.is_empty() {
                f64::NAN
            } else {
                lats.iter().sum::<f64>() / lats.len() as f64
            });
        }
        thr.push_row(format!("{rate}"), trow);
        lat.push_row(format!("{rate}"), lrow);
    }
    println!("\n{}", thr.to_markdown());
    println!("{}", lat.to_markdown());
    if plot {
        if rates.len() > 1 {
            println!("{}", thr.to_line_chart(70, 14));
            println!("{}", lat.to_line_chart(70, 14));
        } else {
            println!("{}", thr.to_bar_chart(50));
        }
    }
    let total_recov: u64 = reports.iter().map(|r| r.recoveries).sum();
    let total_ring: u64 = reports.iter().map(|r| r.ring_hops).sum();
    println!("total watchdog recoveries: {total_recov}; overlay (ring) hops: {total_ring}");
}
