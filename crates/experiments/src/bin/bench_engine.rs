//! Engine steady-state performance harness.
//!
//! Runs the paper-scale configuration — 10×10 mesh, 24 VCs, 100-flit
//! messages, Duato's routing at 100 % load — with a fixed seed, measures
//! wall-clock cycles/sec and delivered messages/sec, and writes
//! `BENCH_engine.json`. The same run's `SimReport` is fingerprinted so a
//! perf change that alters simulation *results* is caught, not just one
//! that alters speed.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin bench_engine
//! cargo run --release -p wormsim-experiments --bin bench_engine -- \
//!     --out BENCH_engine.json --dump-report report.json --repeats 3
//! ```

use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

const MESH_SIZE: u16 = 10;
const RATE: f64 = 0.01;
const SEED: u64 = 0xB41C;

#[derive(Serialize)]
struct BenchRecord {
    mesh_size: u16,
    vcs: u8,
    message_length: u32,
    rate: f64,
    seed: u64,
    warmup_cycles: u64,
    measure_cycles: u64,
    repeats: u32,
    /// Best-of-repeats wall-clock for one full run, seconds.
    elapsed_secs: f64,
    /// Simulated cycles per wall-clock second (best of repeats).
    cycles_per_sec: f64,
    /// Messages delivered in the measurement window.
    messages_delivered: u64,
    /// Delivered messages per wall-clock second (best of repeats).
    messages_delivered_per_sec: f64,
    /// FNV-1a over the run's serialized `SimReport`: the simulation-result
    /// identity for this seed. Perf work must not change it.
    report_fingerprint: String,
}

fn usage() -> ! {
    eprintln!("usage: bench_engine [--out PATH] [--dump-report PATH] [--repeats N]");
    std::process::exit(2);
}

fn run_once() -> (SimReport, f64) {
    let mesh = Mesh::square(MESH_SIZE);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig::paper().with_seed(SEED);
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(RATE), cfg);
    let start = Instant::now();
    let report = sim.run();
    (report, start.elapsed().as_secs_f64())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let mut out = "BENCH_engine.json".to_string();
    let mut dump_report = None;
    let mut repeats = 3u32;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--dump-report" => dump_report = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--repeats" => {
                repeats = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("repeats")
            }
            _ => usage(),
        }
    }
    let repeats = repeats.max(1);

    let cfg = SimConfig::paper();
    let mut best_secs = f64::INFINITY;
    let mut report = None;
    for i in 0..repeats {
        let (r, secs) = run_once();
        eprintln!(
            "run {}/{repeats}: {:.3}s ({:.0} cycles/sec)",
            i + 1,
            secs,
            cfg.total_cycles() as f64 / secs
        );
        best_secs = best_secs.min(secs);
        let json = serde_json::to_string_pretty(&r).expect("report serializes");
        if let Some(prev) = &report {
            let (prev_json, _): &(String, SimReport) = prev;
            assert_eq!(
                prev_json, &json,
                "fixed-seed runs must produce identical reports"
            );
        } else {
            report = Some((json, r));
        }
    }
    let (report_json, report) = report.expect("at least one run");

    let record = BenchRecord {
        mesh_size: MESH_SIZE,
        vcs: VcConfig::paper().total,
        message_length: 100,
        rate: RATE,
        seed: SEED,
        warmup_cycles: cfg.warmup_cycles,
        measure_cycles: cfg.measure_cycles,
        repeats,
        elapsed_secs: best_secs,
        cycles_per_sec: cfg.total_cycles() as f64 / best_secs,
        messages_delivered: report.throughput.messages_delivered(),
        messages_delivered_per_sec: report.throughput.messages_delivered() as f64 / best_secs,
        report_fingerprint: format!("{:016x}", fnv1a(report_json.as_bytes())),
    };
    let record_json = serde_json::to_string_pretty(&record).expect("record serializes");
    std::fs::write(&out, &record_json).expect("write bench record");
    println!("{record_json}");
    if let Some(path) = dump_report {
        std::fs::write(&path, &report_json).expect("write report dump");
        eprintln!("report dumped to {path}");
    }
}
