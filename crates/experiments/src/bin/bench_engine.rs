//! Engine steady-state performance harness and CI perf-regression gate.
//!
//! Runs the paper-scale configuration — 10×10 mesh, 24 VCs, 100-flit
//! messages, Duato's routing at 100 % load — with a fixed seed, measures
//! wall-clock cycles/sec and delivered messages/sec, and writes
//! `BENCH_engine.json`. The same run's `SimReport` is fingerprinted so a
//! perf change that alters simulation *results* is caught, not just one
//! that alters speed.
//!
//! The harness also enforces the engine's zero-allocation steady state:
//! a counting global allocator snapshots the process-wide allocation
//! count at the warm-up boundary and the run aborts if the measurement
//! window performs any heap allocation.
//!
//! With `--check BASELINE.json` the run becomes a regression gate
//! against a committed record: the report fingerprint must match
//! exactly (simulation results are deterministic and machine-
//! independent), and cycles/sec must stay above 85 % of the baseline.
//! Set `WORMSIM_SKIP_PERF_GATE=1` to skip the throughput threshold —
//! e.g. on throttled or heavily shared CI machines — while keeping the
//! fingerprint check.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin bench_engine
//! cargo run --release -p wormsim-experiments --bin bench_engine -- \
//!     --out BENCH_engine.json --dump-report report.json --repeats 3
//! cargo run --release -p wormsim-experiments --bin bench_engine -- \
//!     --repeats 1 --check BENCH_engine.json
//! ```

use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use wormsim_engine::{SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

const MESH_SIZE: u16 = 10;
const RATE: f64 = 0.01;
const SEED: u64 = 0xB41C;

/// Fraction of the baseline's cycles/sec below which `--check` fails.
const GATE_FLOOR: f64 = 0.85;

/// System allocator wrapped with an allocation counter, installed
/// process-wide so the steady-state zero-allocation invariant is
/// checked against *every* allocation, not just the simulator's own.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed
// atomic increment with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(Serialize)]
struct BenchRecord {
    mesh_size: u16,
    vcs: u8,
    message_length: u32,
    rate: f64,
    seed: u64,
    warmup_cycles: u64,
    measure_cycles: u64,
    repeats: u32,
    /// Best-of-repeats wall-clock for one full run, seconds.
    elapsed_secs: f64,
    /// Simulated cycles per wall-clock second (best of repeats).
    cycles_per_sec: f64,
    /// Messages delivered in the measurement window.
    messages_delivered: u64,
    /// Delivered messages per wall-clock second (best of repeats).
    messages_delivered_per_sec: f64,
    /// Heap allocations performed inside the measurement window (must be
    /// zero: the engine's steady state is allocation-free).
    measure_allocations: u64,
    /// Routing-decision microbenchmark: mean ns per `route()` call with
    /// the geometry table against the direct (table-less) computation,
    /// on a representative faulty pattern.
    routing_decision_ns: Vec<RoutingDecisionRecord>,
    /// FNV-1a over the run's serialized `SimReport`: the simulation-result
    /// identity for this seed. Perf work must not change it.
    report_fingerprint: String,
}

#[derive(Serialize)]
struct RoutingDecisionRecord {
    algorithm: &'static str,
    table_ns: f64,
    direct_ns: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_engine [--out PATH] [--dump-report PATH] [--repeats N] [--check BASELINE]"
    );
    std::process::exit(2);
}

/// One full paper-scale run, stepped in two phases so the allocation
/// counter can bracket the measurement window. Returns the report, the
/// wall-clock seconds for the whole schedule (warm-up included, matching
/// the historical `cycles_per_sec` definition), and the number of heap
/// allocations observed inside the measurement window.
fn run_once() -> (SimReport, f64, u64) {
    let mesh = Mesh::square(MESH_SIZE);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig::paper().with_seed(SEED);
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(RATE), cfg);
    // Pre-size for the whole schedule's message population (the paper
    // config oversubscribes the network, so source queues grow for the
    // entire run): expected creations plus generous Bernoulli slack, and
    // path capacity comfortably above the 10×10 diameter. After this,
    // the measurement window must not allocate at all.
    let expected =
        (cfg.total_cycles() as f64 * f64::from(MESH_SIZE) * f64::from(MESH_SIZE) * RATE) as usize;
    sim.prewarm(expected + expected / 4 + 1024, 32);
    let start = Instant::now();
    for _ in 0..cfg.warmup_cycles {
        sim.step();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..cfg.measure_cycles {
        sim.step();
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let elapsed = start.elapsed().as_secs_f64();
    (sim.report(), elapsed, allocs)
}

/// Mean ns per `route()` call for every roster algorithm, with the
/// context's geometry table and with the direct computation. Uses a
/// faulty pattern so ring geometry (where the table earns its keep) is
/// actually on the decision path.
fn routing_decision_bench() -> Vec<RoutingDecisionRecord> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mesh = Mesh::square(MESH_SIZE);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let pattern = wormsim_fault::random_pattern(&mesh, 10, &mut rng).expect("pattern");
    let tabled = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
    let direct = Arc::new(RoutingContext::new_direct(mesh.clone(), pattern.clone()));
    let healthy: Vec<_> = pattern.healthy_nodes(&mesh).collect();

    let time_route = |ctx: &Arc<RoutingContext>, kind: AlgorithmKind| -> f64 {
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        // Route between every healthy pair once to warm caches, then time.
        let pairs: Vec<_> = healthy
            .iter()
            .flat_map(|&s| healthy.iter().map(move |&d| (s, d)))
            .filter(|(s, d)| s != d)
            .collect();
        let mut calls = 0u64;
        for &(src, dest) in &pairs {
            let mut st = algo.init_message(src, dest);
            std::hint::black_box(algo.route(src, &mut st));
            calls += 1;
        }
        let start = Instant::now();
        for &(src, dest) in &pairs {
            let mut st = algo.init_message(src, dest);
            std::hint::black_box(algo.route(src, &mut st));
        }
        start.elapsed().as_nanos() as f64 / calls as f64
    };

    AlgorithmKind::ALL
        .iter()
        .map(|&kind| RoutingDecisionRecord {
            algorithm: kind.paper_name(),
            table_ns: time_route(&tabled, kind),
            direct_ns: time_route(&direct, kind),
        })
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Gate the fresh record against a committed baseline. The fingerprint
/// must match exactly; cycles/sec must reach [`GATE_FLOOR`] of the
/// baseline unless `WORMSIM_SKIP_PERF_GATE` is set.
fn check_against_baseline(record: &BenchRecord, path: &str) {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
    let base: serde_json::Value =
        serde_json::from_str(&raw).unwrap_or_else(|e| panic!("--check: {path} is not JSON: {e}"));
    let base_fp = base
        .get("report_fingerprint")
        .and_then(|v| v.as_str())
        .expect("baseline has report_fingerprint");
    let base_cps = base
        .get("cycles_per_sec")
        .and_then(|v| v.as_f64())
        .expect("baseline has cycles_per_sec");

    if record.report_fingerprint != base_fp {
        eprintln!(
            "PERF GATE FAILED: report fingerprint {} != baseline {base_fp} — \
             the change altered simulation results, not just speed",
            record.report_fingerprint
        );
        std::process::exit(1);
    }
    let floor = base_cps * GATE_FLOOR;
    if std::env::var_os("WORMSIM_SKIP_PERF_GATE").is_some() {
        eprintln!(
            "perf gate: fingerprint OK; throughput check skipped (WORMSIM_SKIP_PERF_GATE): \
             {:.0} cycles/sec vs baseline {base_cps:.0}",
            record.cycles_per_sec
        );
        return;
    }
    if record.cycles_per_sec < floor {
        eprintln!(
            "PERF GATE FAILED: {:.0} cycles/sec < {floor:.0} \
             ({:.0}% of baseline {base_cps:.0})",
            record.cycles_per_sec,
            GATE_FLOOR * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "perf gate: OK — {:.0} cycles/sec vs baseline {base_cps:.0} (floor {floor:.0}), \
         fingerprint {}",
        record.cycles_per_sec, record.report_fingerprint
    );
}

fn main() {
    let mut out = "BENCH_engine.json".to_string();
    let mut dump_report = None;
    let mut check = None;
    let mut repeats = 3u32;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--dump-report" => dump_report = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--check" => check = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--repeats" => {
                repeats = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("repeats")
            }
            _ => usage(),
        }
    }
    let repeats = repeats.max(1);

    let cfg = SimConfig::paper();
    let mut best_secs = f64::INFINITY;
    let mut measure_allocations = 0u64;
    let mut report = None;
    for i in 0..repeats {
        let (r, secs, allocs) = run_once();
        eprintln!(
            "run {}/{repeats}: {:.3}s ({:.0} cycles/sec, {allocs} measure-window allocations)",
            i + 1,
            secs,
            cfg.total_cycles() as f64 / secs
        );
        assert_eq!(
            allocs, 0,
            "steady state regressed: {allocs} heap allocations inside the measurement window"
        );
        best_secs = best_secs.min(secs);
        measure_allocations = measure_allocations.max(allocs);
        let json = serde_json::to_string_pretty(&r).expect("report serializes");
        if let Some(prev) = &report {
            let (prev_json, _): &(String, SimReport) = prev;
            assert_eq!(
                prev_json, &json,
                "fixed-seed runs must produce identical reports"
            );
        } else {
            report = Some((json, r));
        }
    }
    let (report_json, report) = report.expect("at least one run");

    let record = BenchRecord {
        mesh_size: MESH_SIZE,
        vcs: VcConfig::paper().total,
        message_length: 100,
        rate: RATE,
        seed: SEED,
        warmup_cycles: cfg.warmup_cycles,
        measure_cycles: cfg.measure_cycles,
        repeats,
        elapsed_secs: best_secs,
        cycles_per_sec: cfg.total_cycles() as f64 / best_secs,
        messages_delivered: report.throughput.messages_delivered(),
        messages_delivered_per_sec: report.throughput.messages_delivered() as f64 / best_secs,
        measure_allocations,
        routing_decision_ns: routing_decision_bench(),
        report_fingerprint: format!("{:016x}", fnv1a(report_json.as_bytes())),
    };
    if let Some(path) = &check {
        check_against_baseline(&record, path);
    }
    let record_json = serde_json::to_string_pretty(&record).expect("record serializes");
    std::fs::write(&out, &record_json).expect("write bench record");
    println!("{record_json}");
    if let Some(path) = dump_report {
        std::fs::write(&path, &report_json).expect("write report dump");
        eprintln!("report dumped to {path}");
    }
}
