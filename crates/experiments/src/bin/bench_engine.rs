//! Engine steady-state performance harness and CI perf-regression gate.
//!
//! Runs the paper-scale configuration — 10×10 mesh, 24 VCs, 100-flit
//! messages, Duato's routing at 100 % load — with a fixed seed, measures
//! wall-clock cycles/sec and delivered messages/sec, and writes
//! `BENCH_engine.json`. The same run's `SimReport` is fingerprinted so a
//! perf change that alters simulation *results* is caught, not just one
//! that alters speed.
//!
//! The harness also enforces the engine's zero-allocation steady state:
//! a counting global allocator snapshots the process-wide allocation
//! count at the warm-up boundary and the run aborts if the measurement
//! window performs any heap allocation.
//!
//! Alongside the single paper-scale run, a **sweep-throughput** section
//! times a fixed fig-4-shaped batch (every roster algorithm × three
//! fault cases at full load, quick scale) through the harness's
//! reuse machinery — one simulator rewound with `Simulator::reset`,
//! contexts and algorithms shared through `ContextCache` — against the
//! old per-run-rebuild path, recording runs/sec for both and asserting
//! the two produce byte-identical reports. The timed reused passes must
//! perform zero heap allocations, resets included.
//!
//! With `--check BASELINE.json` the run becomes a regression gate
//! against a committed record: the report fingerprint must match
//! exactly (simulation results are deterministic and machine-
//! independent), and cycles/sec — plus the sweep's runs/sec — must stay
//! above 85 % of the baseline.
//! A **sharded-engine** section times one 64×64 run split across the
//! worker pool (`SimConfig.shards`) against the sequential path,
//! asserting byte-identical reports before recording anything; the
//! record carries the machine's visible core count so the speedup is
//! interpretable (on one core the sharded pass is expected to trail).
//!
//! Set `WORMSIM_SKIP_PERF_GATE=1` to skip the throughput thresholds —
//! e.g. on throttled or heavily shared CI machines — while keeping the
//! fingerprint checks. `--sweep-only` runs (and gates) just the sweep
//! section, `--shard-only` just the sharded-engine section: the cheap
//! CI smoke modes.
//!
//! ```text
//! cargo run --release -p wormsim-experiments --bin bench_engine
//! cargo run --release -p wormsim-experiments --bin bench_engine -- \
//!     --out BENCH_engine.json --dump-report report.json --repeats 3
//! cargo run --release -p wormsim-experiments --bin bench_engine -- \
//!     --repeats 1 --check BENCH_engine.json
//! cargo run --release -p wormsim-experiments --bin bench_engine -- \
//!     --sweep-only --repeats 1 --check BENCH_engine.json
//! ```

use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use wormsim_engine::{NullSink, Phase, SimConfig, Simulator};
use wormsim_experiments::{fnv1a, ContextCache};
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext, VcConfig};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

const MESH_SIZE: u16 = 10;
const RATE: f64 = 0.01;
const SEED: u64 = 0xB41C;

/// Sharded-engine section: mesh radix where intra-run sharding is meant
/// to pay (the paper-scale 10×10 is far too small), the shard count
/// benchmarked against the sequential oracle, and a rate that keeps the
/// big mesh busy without saturating the schedule.
const SHARD_MESH: u16 = 64;
const SHARD_COUNT: u16 = 8;
const SHARD_RATE: f64 = 0.002;

/// Fraction of the baseline's cycles/sec below which `--check` fails.
const GATE_FLOOR: f64 = 0.85;

/// System allocator wrapped with an allocation counter, installed
/// process-wide so the steady-state zero-allocation invariant is
/// checked against *every* allocation, not just the simulator's own.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed
// atomic increment with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(Serialize)]
struct BenchRecord {
    mesh_size: u16,
    vcs: u8,
    message_length: u32,
    rate: f64,
    seed: u64,
    warmup_cycles: u64,
    measure_cycles: u64,
    repeats: u32,
    /// Best-of-repeats wall-clock for one full run, seconds.
    elapsed_secs: f64,
    /// Simulated cycles per wall-clock second (best of repeats).
    cycles_per_sec: f64,
    /// Messages delivered in the measurement window.
    messages_delivered: u64,
    /// Delivered messages per wall-clock second (best of repeats).
    messages_delivered_per_sec: f64,
    /// Heap allocations performed inside the measurement window (must be
    /// zero: the engine's steady state is allocation-free).
    measure_allocations: u64,
    /// Routing-decision microbenchmark: mean ns per `route()` call with
    /// the geometry table against the direct (table-less) computation,
    /// on a representative faulty pattern.
    routing_decision_ns: Vec<RoutingDecisionRecord>,
    /// FNV-1a over the run's serialized `SimReport`: the simulation-result
    /// identity for this seed. Perf work must not change it.
    report_fingerprint: String,
    /// Sweep-throughput section: the fig-4-shaped batch through the
    /// harness reuse machinery vs per-run rebuild.
    sweep: SweepRecord,
    /// Sharded-engine section: one big-mesh simulation split across the
    /// worker pool vs the sequential path.
    shard: ShardRecord,
    /// Shard-count scaling section: the full shard sweep
    /// ({1, 2, 4, 8} × {10×10, 64×64}), every point fingerprint-checked
    /// against its mesh's sequential oracle.
    scaling: ScalingRecord,
    /// Per-phase cycle-time breakdown of the paper-scale run through a
    /// `PROFILE = true` simulator, fingerprint-asserted against the
    /// default build. Timings are informational (no `--check` floor —
    /// phase shares vary with the machine); the fingerprint equality is
    /// the invariant.
    phases: PhasesRecord,
}

#[derive(Serialize)]
struct PhasesRecord {
    warmup_cycles: u64,
    measure_cycles: u64,
    /// FNV-1a over the profiled run's serialized report — asserted equal
    /// to the default (profiling-off) build's fingerprint before this
    /// record exists, so profiling provably does not perturb results.
    profiled_fingerprint: String,
    /// Wall-clock for the whole profiled schedule, seconds.
    elapsed_secs: f64,
    /// Cycles the accumulator saw (the full schedule).
    cycles: u64,
    /// Total profiled nanoseconds across all phases.
    total_ns: u64,
    /// One entry per engine phase, in step order.
    breakdown: Vec<PhaseRecord>,
}

#[derive(Serialize)]
struct PhaseRecord {
    phase: &'static str,
    total_ns: u64,
    mean_ns_per_cycle: f64,
    /// This phase's fraction of the total profiled time.
    share: f64,
}

#[derive(Serialize)]
struct ShardRecord {
    /// Mesh radix of the sharded benchmark (64: big enough that one run
    /// dominates wall-clock and column bands carry real work).
    mesh_size: u16,
    /// Shard count of the sharded pass (the sequential pass is shards=1).
    shards: u16,
    /// Physical cores visible to this process when the record was made.
    /// Sharding cannot beat the sequential path on fewer cores than
    /// shards; the recorded speedup is only meaningful alongside this.
    cores: usize,
    rate: f64,
    warmup_cycles: u64,
    measure_cycles: u64,
    repeats: u32,
    /// Best-of-repeats wall-clock of the sequential (shards=1) run.
    sequential_secs: f64,
    sequential_cycles_per_sec: f64,
    /// Best-of-repeats wall-clock of the sharded run.
    sharded_secs: f64,
    sharded_cycles_per_sec: f64,
    /// `sharded_cycles_per_sec / sequential_cycles_per_sec`.
    speedup: f64,
    /// FNV-1a over the run's serialized `SimReport` — asserted identical
    /// between the sequential and sharded passes before any timing is
    /// recorded, so the record never exists for a divergent engine.
    shard_fingerprint: String,
}

#[derive(Serialize)]
struct ScalingRecord {
    /// Physical cores visible when the record was made; speedups are only
    /// meaningful alongside this.
    cores: usize,
    repeats: u32,
    /// One point per (mesh, shard count) in sweep order. Every point's
    /// fingerprint is asserted equal to its mesh's shards=1 point before
    /// the record exists — through the *pooled* movement path (forced on
    /// single-core hosts), so the equality is never vacuous.
    points: Vec<ScalingPoint>,
}

#[derive(Serialize)]
struct ScalingPoint {
    mesh_size: u16,
    shards: u16,
    rate: f64,
    warmup_cycles: u64,
    measure_cycles: u64,
    /// Best-of-repeats wall-clock for the schedule, natural movement path
    /// (single-core hosts take the inline sequential fast path — that is
    /// the shipping behavior being measured).
    secs: f64,
    cycles_per_sec: f64,
    /// `cycles_per_sec` relative to this mesh's shards=1 point.
    speedup: f64,
    /// FNV-1a over the serialized `SimReport` of this point's run.
    fingerprint: String,
}

#[derive(Serialize)]
struct SweepRecord {
    /// Runs in the batch (algorithms × fault cases).
    runs: u32,
    warmup_cycles: u64,
    measure_cycles: u64,
    repeats: u32,
    /// Best-of-repeats wall-clock for the reused-simulator batch, seconds.
    best_secs: f64,
    /// Runs per wall-clock second on the reuse path (best of repeats).
    runs_per_sec: f64,
    /// Best-of-repeats wall-clock for the per-run-rebuild batch, seconds.
    rebuild_secs: f64,
    /// Runs per wall-clock second when every run rebuilds its context,
    /// algorithm, and simulator from scratch (the pre-pool behavior).
    rebuild_runs_per_sec: f64,
    /// `runs_per_sec / rebuild_runs_per_sec`.
    speedup: f64,
    /// Heap allocations inside the timed reused passes, resets included
    /// (must be zero).
    reset_allocations: u64,
    /// FNV-1a over the batch's concatenated serialized reports; the
    /// rebuild path must reproduce it exactly.
    sweep_fingerprint: String,
}

#[derive(Serialize)]
struct RoutingDecisionRecord {
    algorithm: &'static str,
    table_ns: f64,
    direct_ns: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_engine [--out PATH] [--dump-report PATH] [--repeats N] [--check BASELINE] \
         [--sweep-only] [--shard-only] [--scaling-only] [--phases]"
    );
    std::process::exit(2);
}

/// The fig-4-shaped batch: every roster algorithm × three fault cases
/// (0 %, 5 %, 10 % faulty nodes) at 100 % load, one shared pattern per
/// case, fixed derived seeds.
fn sweep_specs() -> Vec<(AlgorithmKind, Arc<FaultPattern>, u64)> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mesh = Mesh::square(MESH_SIZE);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut patterns = vec![Arc::new(FaultPattern::fault_free(&mesh))];
    for faults in [5usize, 10] {
        patterns.push(Arc::new(
            wormsim_fault::random_pattern(&mesh, faults, &mut rng).expect("sweep fault pattern"),
        ));
    }
    let mut specs = Vec::new();
    for (pi, pattern) in patterns.iter().enumerate() {
        for (ki, &kind) in AlgorithmKind::ALL.iter().enumerate() {
            let seed = SEED ^ ((pi as u64) << 32) ^ (ki as u64).wrapping_mul(0x9E37_79B9);
            specs.push((kind, pattern.clone(), seed));
        }
    }
    specs
}

/// One pass over the batch on the reuse path: contexts/algorithms from
/// `cache`, one simulator rewound per run. Returns wall-clock seconds,
/// heap allocations bracketing reset + stepping (report building is
/// excluded — reports allocate by design), and, when requested, the
/// batch fingerprint.
fn sweep_pass_reused(
    specs: &[(AlgorithmKind, Arc<FaultPattern>, u64)],
    cache: &mut ContextCache,
    sim: &mut Option<Simulator>,
    fingerprint: bool,
) -> (f64, u64, Option<String>) {
    let wl = Workload::paper_uniform(RATE);
    let mut hash_input = String::new();
    let mut allocs = 0u64;
    let start = Instant::now();
    for &(kind, ref pattern, seed) in specs {
        let ctx = cache.context(MESH_SIZE, pattern);
        let algo = cache.algorithm(kind, &ctx, VcConfig::paper());
        let cfg = SimConfig::quick().with_seed(seed);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        match sim.as_mut() {
            Some(s) => s.reset(algo, ctx, wl.clone(), cfg),
            None => *sim = Some(Simulator::new(algo, ctx, wl.clone(), cfg)),
        }
        let s = sim.as_mut().expect("sweep simulator");
        for _ in 0..cfg.total_cycles() {
            s.step();
        }
        allocs += ALLOCATIONS.load(Ordering::Relaxed) - before;
        let report = std::hint::black_box(s.report());
        if fingerprint {
            hash_input.push_str(&serde_json::to_string(&report).expect("report serializes"));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let fp = fingerprint.then(|| format!("{:016x}", fnv1a(hash_input.as_bytes())));
    (secs, allocs, fp)
}

/// One pass over the batch rebuilding everything per run — mesh, context
/// (geometry table included), algorithm, simulator — i.e. the pre-pool
/// harness behavior, as the A/B baseline.
fn sweep_pass_rebuild(
    specs: &[(AlgorithmKind, Arc<FaultPattern>, u64)],
    fingerprint: bool,
) -> (f64, Option<String>) {
    let wl = Workload::paper_uniform(RATE);
    let mut hash_input = String::new();
    let start = Instant::now();
    for &(kind, ref pattern, seed) in specs {
        let mesh = Mesh::square(MESH_SIZE);
        let ctx = Arc::new(RoutingContext::new(mesh, (**pattern).clone()));
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        let cfg = SimConfig::quick().with_seed(seed);
        let mut s = Simulator::new(algo, ctx, wl.clone(), cfg);
        for _ in 0..cfg.total_cycles() {
            s.step();
        }
        let report = std::hint::black_box(s.report());
        if fingerprint {
            hash_input.push_str(&serde_json::to_string(&report).expect("report serializes"));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let fp = fingerprint.then(|| format!("{:016x}", fnv1a(hash_input.as_bytes())));
    (secs, fp)
}

/// Run the sweep-throughput benchmark: warm + fingerprint pass, then
/// best-of-`repeats` timed passes on both paths. Asserts the reuse path
/// allocates nothing (resets included) and that both paths produce
/// byte-identical report batches.
fn sweep_throughput(repeats: u32) -> SweepRecord {
    let specs = sweep_specs();
    let quick = SimConfig::quick();
    let mut cache = ContextCache::default();
    let mut sim: Option<Simulator> = None;

    // Warm pass: builds the simulator, fills the cache, grows every
    // buffer to its batch-wide high-water mark, and fingerprints the
    // batch (already through the reset path for all runs but the first).
    let (_, _, fp) = sweep_pass_reused(&specs, &mut cache, &mut sim, true);
    let sweep_fingerprint = fp.expect("fingerprint pass");

    let mut best_secs = f64::INFINITY;
    let mut reset_allocations = 0u64;
    for i in 0..repeats {
        let (secs, allocs, _) = sweep_pass_reused(&specs, &mut cache, &mut sim, false);
        eprintln!(
            "sweep {}/{repeats}: {:.3}s ({:.1} runs/sec, {allocs} allocations across resets)",
            i + 1,
            secs,
            specs.len() as f64 / secs
        );
        assert_eq!(
            allocs, 0,
            "sweep steady state regressed: {allocs} heap allocations across reset-reused runs"
        );
        best_secs = best_secs.min(secs);
        reset_allocations = reset_allocations.max(allocs);
    }

    // A/B equivalence: the rebuild path must reproduce the batch exactly.
    let (_, rebuild_fp) = sweep_pass_rebuild(&specs, true);
    assert_eq!(
        rebuild_fp.expect("rebuild fingerprint"),
        sweep_fingerprint,
        "reused-simulator sweep diverged from per-run rebuild"
    );
    let mut rebuild_secs = f64::INFINITY;
    for i in 0..repeats {
        let (secs, _) = sweep_pass_rebuild(&specs, false);
        eprintln!(
            "sweep rebuild {}/{repeats}: {:.3}s ({:.1} runs/sec)",
            i + 1,
            secs,
            specs.len() as f64 / secs
        );
        rebuild_secs = rebuild_secs.min(secs);
    }

    let runs = specs.len() as u32;
    let runs_per_sec = runs as f64 / best_secs;
    let rebuild_runs_per_sec = runs as f64 / rebuild_secs;
    SweepRecord {
        runs,
        warmup_cycles: quick.warmup_cycles,
        measure_cycles: quick.measure_cycles,
        repeats,
        best_secs,
        runs_per_sec,
        rebuild_secs,
        rebuild_runs_per_sec,
        speedup: runs_per_sec / rebuild_runs_per_sec,
        reset_allocations,
        sweep_fingerprint,
    }
}

/// One timed 64×64 run at the given shard count on a reused simulator.
/// Returns wall-clock seconds for the whole schedule and the report
/// fingerprint.
fn shard_pass(
    sim: &mut Simulator,
    algo: &Arc<dyn wormsim_routing::RoutingAlgorithm>,
    ctx: &Arc<RoutingContext>,
    wl: &Workload,
    cfg: SimConfig,
    shards: u16,
) -> (f64, String) {
    sim.reset(
        algo.clone(),
        ctx.clone(),
        wl.clone(),
        cfg.with_shards(shards),
    );
    let start = Instant::now();
    for _ in 0..cfg.total_cycles() {
        sim.step();
    }
    let secs = start.elapsed().as_secs_f64();
    let json = serde_json::to_string(&sim.report()).expect("report serializes");
    (secs, format!("{:016x}", fnv1a(json.as_bytes())))
}

/// The sharded-engine benchmark: a 64×64 Duato run, sequential vs
/// [`SHARD_COUNT`] shards, byte-identity asserted, then best-of-`repeats`
/// timings for both. Numbers are honest for the machine at hand — the
/// record carries the visible core count, and on a single core the
/// sharded pass is expected to trail the sequential one (merge overhead
/// with no parallelism to pay for it).
fn shard_bench(repeats: u32) -> ShardRecord {
    let mesh = Mesh::square(SHARD_MESH);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo: Arc<dyn wormsim_routing::RoutingAlgorithm> =
        build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper()).into();
    let cfg = SimConfig {
        warmup_cycles: 200,
        measure_cycles: 600,
        ..SimConfig::paper()
    }
    .with_seed(SEED);
    let wl = Workload::paper_uniform(SHARD_RATE);
    let mut sim = Simulator::new(algo.clone(), ctx.clone(), wl.clone(), cfg);

    // Equivalence first: no timing record exists for a divergent engine.
    let (mut sequential_secs, seq_fp) = shard_pass(&mut sim, &algo, &ctx, &wl, cfg, 1);
    let (mut sharded_secs, sh_fp) = shard_pass(&mut sim, &algo, &ctx, &wl, cfg, SHARD_COUNT);
    assert_eq!(
        seq_fp, sh_fp,
        "sharded {SHARD_MESH}×{SHARD_MESH} run diverged from the sequential oracle"
    );
    for i in 1..repeats {
        let (secs, _) = shard_pass(&mut sim, &algo, &ctx, &wl, cfg, 1);
        sequential_secs = sequential_secs.min(secs);
        let (secs, _) = shard_pass(&mut sim, &algo, &ctx, &wl, cfg, SHARD_COUNT);
        sharded_secs = sharded_secs.min(secs);
        eprintln!(
            "shard {}/{repeats}: sequential {sequential_secs:.3}s, \
             {SHARD_COUNT}-shard {sharded_secs:.3}s",
            i + 1,
        );
    }
    let cycles = cfg.total_cycles() as f64;
    let sequential_cycles_per_sec = cycles / sequential_secs;
    let sharded_cycles_per_sec = cycles / sharded_secs;
    ShardRecord {
        mesh_size: SHARD_MESH,
        shards: SHARD_COUNT,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rate: SHARD_RATE,
        warmup_cycles: cfg.warmup_cycles,
        measure_cycles: cfg.measure_cycles,
        repeats,
        sequential_secs,
        sequential_cycles_per_sec,
        sharded_secs,
        sharded_cycles_per_sec,
        speedup: sharded_cycles_per_sec / sequential_cycles_per_sec,
        shard_fingerprint: seq_fp,
    }
}

/// Meshes swept by the scaling section, with a per-mesh injection rate
/// that keeps each busy without saturating the schedule.
const SCALING_MESHES: [(u16, f64); 2] = [(10, 0.01), (64, 0.002)];
/// Shard counts swept per mesh (1 is the sequential oracle).
const SCALING_SHARDS: [u16; 4] = [1, 2, 4, 8];

/// One scaling-section run at the given shard count on a reused
/// simulator. `forced` runs the pooled movement path even on a
/// single-core host (the untimed equivalence pass); timed passes leave
/// it off and measure the shipping behavior.
fn scaling_pass(
    sim: &mut Simulator,
    algo: &Arc<dyn wormsim_routing::RoutingAlgorithm>,
    ctx: &Arc<RoutingContext>,
    wl: &Workload,
    cfg: SimConfig,
    shards: u16,
    forced: bool,
) -> (f64, String) {
    sim.reset(
        algo.clone(),
        ctx.clone(),
        wl.clone(),
        cfg.with_shards(shards),
    );
    sim.force_parallel_movement(forced);
    let start = Instant::now();
    for _ in 0..cfg.total_cycles() {
        sim.step();
    }
    let secs = start.elapsed().as_secs_f64();
    let json = serde_json::to_string(&sim.report()).expect("report serializes");
    (secs, format!("{:016x}", fnv1a(json.as_bytes())))
}

/// The shard-count scaling sweep: for each mesh, a sequential oracle run
/// (shards=1), then every swept shard count — first an untimed pass
/// through the *forced* pooled path whose fingerprint must equal the
/// oracle's (so the equivalence assertion exercises the partition/merge
/// machinery even on one core), then best-of-`repeats` timed passes on
/// the natural path.
fn scaling_bench(repeats: u32) -> ScalingRecord {
    let mut points = Vec::new();
    for (mesh_size, rate) in SCALING_MESHES {
        let mesh = Mesh::square(mesh_size);
        let ctx = Arc::new(RoutingContext::new(
            mesh.clone(),
            FaultPattern::fault_free(&mesh),
        ));
        let algo: Arc<dyn wormsim_routing::RoutingAlgorithm> =
            build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper()).into();
        let cfg = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 600,
            ..SimConfig::paper()
        }
        .with_seed(SEED);
        let wl = Workload::paper_uniform(rate);
        let mut sim = Simulator::new(algo.clone(), ctx.clone(), wl.clone(), cfg);
        let mut oracle_fp: Option<String> = None;
        let mut oracle_cps = 0.0f64;
        for shards in SCALING_SHARDS {
            // Equivalence before timing: no point exists for a divergent
            // shard count. (At shards=1 this pass *defines* the oracle.)
            let (_, fp) = scaling_pass(&mut sim, &algo, &ctx, &wl, cfg, shards, true);
            match &oracle_fp {
                None => oracle_fp = Some(fp.clone()),
                Some(seq) => assert_eq!(
                    &fp, seq,
                    "{mesh_size}x{mesh_size} at shards={shards} diverged from the sequential oracle"
                ),
            }
            let mut best = f64::INFINITY;
            for _ in 0..repeats {
                let (secs, timed_fp) = scaling_pass(&mut sim, &algo, &ctx, &wl, cfg, shards, false);
                assert_eq!(
                    &timed_fp,
                    oracle_fp.as_ref().unwrap(),
                    "timed pass diverged"
                );
                best = best.min(secs);
            }
            let cps = cfg.total_cycles() as f64 / best;
            if shards == 1 {
                oracle_cps = cps;
            }
            eprintln!(
                "scaling {mesh_size}x{mesh_size} shards={shards}: {best:.3}s \
                 ({cps:.0} cycles/sec, {:.2}x sequential)",
                cps / oracle_cps
            );
            points.push(ScalingPoint {
                mesh_size,
                shards,
                rate,
                warmup_cycles: cfg.warmup_cycles,
                measure_cycles: cfg.measure_cycles,
                secs: best,
                cycles_per_sec: cps,
                speedup: cps / oracle_cps,
                fingerprint: fp,
            });
        }
    }
    ScalingRecord {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        repeats,
        points,
    }
}

/// One full paper-scale run, stepped in two phases so the allocation
/// counter can bracket the measurement window. Returns the report, the
/// wall-clock seconds for the whole schedule (warm-up included, matching
/// the historical `cycles_per_sec` definition), and the number of heap
/// allocations observed inside the measurement window.
fn run_once() -> (SimReport, f64, u64) {
    let mesh = Mesh::square(MESH_SIZE);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig::paper().with_seed(SEED);
    let mut sim = Simulator::new(algo, ctx, Workload::paper_uniform(RATE), cfg);
    // Pre-size for the whole schedule's message population (the paper
    // config oversubscribes the network, so source queues grow for the
    // entire run): expected creations plus generous Bernoulli slack.
    // Path capacity is derived from the mesh inside `prewarm`. After
    // this, the measurement window must not allocate at all.
    let expected =
        (cfg.total_cycles() as f64 * f64::from(MESH_SIZE) * f64::from(MESH_SIZE) * RATE) as usize;
    sim.prewarm(expected + expected / 4 + 1024);
    let start = Instant::now();
    for _ in 0..cfg.warmup_cycles {
        sim.step();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..cfg.measure_cycles {
        sim.step();
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let elapsed = start.elapsed().as_secs_f64();
    (sim.report(), elapsed, allocs)
}

/// The phase-profiling section: the paper-scale run through a
/// `PROFILE = true` simulator (same spec, prewarm, and schedule as
/// [`run_once`]), asserting the profiled report's fingerprint equals the
/// default build's before any record exists. `expected_fp` is the
/// default build's fingerprint when the caller already ran it; `None`
/// (the `--phases` smoke mode) runs the default build here.
fn phase_bench(expected_fp: Option<&str>) -> PhasesRecord {
    let expected = match expected_fp {
        Some(fp) => fp.to_string(),
        None => {
            let (report, _, _) = run_once();
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            format!("{:016x}", fnv1a(json.as_bytes()))
        }
    };
    let mesh = Mesh::square(MESH_SIZE);
    let ctx = Arc::new(RoutingContext::new(
        mesh.clone(),
        FaultPattern::fault_free(&mesh),
    ));
    let algo = build_algorithm(AlgorithmKind::Duato, ctx.clone(), VcConfig::paper());
    let cfg = SimConfig::paper().with_seed(SEED);
    let mut sim = Simulator::<NullSink, true>::try_build(
        algo,
        ctx,
        Workload::paper_uniform(RATE),
        cfg,
        NullSink,
    )
    .expect("paper config is valid");
    let expected_msgs =
        (cfg.total_cycles() as f64 * f64::from(MESH_SIZE) * f64::from(MESH_SIZE) * RATE) as usize;
    sim.prewarm(expected_msgs + expected_msgs / 4 + 1024);
    let start = Instant::now();
    for _ in 0..cfg.total_cycles() {
        sim.step();
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let json = serde_json::to_string_pretty(&sim.report()).expect("report serializes");
    let profiled_fingerprint = format!("{:016x}", fnv1a(json.as_bytes()));
    assert_eq!(
        profiled_fingerprint, expected,
        "phase-profiled run diverged from the default build — profiling must observe, \
         never perturb"
    );
    let t = *sim.phase_times();
    let breakdown: Vec<PhaseRecord> = Phase::ALL
        .iter()
        .map(|&p| PhaseRecord {
            phase: p.name(),
            total_ns: t.nanos(p),
            mean_ns_per_cycle: t.mean_ns_per_cycle(p),
            share: t.share(p),
        })
        .collect();
    for r in &breakdown {
        eprintln!(
            "phase {:<8} {:>12} ns total  {:>8.1} ns/cycle  {:>5.1}%",
            r.phase,
            r.total_ns,
            r.mean_ns_per_cycle,
            r.share * 100.0
        );
    }
    PhasesRecord {
        warmup_cycles: cfg.warmup_cycles,
        measure_cycles: cfg.measure_cycles,
        profiled_fingerprint,
        elapsed_secs,
        cycles: t.cycles(),
        total_ns: t.total_nanos(),
        breakdown,
    }
}

/// Mean ns per `route()` call for every roster algorithm, with the
/// context's geometry table and with the direct computation. Uses a
/// faulty pattern so ring geometry (where the table earns its keep) is
/// actually on the decision path.
fn routing_decision_bench() -> Vec<RoutingDecisionRecord> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mesh = Mesh::square(MESH_SIZE);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let pattern = wormsim_fault::random_pattern(&mesh, 10, &mut rng).expect("pattern");
    let tabled = Arc::new(RoutingContext::new(mesh.clone(), pattern.clone()));
    let direct = Arc::new(RoutingContext::new_direct(mesh.clone(), pattern.clone()));
    let healthy: Vec<_> = pattern.healthy_nodes(&mesh).collect();

    let time_route = |ctx: &Arc<RoutingContext>, kind: AlgorithmKind| -> f64 {
        let algo = build_algorithm(kind, ctx.clone(), VcConfig::paper());
        // Route between every healthy pair once to warm caches, then time.
        let pairs: Vec<_> = healthy
            .iter()
            .flat_map(|&s| healthy.iter().map(move |&d| (s, d)))
            .filter(|(s, d)| s != d)
            .collect();
        let mut calls = 0u64;
        for &(src, dest) in &pairs {
            let mut st = algo.init_message(src, dest);
            std::hint::black_box(algo.route(src, &mut st));
            calls += 1;
        }
        let start = Instant::now();
        for &(src, dest) in &pairs {
            let mut st = algo.init_message(src, dest);
            std::hint::black_box(algo.route(src, &mut st));
        }
        start.elapsed().as_nanos() as f64 / calls as f64
    };

    AlgorithmKind::ALL
        .iter()
        .map(|&kind| RoutingDecisionRecord {
            algorithm: kind.paper_name(),
            table_ns: time_route(&tabled, kind),
            direct_ns: time_route(&direct, kind),
        })
        .collect()
}

fn load_baseline(path: &str) -> serde_json::Value {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
    serde_json::from_str(&raw).unwrap_or_else(|e| panic!("--check: {path} is not JSON: {e}"))
}

/// Gate the sweep section against the baseline's: exact fingerprint
/// match, runs/sec at [`GATE_FLOOR`] of the baseline unless
/// `WORMSIM_SKIP_PERF_GATE` is set. A baseline predating the sweep
/// section is a hard failure — it used to pass with a notice, which
/// silently disarmed every sweep check until someone noticed.
fn check_sweep_against_baseline(sweep: &SweepRecord, base: &serde_json::Value) {
    let Some(base_sweep) = base.get("sweep") else {
        eprintln!(
            "PERF GATE FAILED: baseline has no sweep section, so the sweep gate cannot run — \
             regenerate the baseline (cargo run --release -p wormsim-experiments --bin \
             bench_engine) and commit the new BENCH_engine.json"
        );
        std::process::exit(1);
    };
    let base_fp = base_sweep
        .get("sweep_fingerprint")
        .and_then(|v| v.as_str())
        .expect("baseline sweep has sweep_fingerprint");
    let base_rps = base_sweep
        .get("runs_per_sec")
        .and_then(|v| v.as_f64())
        .expect("baseline sweep has runs_per_sec");
    if sweep.sweep_fingerprint != base_fp {
        eprintln!(
            "PERF GATE FAILED: sweep fingerprint {} != baseline {base_fp} — \
             the change altered sweep results, not just speed",
            sweep.sweep_fingerprint
        );
        std::process::exit(1);
    }
    let floor = base_rps * GATE_FLOOR;
    if std::env::var_os("WORMSIM_SKIP_PERF_GATE").is_some() {
        eprintln!(
            "perf gate: sweep fingerprint OK; throughput check skipped \
             (WORMSIM_SKIP_PERF_GATE): {:.1} runs/sec vs baseline {base_rps:.1}",
            sweep.runs_per_sec
        );
        return;
    }
    if sweep.runs_per_sec < floor {
        eprintln!(
            "PERF GATE FAILED: sweep {:.1} runs/sec < {floor:.1} \
             ({:.0}% of baseline {base_rps:.1})",
            sweep.runs_per_sec,
            GATE_FLOOR * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "perf gate: sweep OK — {:.1} runs/sec vs baseline {base_rps:.1} (floor {floor:.1}), \
         fingerprint {}",
        sweep.runs_per_sec, sweep.sweep_fingerprint
    );
}

/// Gate the shard section against the baseline's: exact fingerprint
/// match (the sharded engine must keep producing oracle-identical
/// results), sharded cycles/sec at [`GATE_FLOOR`] of the baseline unless
/// `WORMSIM_SKIP_PERF_GATE` is set. A baseline without the section is a
/// hard failure, same policy as the sweep gate.
fn check_shard_against_baseline(shard: &ShardRecord, base: &serde_json::Value) {
    let Some(base_shard) = base.get("shard") else {
        eprintln!(
            "PERF GATE FAILED: baseline has no shard section, so the shard gate cannot run — \
             regenerate the baseline (cargo run --release -p wormsim-experiments --bin \
             bench_engine) and commit the new BENCH_engine.json"
        );
        std::process::exit(1);
    };
    let base_fp = base_shard
        .get("shard_fingerprint")
        .and_then(|v| v.as_str())
        .expect("baseline shard has shard_fingerprint");
    let base_cps = base_shard
        .get("sharded_cycles_per_sec")
        .and_then(|v| v.as_f64())
        .expect("baseline shard has sharded_cycles_per_sec");
    if shard.shard_fingerprint != base_fp {
        eprintln!(
            "PERF GATE FAILED: shard fingerprint {} != baseline {base_fp} — \
             the change altered big-mesh results, not just speed",
            shard.shard_fingerprint
        );
        std::process::exit(1);
    }
    // Shard throughput scales with physical parallelism, so the floor
    // only means something on a machine shaped like the one that
    // recorded the baseline. On a core-count mismatch the fingerprint
    // (already checked above) is the whole gate.
    let base_cores = base_shard.get("cores").and_then(|v| v.as_u64());
    let cur_cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    match base_cores {
        Some(bc) if bc != cur_cores => {
            eprintln!(
                "perf gate: shard fingerprint OK; throughput floor skipped — baseline was \
                 recorded on {bc} cores but this machine shows {cur_cores}, so sharded \
                 cycles/sec are not comparable ({:.0} here vs baseline {base_cps:.0})",
                shard.sharded_cycles_per_sec
            );
            return;
        }
        None => {
            eprintln!(
                "perf gate: shard fingerprint OK; throughput floor skipped — baseline \
                 predates the cores field, so there is no comparable machine shape on \
                 record ({:.0} here vs baseline {base_cps:.0})",
                shard.sharded_cycles_per_sec
            );
            return;
        }
        Some(_) => {}
    }
    let floor = base_cps * GATE_FLOOR;
    if std::env::var_os("WORMSIM_SKIP_PERF_GATE").is_some() {
        eprintln!(
            "perf gate: shard fingerprint OK; throughput check skipped \
             (WORMSIM_SKIP_PERF_GATE): {:.0} sharded cycles/sec vs baseline {base_cps:.0}",
            shard.sharded_cycles_per_sec
        );
        return;
    }
    if shard.sharded_cycles_per_sec < floor {
        eprintln!(
            "PERF GATE FAILED: shard {:.0} cycles/sec < {floor:.0} \
             ({:.0}% of baseline {base_cps:.0})",
            shard.sharded_cycles_per_sec,
            GATE_FLOOR * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "perf gate: shard OK — {:.0} sharded cycles/sec vs baseline {base_cps:.0} \
         (floor {floor:.0}), fingerprint {}",
        shard.sharded_cycles_per_sec, shard.shard_fingerprint
    );
}

/// Gate the scaling section. Two layers:
///
/// - **Fingerprints** (always on): every swept shard count of a mesh must
///   reproduce that mesh's shards=1 fingerprint, and each mesh's oracle
///   fingerprint must match the baseline's — a baseline predating the
///   section is a hard failure, same policy as the sweep gate.
/// - **Speedup floors** (skipped under `WORMSIM_SKIP_PERF_GATE`):
///   `shards > 1` must never fall below 0.95× its mesh's sequential
///   throughput, and when the machine has ≥ 4 cores the 64×64 sweep must
///   reach 1.5× at some shard count ≥ 4.
fn check_scaling_against_baseline(scaling: &ScalingRecord, base: &serde_json::Value) {
    let Some(base_scaling) = base.get("scaling") else {
        eprintln!(
            "PERF GATE FAILED: baseline has no scaling section, so the shard-sweep gate cannot \
             run — regenerate the baseline (cargo run --release -p wormsim-experiments --bin \
             bench_engine) and commit the new BENCH_engine.json"
        );
        std::process::exit(1);
    };
    // Per-mesh oracle fingerprints, then every-point equality.
    let mut oracles: Vec<(u16, &str)> = Vec::new();
    for p in &scaling.points {
        if p.shards == 1 {
            oracles.push((p.mesh_size, &p.fingerprint));
        }
    }
    for p in &scaling.points {
        let oracle = oracles
            .iter()
            .find(|(m, _)| *m == p.mesh_size)
            .map(|(_, fp)| *fp)
            .expect("every swept mesh has a shards=1 point");
        if p.fingerprint != oracle {
            eprintln!(
                "PERF GATE FAILED: scaling {0}x{0} shards={1} fingerprint {2} != sequential \
                 oracle {oracle}",
                p.mesh_size, p.shards, p.fingerprint
            );
            std::process::exit(1);
        }
    }
    // Baseline stability: the oracle results themselves must not drift.
    if let Some(base_points) = base_scaling.get("points").and_then(|v| v.as_array()) {
        for (mesh, fp) in &oracles {
            let base_fp = base_points.iter().find_map(|bp| {
                (bp.get("mesh_size").and_then(|v| v.as_u64()) == Some(*mesh as u64)
                    && bp.get("shards").and_then(|v| v.as_u64()) == Some(1))
                .then(|| bp.get("fingerprint").and_then(|v| v.as_str()))
                .flatten()
            });
            if let Some(base_fp) = base_fp {
                if base_fp != *fp {
                    eprintln!(
                        "PERF GATE FAILED: scaling {mesh}x{mesh} oracle fingerprint {fp} != \
                         baseline {base_fp} — the change altered simulation results"
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    if std::env::var_os("WORMSIM_SKIP_PERF_GATE").is_some() {
        eprintln!(
            "perf gate: scaling fingerprints OK ({} points); speedup floors skipped \
             (WORMSIM_SKIP_PERF_GATE)",
            scaling.points.len()
        );
        return;
    }
    for p in &scaling.points {
        if p.shards > 1 && p.speedup < 0.95 {
            eprintln!(
                "PERF GATE FAILED: scaling {0}x{0} shards={1} runs at {2:.2}x sequential — \
                 sharding must never cost more than 5% of the sequential path",
                p.mesh_size, p.shards, p.speedup
            );
            std::process::exit(1);
        }
    }
    if scaling.cores >= 4 {
        let best_big = scaling
            .points
            .iter()
            .filter(|p| p.mesh_size == 64 && p.shards >= 4)
            .map(|p| p.speedup)
            .fold(0.0f64, f64::max);
        if best_big < 1.5 {
            eprintln!(
                "PERF GATE FAILED: 64x64 sharded peak speedup {best_big:.2}x < 1.5x on a \
                 {}-core machine",
                scaling.cores
            );
            std::process::exit(1);
        }
    }
    eprintln!(
        "perf gate: scaling OK — {} points, fingerprints equal per mesh, speedup floors hold \
         on {} cores",
        scaling.points.len(),
        scaling.cores
    );
}

/// Gate the fresh record against a committed baseline. The fingerprint
/// must match exactly; cycles/sec must reach [`GATE_FLOOR`] of the
/// baseline unless `WORMSIM_SKIP_PERF_GATE` is set.
fn check_against_baseline(record: &BenchRecord, path: &str) {
    let base = load_baseline(path);
    let base_fp = base
        .get("report_fingerprint")
        .and_then(|v| v.as_str())
        .expect("baseline has report_fingerprint");
    let base_cps = base
        .get("cycles_per_sec")
        .and_then(|v| v.as_f64())
        .expect("baseline has cycles_per_sec");

    if record.report_fingerprint != base_fp {
        eprintln!(
            "PERF GATE FAILED: report fingerprint {} != baseline {base_fp} — \
             the change altered simulation results, not just speed",
            record.report_fingerprint
        );
        std::process::exit(1);
    }
    let floor = base_cps * GATE_FLOOR;
    if std::env::var_os("WORMSIM_SKIP_PERF_GATE").is_some() {
        eprintln!(
            "perf gate: fingerprint OK; throughput check skipped (WORMSIM_SKIP_PERF_GATE): \
             {:.0} cycles/sec vs baseline {base_cps:.0}",
            record.cycles_per_sec
        );
        check_sweep_against_baseline(&record.sweep, &base);
        check_shard_against_baseline(&record.shard, &base);
        check_scaling_against_baseline(&record.scaling, &base);
        return;
    }
    if record.cycles_per_sec < floor {
        eprintln!(
            "PERF GATE FAILED: {:.0} cycles/sec < {floor:.0} \
             ({:.0}% of baseline {base_cps:.0})",
            record.cycles_per_sec,
            GATE_FLOOR * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "perf gate: OK — {:.0} cycles/sec vs baseline {base_cps:.0} (floor {floor:.0}), \
         fingerprint {}",
        record.cycles_per_sec, record.report_fingerprint
    );
    check_sweep_against_baseline(&record.sweep, &base);
    check_shard_against_baseline(&record.shard, &base);
    check_scaling_against_baseline(&record.scaling, &base);
}

fn main() {
    let mut out = "BENCH_engine.json".to_string();
    let mut dump_report = None;
    let mut check = None;
    let mut repeats = 3u32;
    let mut sweep_only = false;
    let mut shard_only = false;
    let mut scaling_only = false;
    let mut phases_only = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--dump-report" => dump_report = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--check" => check = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--sweep-only" => sweep_only = true,
            "--shard-only" => shard_only = true,
            "--scaling-only" => scaling_only = true,
            "--phases" => phases_only = true,
            "--repeats" => {
                repeats = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .expect("repeats")
            }
            _ => usage(),
        }
    }
    let repeats = repeats.max(1);

    if phases_only {
        // Phase-profiling smoke mode: one default-build run for the
        // oracle fingerprint, one profiled run asserted byte-identical,
        // per-phase breakdown printed and emitted as JSON. There is no
        // timing floor — the fingerprint equality is the gate.
        let phases = phase_bench(None);
        println!(
            "{}",
            serde_json::to_string_pretty(&phases).expect("phases serialize")
        );
        return;
    }

    if scaling_only {
        // CI smoke mode for the shard sweep: every swept shard count must
        // reproduce its mesh's sequential oracle (through the forced
        // pooled path), with the speedup floors skippable via
        // WORMSIM_SKIP_PERF_GATE on single-core runners.
        let scaling = scaling_bench(repeats);
        if let Some(path) = &check {
            check_scaling_against_baseline(&scaling, &load_baseline(path));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&scaling).expect("scaling serializes")
        );
        return;
    }

    if shard_only {
        // CI smoke mode for the sharded engine: byte-identity on the big
        // mesh plus (unless skipped) the throughput floor, without the
        // paper-scale run or the sweep batch.
        let shard = shard_bench(repeats);
        if let Some(path) = &check {
            check_shard_against_baseline(&shard, &load_baseline(path));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&shard).expect("shard serializes")
        );
        return;
    }

    let sweep = sweep_throughput(repeats);
    if sweep_only {
        if let Some(path) = &check {
            check_sweep_against_baseline(&sweep, &load_baseline(path));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&sweep).expect("sweep serializes")
        );
        return;
    }
    let shard = shard_bench(repeats);
    let scaling = scaling_bench(repeats);

    let cfg = SimConfig::paper();
    let mut best_secs = f64::INFINITY;
    let mut measure_allocations = 0u64;
    let mut report = None;
    for i in 0..repeats {
        let (r, secs, allocs) = run_once();
        eprintln!(
            "run {}/{repeats}: {:.3}s ({:.0} cycles/sec, {allocs} measure-window allocations)",
            i + 1,
            secs,
            cfg.total_cycles() as f64 / secs
        );
        assert_eq!(
            allocs, 0,
            "steady state regressed: {allocs} heap allocations inside the measurement window"
        );
        best_secs = best_secs.min(secs);
        measure_allocations = measure_allocations.max(allocs);
        let json = serde_json::to_string_pretty(&r).expect("report serializes");
        if let Some(prev) = &report {
            let (prev_json, _): &(String, SimReport) = prev;
            assert_eq!(
                prev_json, &json,
                "fixed-seed runs must produce identical reports"
            );
        } else {
            report = Some((json, r));
        }
    }
    let (report_json, report) = report.expect("at least one run");
    let report_fingerprint = format!("{:016x}", fnv1a(report_json.as_bytes()));
    // Profiled pass after the timed runs: asserts the profiled build
    // reproduces the exact report the default build just produced.
    let phases = phase_bench(Some(&report_fingerprint));

    let record = BenchRecord {
        mesh_size: MESH_SIZE,
        vcs: VcConfig::paper().total,
        message_length: 100,
        rate: RATE,
        seed: SEED,
        warmup_cycles: cfg.warmup_cycles,
        measure_cycles: cfg.measure_cycles,
        repeats,
        elapsed_secs: best_secs,
        cycles_per_sec: cfg.total_cycles() as f64 / best_secs,
        messages_delivered: report.throughput.messages_delivered(),
        messages_delivered_per_sec: report.throughput.messages_delivered() as f64 / best_secs,
        measure_allocations,
        routing_decision_ns: routing_decision_bench(),
        report_fingerprint,
        sweep,
        shard,
        scaling,
        phases,
    };
    if let Some(path) = &check {
        check_against_baseline(&record, path);
    }
    let record_json = serde_json::to_string_pretty(&record).expect("record serializes");
    std::fs::write(&out, &record_json).expect("write bench record");
    println!("{record_json}");
    if let Some(path) = dump_report {
        std::fs::write(&path, &report_json).expect("write report dump");
        eprintln!("report dumped to {path}");
    }
}
