//! # wormsim-experiments
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation (§5). Each `figN` function runs the simulations behind the
//! corresponding figure and returns its data as [`Table`]s; the `figures`
//! binary renders them to Markdown/CSV under `results/`.
//!
//! | Function | Paper figure | Content |
//! |---|---|---|
//! | [`fig1_saturation_throughput`] | Fig 1 | throughput vs generation rate, fault-free |
//! | [`fig2_latency_vs_rate`] | Fig 2 | message latency vs generation rate, fault-free |
//! | [`fig3_vc_utilization`] | Fig 3a/3b | per-VC utilization at 5 % faults |
//! | [`fig4_throughput_vs_faults`] | Fig 4 | normalized throughput at 0/5/10 % faults |
//! | [`fig5_latency_vs_faults`] | Fig 5 | normalized latency at 0/5/10 % faults |
//! | [`fig6_fring_traffic`] | Fig 6 | traffic load split: f-ring vs other nodes |
//!
//! Runs fan out over threads (one simulation per work item); everything is
//! deterministic given [`ExperimentConfig::base_seed`].

mod ablations;
mod cache;
mod config;
mod dynamic;
mod figures;
mod fingerprint;
mod pool;
mod runner;
mod table;

pub use ablations::{
    ablation_arbitration, ablation_buffer_depth, ablation_mesh_size, ablation_message_length,
    ablation_misroute_limit, ablation_traffic_patterns, ablation_turn_models, ablation_vc_budget,
};
pub use cache::{shared_cache, ContextCache};
pub use config::{ExperimentConfig, Scale};
pub use dynamic::{dynamic_faults, DYNAMIC_KINDS, DYNAMIC_RATE};
pub use figures::{
    fig1_saturation_throughput, fig2_latency_vs_rate, fig3_vc_utilization,
    fig4_throughput_vs_faults, fig5_latency_vs_faults, fig6_fring_traffic, paper_52_layout,
    FigureResult, ANALYSIS_RATE, FULL_LOAD_RATE, RATE_SWEEP,
};
pub use fingerprint::{fnv1a, report_fingerprint, report_json_fingerprint};
pub use pool::WorkerPool;
pub use runner::{
    parallel_map, parallel_map_with_progress, run_custom, run_single, CustomSpec, RunSpec,
};
pub use table::Table;
pub use wormsim_obs::Progress;
