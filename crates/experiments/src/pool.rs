//! Re-export shim: the persistent worker pool moved into `wormsim-engine`
//! (`wormsim_engine::pool`) so the sharded simulator can post per-cycle
//! jobs to the same pool the experiment fan-out uses. Experiment code
//! keeps importing it from here.

pub(crate) use wormsim_engine::pool::SyncPtr;
pub use wormsim_engine::WorkerPool;
