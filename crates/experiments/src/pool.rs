//! A persistent worker pool for the experiment fan-out.
//!
//! `parallel_map` used to spawn and join a fresh set of scoped threads per
//! call — hundreds of times per figure sweep. The pool here keeps one set
//! of workers alive for the whole process; each batch posts a type-erased
//! job, the workers chunk-claim item indices off a shared counter, and the
//! calling thread participates as the first worker, so a one-item batch
//! touches no thread machinery at all. Workers own long-lived state (the
//! runner parks a reusable `Simulator` in a thread-local), which is what
//! makes `Simulator::reset` pay off across a sweep.
//!
//! Batches are serialized: one job runs at a time, and a second caller
//! blocks until the first finishes. The experiment harness never nests
//! `parallel_map` calls, so serialization only matters when independent
//! test threads race — they queue up, which is correct, just not parallel.
//! (Nesting a `parallel_map` inside another would deadlock on the job
//! guard; don't.)

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// How many items one `fetch_add` claims. Coarser chunks amortize the
/// shared counter; 8 chunks per worker keeps the tail balanced.
fn chunk_size(total: usize, workers: usize) -> usize {
    (total / (workers * 8).max(1)).max(1)
}

/// A panic payload captured from a worker (first one wins).
type PanicSlot = Mutex<Option<Box<dyn Any + Send>>>;

/// The state of the currently posted job. All references are
/// lifetime-erased pointers into the posting caller's stack frame; they
/// are dereferenced only by enrolled workers, and the caller does not
/// return until every enrolled worker has checked out (under the pool
/// mutex), so the erasure is sound.
#[derive(Clone, Copy)]
struct ActiveJob {
    task: &'static (dyn Fn(usize) + Sync),
    next: &'static AtomicUsize,
    panic: &'static PanicSlot,
    total: usize,
    chunk: usize,
}

struct JobSlot {
    /// Bumped once per posted job so a worker never enrolls twice in the
    /// same batch.
    epoch: u64,
    /// The live job, `None` while idle or once enrollment has closed.
    job: Option<ActiveJob>,
    /// Workers enrolled in the live job.
    enrolled: usize,
    /// How many more workers may enroll (clamped to outstanding chunks).
    open_seats: usize,
    /// Enrolled workers that have finished claiming.
    exited: usize,
}

struct Inner {
    state: Mutex<JobSlot>,
    /// Signals workers that a job was posted.
    ready: Condvar,
    /// Signals the caller that a worker checked out.
    done: Condvar,
}

/// The persistent pool. Use [`WorkerPool::global`]; worker threads are
/// spawned lazily up to the largest `threads` any batch has asked for and
/// live for the rest of the process.
pub struct WorkerPool {
    inner: &'static Inner,
    /// Serializes batches (one job at a time).
    job_guard: Mutex<()>,
    /// Worker threads spawned so far.
    spawned: Mutex<usize>,
}

impl WorkerPool {
    /// The process-wide pool.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let inner = Box::leak(Box::new(Inner {
                state: Mutex::new(JobSlot {
                    epoch: 0,
                    job: None,
                    enrolled: 0,
                    open_seats: 0,
                    exited: 0,
                }),
                ready: Condvar::new(),
                done: Condvar::new(),
            }));
            WorkerPool {
                inner,
                job_guard: Mutex::new(()),
                spawned: Mutex::new(0),
            }
        })
    }

    /// Run `task(i)` for every `i in 0..total` across at most `threads`
    /// participants (the calling thread included) and block until all
    /// items are done. Pool participation is clamped to the number of
    /// outstanding chunks, so small batches enroll few (or zero) workers
    /// instead of waking the whole pool. On a panic inside `task` the
    /// first payload is returned along with how many items had been
    /// claimed; remaining items still run (matching the old scoped-thread
    /// fan-out, where sibling workers kept draining).
    pub fn run(
        &self,
        threads: usize,
        total: usize,
        task: &(dyn Fn(usize) + Sync),
    ) -> Result<(), (usize, Box<dyn Any + Send>)> {
        if total == 0 {
            return Ok(());
        }
        let _serial = self.job_guard.lock().expect("pool job guard");
        let workers = threads.clamp(1, total);
        let chunk = chunk_size(total, workers);
        let chunks = total.div_ceil(chunk);
        // The caller claims chunks too, so it fills the first seat.
        let helpers = (workers - 1).min(chunks - 1);
        self.ensure_workers(helpers);

        let next = AtomicUsize::new(0);
        let panic: PanicSlot = Mutex::new(None);
        // Erase the borrows' lifetimes to park them in the shared slot;
        // see `ActiveJob` for the validity argument.
        let job = ActiveJob {
            task: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    task,
                )
            },
            next: unsafe { std::mem::transmute::<&AtomicUsize, &'static AtomicUsize>(&next) },
            panic: unsafe { std::mem::transmute::<&PanicSlot, &'static PanicSlot>(&panic) },
            total,
            chunk,
        };
        if helpers > 0 {
            let mut s = self.inner.state.lock().expect("pool state");
            s.epoch += 1;
            s.job = Some(job);
            s.enrolled = 0;
            s.open_seats = helpers;
            s.exited = 0;
            drop(s);
            self.inner.ready.notify_all();
        }

        claim_chunks(&job);

        if helpers > 0 {
            // Close enrollment, then wait for every enrolled worker to
            // check out — only then may the stack frame (task, counters)
            // be given up.
            let mut s = self.inner.state.lock().expect("pool state");
            s.job = None;
            while s.exited < s.enrolled {
                s = self.inner.done.wait(s).expect("pool state");
            }
        }

        match panic.into_inner().expect("panic slot") {
            None => Ok(()),
            Some(payload) => Err((next.load(Ordering::Relaxed).min(total), payload)),
        }
    }

    /// Spawn workers until at least `want` exist.
    fn ensure_workers(&self, want: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn count");
        while *spawned < want {
            let inner: &'static Inner = self.inner;
            let name = format!("wormsim-worker-{}", *spawned);
            thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(inner))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }
}

/// Claim and run chunks until the shared counter runs dry. Panics are
/// caught per item; the first payload is kept for the caller to re-raise.
fn claim_chunks(job: &ActiveJob) {
    loop {
        let start = job.next.fetch_add(job.chunk, Ordering::Relaxed);
        if start >= job.total {
            break;
        }
        let end = (start + job.chunk).min(job.total);
        for i in start..end {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (job.task)(i))) {
                let mut slot = job.panic.lock().expect("panic slot");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }
}

fn worker_loop(inner: &'static Inner) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut s = inner.state.lock().expect("pool state");
            loop {
                if s.epoch != last_epoch && s.open_seats > 0 {
                    if let Some(job) = s.job {
                        last_epoch = s.epoch;
                        s.enrolled += 1;
                        s.open_seats -= 1;
                        break job;
                    }
                }
                s = inner.ready.wait(s).expect("pool state");
            }
        };
        claim_chunks(&job);
        let mut s = inner.state.lock().expect("pool state");
        s.exited += 1;
        drop(s);
        inner.done.notify_all();
    }
}

/// A raw pointer the fan-out may share across threads: each task writes a
/// distinct index, and the pool's completion handshake orders all writes
/// before the caller reads.
pub(crate) struct SyncPtr<T>(pub *mut T);

impl<T> SyncPtr<T> {
    /// The element pointer at `i`. Going through a method (rather than
    /// the field) makes closures capture the `Sync` wrapper, not the raw
    /// pointer inside it.
    pub(crate) fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        WorkerPool::global()
            .run(8, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .expect("no panics");
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn pool_zero_items_is_a_noop() {
        WorkerPool::global()
            .run(8, 0, &|_| unreachable!("no items to claim"))
            .expect("empty batch");
    }

    #[test]
    fn pool_single_item_runs_on_the_caller() {
        let caller = thread::current().id();
        let ran = AtomicUsize::new(0);
        WorkerPool::global()
            .run(16, 1, &|i| {
                assert_eq!(i, 0);
                // One chunk, one seat: the posting thread takes it.
                assert_eq!(thread::current().id(), caller);
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .expect("no panics");
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_reports_panics_with_claim_count() {
        let err = WorkerPool::global()
            .run(4, 10, &|i| {
                if i == 3 {
                    panic!("boom at {i}");
                }
            })
            .expect_err("task panicked");
        let (claimed, payload) = err;
        assert!((1..=10).contains(&claimed), "claimed {claimed}");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn pool_chunks_cover_uneven_totals() {
        for total in [1usize, 2, 3, 7, 17, 63, 64, 65] {
            let sum = AtomicUsize::new(0);
            WorkerPool::global()
                .run(5, total, &|i| {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                })
                .expect("no panics");
            assert_eq!(sum.load(Ordering::Relaxed), total * (total + 1) / 2);
        }
    }
}
