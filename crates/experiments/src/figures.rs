//! One function per paper figure.

use crate::config::ExperimentConfig;
use crate::runner::{derive_seed, parallel_map_with_progress, run_single, RunSpec};
use crate::table::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wormsim_fault::{FaultPattern, FaultPatternBuilder};
use wormsim_metrics::SimReport;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::{Coord, Mesh, Rect};

/// The reproduced data behind one paper figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureResult {
    /// Short identifier ("fig1" … "fig6").
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The figure's data (some figures have two panels).
    pub tables: Vec<Table>,
    /// Parameters and caveats recorded alongside the data.
    pub notes: Vec<String>,
}

/// Generation rates swept in Figures 1–2. The paper's tick marks
/// (0.0001 … 0.0251) plus intermediate points resolving the rise to
/// saturation.
pub const RATE_SWEEP: [f64; 9] = [
    0.0001, 0.0010, 0.0020, 0.0030, 0.0051, 0.0101, 0.0151, 0.0201, 0.0251,
];

/// The generation rate used as "100 % traffic load" in Figures 4–6: with
/// 100-flit messages and a 1 flit/cycle ejection port, 0.01 messages per
/// node per cycle offers exactly the maximum deliverable load.
pub const FULL_LOAD_RATE: f64 = 0.01;

/// A moderate near-saturation rate used for the VC-usage and f-ring
/// analyses.
pub const ANALYSIS_RATE: f64 = 0.004;

fn algorithm_columns(kinds: &[AlgorithmKind]) -> Vec<String> {
    kinds.iter().map(|k| k.paper_name().to_string()).collect()
}

/// Random fault patterns shared by every algorithm in a fault case (the
/// paper: "comparative performance across different fault cases is in
/// accordance with the fault sets used"). `Arc`-wrapped so every spec
/// shares one allocation per pattern and the context cache can key off
/// pattern identity.
fn fault_patterns(cfg: &ExperimentConfig, faults: usize, salt: u64) -> Vec<Arc<FaultPattern>> {
    let mesh = Mesh::square(cfg.mesh_size);
    if faults == 0 {
        return vec![Arc::new(FaultPattern::fault_free(&mesh))];
    }
    let mut rng = SmallRng::seed_from_u64(derive_seed(cfg.base_seed, salt, faults as u64, 0));
    (0..cfg.fault_patterns)
        .map(|_| {
            Arc::new(
                FaultPatternBuilder::new(faults)
                    .generate(&mesh, &mut rng)
                    .expect("fault pattern generation failed"),
            )
        })
        .collect()
}

/// **Figure 1** — saturation throughput of the ten algorithms against the
/// traffic generation rate on a fault-free 10×10 mesh (100-flit messages,
/// 24 VCs per physical channel).
pub fn fig1_saturation_throughput(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = AlgorithmKind::FAULT_FREE_TEN;
    let mesh = Mesh::square(cfg.mesh_size);
    let pattern = Arc::new(FaultPattern::fault_free(&mesh));
    let specs: Vec<RunSpec> = RATE_SWEEP
        .iter()
        .flat_map(|&rate| {
            let pattern = &pattern;
            kinds.iter().map(move |&kind| RunSpec {
                kind,
                pattern: pattern.clone(),
                rate,
                seed: derive_seed(cfg.base_seed, 1, kind as u64, (rate * 1e6) as u64),
            })
        })
        .collect();
    let reports = parallel_map_with_progress(&specs, cfg.threads, cfg.progress, "fig1", |s| {
        run_single(cfg, s).expect("runnable spec")
    });
    let mut table = Table::new(
        "Saturation throughput vs traffic generation rate (fault-free 10×10 mesh)",
        "rate (msgs/node/cycle)",
        algorithm_columns(&kinds),
    );
    for (ri, &rate) in RATE_SWEEP.iter().enumerate() {
        let values = (0..kinds.len())
            .map(|ki| reports[ri * kinds.len() + ki].normalized_throughput())
            .collect();
        table.push_row(format!("{rate:.4}"), values);
    }
    FigureResult {
        id: "fig1",
        title: "Figure 1: throughput vs traffic load".into(),
        tables: vec![table],
        notes: vec![
            format!("mesh {0}×{0}, 100-flit messages, 24 VCs/PC", cfg.mesh_size),
            "normalized throughput = delivered flits / node / cycle".into(),
        ],
    }
}

/// **Figure 2** — average message latency (flit cycles, network latency)
/// of the ten algorithms against the traffic generation rate, fault-free.
pub fn fig2_latency_vs_rate(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = AlgorithmKind::FAULT_FREE_TEN;
    let mesh = Mesh::square(cfg.mesh_size);
    let pattern = Arc::new(FaultPattern::fault_free(&mesh));
    let specs: Vec<RunSpec> = RATE_SWEEP
        .iter()
        .flat_map(|&rate| {
            let pattern = &pattern;
            kinds.iter().map(move |&kind| RunSpec {
                kind,
                pattern: pattern.clone(),
                rate,
                seed: derive_seed(cfg.base_seed, 2, kind as u64, (rate * 1e6) as u64),
            })
        })
        .collect();
    let reports = parallel_map_with_progress(&specs, cfg.threads, cfg.progress, "fig2", |s| {
        run_single(cfg, s).expect("runnable spec")
    });
    let mut table = Table::new(
        "Average message latency vs traffic generation rate (fault-free 10×10 mesh)",
        "rate (msgs/node/cycle)",
        algorithm_columns(&kinds),
    );
    for (ri, &rate) in RATE_SWEEP.iter().enumerate() {
        let values = (0..kinds.len())
            .map(|ki| reports[ri * kinds.len() + ki].mean_network_latency())
            .collect();
        table.push_row(format!("{rate:.4}"), values);
    }
    FigureResult {
        id: "fig2",
        title: "Figure 2: average message latency vs traffic load".into(),
        tables: vec![table],
        notes: vec!["latency = first flit injected → tail delivered (flit cycles)".into()],
    }
}

/// **Figure 3** — per-VC average utilization at 5 % node faults, split into
/// the paper's two panels: (a) basic free-choice/hop-based algorithms,
/// (b) bonus-card/Duato/Boura-FT algorithms.
pub fn fig3_vc_utilization(cfg: &ExperimentConfig) -> FigureResult {
    let panel_a = [
        AlgorithmKind::FullyAdaptive,
        AlgorithmKind::Pbc,
        AlgorithmKind::MinimalAdaptive,
        AlgorithmKind::NHop,
        AlgorithmKind::PHop,
        AlgorithmKind::BouraAdaptive,
    ];
    let panel_b = [
        AlgorithmKind::Nbc,
        AlgorithmKind::Duato,
        AlgorithmKind::DuatoPbc,
        AlgorithmKind::DuatoNbc,
        AlgorithmKind::BouraFaultTolerant,
    ];
    let faults = (cfg.mesh_size as usize * cfg.mesh_size as usize) / 20; // 5 %
    let patterns = fault_patterns(cfg, faults, 3);

    let run_panel = |kinds: &[AlgorithmKind], panel: &str| -> Table {
        let specs: Vec<RunSpec> = kinds
            .iter()
            .flat_map(|&kind| {
                patterns.iter().enumerate().map(move |(pi, p)| RunSpec {
                    kind,
                    pattern: p.clone(),
                    rate: ANALYSIS_RATE,
                    seed: derive_seed(cfg.base_seed, 3, kind as u64, pi as u64),
                })
            })
            .collect();
        let reports = parallel_map_with_progress(
            &specs,
            cfg.threads,
            cfg.progress,
            &format!("fig3 panel {panel}"),
            |s| run_single(cfg, s).expect("runnable spec"),
        );
        let mut table = Table::new(
            format!("Per-VC utilization (%) at 5% faults — panel {panel}"),
            "VC index",
            algorithm_columns(kinds),
        );
        // Merge the patterns of each algorithm, then emit one row per VC.
        let merged: Vec<Vec<f64>> = kinds
            .iter()
            .enumerate()
            .map(|(ki, _)| {
                let mut acc = reports[ki * patterns.len()].vc_usage.clone();
                for pi in 1..patterns.len() {
                    acc.merge(&reports[ki * patterns.len() + pi].vc_usage);
                }
                acc.utilization_percent()
            })
            .collect();
        let num_vcs = merged[0].len();
        for vc in 0..num_vcs {
            table.push_row(format!("VC{vc}"), merged.iter().map(|u| u[vc]).collect());
        }
        table
    };

    FigureResult {
        id: "fig3",
        title: "Figure 3: virtual channel utilization at 5% faults".into(),
        tables: vec![run_panel(&panel_a, "a"), run_panel(&panel_b, "b")],
        notes: vec![
            format!(
                "rate {ANALYSIS_RATE}, {} random 5%-fault patterns averaged",
                patterns.len()
            ),
            "utilization = fraction of (channel × cycle) slots the VC was held".into(),
        ],
    }
}

/// Shared sweep behind Figures 4 and 5: every algorithm × fault case at
/// 100 % traffic load, averaged over the shared fault sets.
fn fault_sweep(cfg: &ExperimentConfig, salt: u64) -> Vec<(usize, AlgorithmKind, Vec<SimReport>)> {
    let kinds = AlgorithmKind::ALL;
    let nodes = cfg.mesh_size as usize * cfg.mesh_size as usize;
    let cases = [0usize, nodes / 20, nodes / 10]; // 0 %, 5 %, 10 %
    let mut out = Vec::new();
    for &faults in &cases {
        let patterns = fault_patterns(cfg, faults, salt);
        let specs: Vec<RunSpec> = kinds
            .iter()
            .flat_map(|&kind| {
                patterns.iter().enumerate().map(move |(pi, p)| RunSpec {
                    kind,
                    pattern: p.clone(),
                    rate: FULL_LOAD_RATE,
                    seed: derive_seed(cfg.base_seed, salt, kind as u64, (faults * 100 + pi) as u64),
                })
            })
            .collect();
        let reports = parallel_map_with_progress(
            &specs,
            cfg.threads,
            cfg.progress,
            &format!("fault sweep ({faults} faults)"),
            |s| run_single(cfg, s).expect("runnable spec"),
        );
        for (ki, &kind) in kinds.iter().enumerate() {
            let slice = reports[ki * patterns.len()..(ki + 1) * patterns.len()].to_vec();
            out.push((faults, kind, slice));
        }
    }
    out
}

fn fault_case_table(
    cfg: &ExperimentConfig,
    title: &str,
    value: impl Fn(&SimReport) -> f64,
    salt: u64,
) -> Table {
    let sweep = fault_sweep(cfg, salt);
    let kinds = AlgorithmKind::ALL;
    let nodes = cfg.mesh_size as usize * cfg.mesh_size as usize;
    let mut table = Table::new(title, "faults", algorithm_columns(&kinds));
    for &faults in &[0usize, nodes / 20, nodes / 10] {
        let values: Vec<f64> = kinds
            .iter()
            .map(|&kind| {
                let (_, _, reports) = sweep
                    .iter()
                    .find(|(f, k, _)| *f == faults && *k == kind)
                    .expect("sweep entry");
                let vals: Vec<f64> = reports.iter().map(&value).filter(|v| !v.is_nan()).collect();
                if vals.is_empty() {
                    f64::NAN
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            })
            .collect();
        table.push_row(format!("{}%", faults * 100 / nodes), values);
    }
    table
}

/// **Figure 4** — normalized throughput at 0 %, 5 %, 10 % faulty nodes,
/// 100 % traffic load, averaged over the shared fault sets.
pub fn fig4_throughput_vs_faults(cfg: &ExperimentConfig) -> FigureResult {
    let table = fault_case_table(
        cfg,
        "Normalized throughput vs percentage of faulty nodes (100% load)",
        |r| r.normalized_throughput(),
        4,
    );
    FigureResult {
        id: "fig4",
        title: "Figure 4: throughput vs fault percentage".into(),
        tables: vec![table],
        notes: vec![format!(
            "rate {FULL_LOAD_RATE} (100% load), {} fault sets per case",
            cfg.fault_patterns
        )],
    }
}

/// **Figure 5** — normalized message latency at 0 %, 5 %, 10 % faulty
/// nodes, 100 % traffic load, averaged over the shared fault sets.
pub fn fig5_latency_vs_faults(cfg: &ExperimentConfig) -> FigureResult {
    let table = fault_case_table(
        cfg,
        "Normalized message latency (flit cycles) vs percentage of faulty nodes (100% load)",
        |r| r.mean_network_latency(),
        4, // same salt as fig4: identical fault sets and seeds, shared shape
    );
    FigureResult {
        id: "fig5",
        title: "Figure 5: message latency vs fault percentage".into(),
        tables: vec![table],
        notes: vec!["same fault sets and seeds as Figure 4".into()],
    }
}

/// The paper's §5.2 fixed fault layout: one 2-wide × 3-tall block plus two
/// 1×1 blocks.
pub fn paper_52_layout(mesh: &Mesh) -> FaultPattern {
    FaultPattern::from_rects(
        mesh,
        &[
            Rect::new(Coord::new(3, 3), Coord::new(4, 5)),
            Rect::point(Coord::new(7, 7)),
            Rect::point(Coord::new(7, 1)),
        ],
    )
    .expect("paper layout is valid")
}

/// **Figure 6** — traffic load distribution around f-rings: mean/peak load
/// (as % of the busiest node) on f-ring nodes vs the other usable nodes,
/// for the fault-free network and the §5.2 fault layout (~10 % faults).
/// In the fault-free case the "f-ring" class is the same node set the
/// layout's rings would occupy, as in the paper's 0 % bars.
pub fn fig6_fring_traffic(cfg: &ExperimentConfig) -> FigureResult {
    let kinds = AlgorithmKind::ALL;
    let mesh = Mesh::square(cfg.mesh_size);
    let faulty_pattern = paper_52_layout(&mesh);
    let ring_ctx = wormsim_routing::RoutingContext::new(mesh.clone(), faulty_pattern.clone());
    let on_ring: Vec<bool> = mesh
        .nodes()
        .map(|n| ring_ctx.rings().on_any_ring(n))
        .collect();

    let cases: Vec<(String, Arc<FaultPattern>)> = vec![
        ("0%".into(), Arc::new(FaultPattern::fault_free(&mesh))),
        ("10%".into(), Arc::new(faulty_pattern.clone())),
    ];
    let specs: Vec<(usize, RunSpec)> = kinds
        .iter()
        .flat_map(|&kind| {
            cases.iter().enumerate().map(move |(ci, (_, p))| {
                (
                    ci,
                    RunSpec {
                        kind,
                        pattern: p.clone(),
                        rate: ANALYSIS_RATE,
                        seed: derive_seed(cfg.base_seed, 6, kind as u64, ci as u64),
                    },
                )
            })
        })
        .collect();
    let reports =
        parallel_map_with_progress(&specs, cfg.threads, cfg.progress, "fig6", |(_, s)| {
            run_single(cfg, s).expect("runnable spec")
        });

    let mut table = Table::new(
        "Traffic load on f-ring nodes vs other nodes (% of peak node load)",
        "algorithm / fault case",
        vec![
            "f-ring mean".into(),
            "f-ring peak".into(),
            "other mean".into(),
            "other peak".into(),
        ],
    );
    for (i, (ci, spec)) in specs.iter().enumerate() {
        let report = &reports[i];
        let usable: Vec<bool> = mesh.nodes().map(|n| !cases[*ci].1.is_faulty(n)).collect();
        let summary = report.node_load.ring_summary(&on_ring, &usable);
        table.push_row(
            format!("{} {}", spec.kind.paper_name(), cases[*ci].0),
            vec![
                summary.ring_mean_percent,
                summary.ring_peak_percent,
                summary.other_mean_percent,
                summary.other_peak_percent,
            ],
        );
    }
    FigureResult {
        id: "fig6",
        title: "Figure 6: traffic load distribution around fault rings".into(),
        tables: vec![table],
        notes: vec![
            "fault layout: 2×3 block at (3,3)-(4,5) + 1×1 blocks at (7,7), (7,1) (paper §5.2)"
                .into(),
            format!("rate {ANALYSIS_RATE}; loads normalized to the busiest usable node"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 100;
        cfg.sim.measure_cycles = 400;
        cfg.fault_patterns = 1;
        cfg
    }

    #[test]
    fn paper_layout_matches_section_5_2() {
        let mesh = Mesh::square(10);
        let p = paper_52_layout(&mesh);
        assert_eq!(p.regions().len(), 3);
        assert_eq!(p.num_faulty(), 8);
        assert!(p
            .regions()
            .iter()
            .any(|r| (r.width(), r.height()) == (2, 3)));
    }

    #[test]
    fn fig6_runs_at_tiny_scale() {
        let cfg = tiny_cfg();
        let fig = fig6_fring_traffic(&cfg);
        let t = &fig.tables[0];
        // 11 algorithms × 2 cases.
        assert_eq!(t.rows.len(), 22);
        assert_eq!(t.columns.len(), 4);
        // Percentages live in [0, 100].
        for (_, values) in &t.rows {
            for v in values {
                assert!((0.0..=100.0).contains(v), "out-of-range {v}");
            }
        }
    }

    #[test]
    fn fault_patterns_shared_and_deterministic() {
        let cfg = tiny_cfg();
        let a = fault_patterns(&cfg, 5, 9);
        let b = fault_patterns(&cfg, 5, 9);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].regions(), b[0].regions());
        let c = fault_patterns(&cfg, 5, 10);
        // Different salt → (almost surely) different pattern.
        assert_ne!(a[0].regions(), c[0].regions());
    }

    #[test]
    fn fig1_structure_at_tiny_scale() {
        let mut cfg = tiny_cfg();
        cfg.sim.measure_cycles = 300;
        let fig = fig1_saturation_throughput(&cfg);
        let t = &fig.tables[0];
        assert_eq!(t.columns.len(), 10);
        assert_eq!(t.rows.len(), RATE_SWEEP.len());
        // Low-rate throughput should be near the offered load for at least
        // the first row (all algorithms deliver everything).
        let (_, first) = &t.rows[0];
        for v in first {
            assert!(*v >= 0.0);
        }
    }
}
