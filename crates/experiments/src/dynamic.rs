//! The dynamic-fault study: nodes die *mid-run* and the network must
//! re-converge. Sweeps the fault-arrival time and the number of nodes
//! killed per event for three routing algorithms, reporting the recovery
//! metrics the static figures cannot express — post-fault settling time,
//! abort/loss counts, and per-message recovery latency.

use crate::config::ExperimentConfig;
use crate::figures::FigureResult;
use crate::runner::{derive_seed, parallel_map_with_progress};
use crate::table::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wormsim_chaos::{run_chaos, FaultSchedule};
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

/// Generation rate for the dynamic-fault study: 0.15 flits/node/cycle,
/// comfortably below both the fault-free saturation point (~0.23, Fig 1)
/// and the ~0.17 capacity at 5 % faults (Fig 4). The study must run
/// below saturation on both sides of the event — in an oversaturated
/// open-loop network the source queues grow without bound, so recovery
/// latency measures queueing depth and the settling window measures
/// saturation capacity instead of re-convergence.
pub const DYNAMIC_RATE: f64 = 0.0015;

/// Algorithms compared under dynamic faults: the paper's strongest
/// fault-tolerant candidate, a hop-scheme representative, and the minimal
/// adaptive baseline.
pub const DYNAMIC_KINDS: [AlgorithmKind; 3] = [
    AlgorithmKind::Duato,
    AlgorithmKind::NHop,
    AlgorithmKind::MinimalAdaptive,
];

/// Fraction of the measurement window elapsed when the fault event fires.
const ARRIVAL_FRACTIONS: [(u64, &str); 2] = [(25, "25%"), (50, "50%")];

/// Seed faults injected by the single event of each scenario.
const FAULT_COUNTS: [usize; 3] = [1, 3, 5];

struct ChaosSpec {
    schedule: FaultSchedule,
    kind: AlgorithmKind,
    seed: u64,
}

/// Mean of the finite values, NaN when none are.
fn mean_finite(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in values {
        if v.is_finite() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// **Dynamic faults** — for each (arrival time, fault count) scenario,
/// `cfg.fault_patterns` random single-event schedules are drawn once and
/// shared by all algorithms (the paper's convention: comparisons use the
/// same fault sets). Each run starts fault-free; at the scheduled cycle
/// the nodes die, in-flight messages crossing them are aborted and
/// re-injected with exponential backoff, and the sliding delivered-rate
/// window measures how long the network takes to return to within 5 % of
/// its pre-fault throughput.
pub fn dynamic_faults(cfg: &ExperimentConfig) -> FigureResult {
    let mesh = Mesh::square(cfg.mesh_size);
    let base = FaultPattern::fault_free(&mesh);
    let n_schedules = cfg.fault_patterns;

    // Scenario grid × shared schedules.
    let mut scenarios: Vec<(String, Vec<FaultSchedule>)> = Vec::new();
    for (fi, &(pct, label)) in ARRIVAL_FRACTIONS.iter().enumerate() {
        let arrival = cfg.sim.warmup_cycles + cfg.sim.measure_cycles * pct / 100;
        for (ci, &count) in FAULT_COUNTS.iter().enumerate() {
            let mut rng =
                SmallRng::seed_from_u64(derive_seed(cfg.base_seed, 20, fi as u64, ci as u64));
            let schedules = (0..n_schedules)
                .map(|_| {
                    // Width-1 window pins the event to the exact cycle.
                    FaultSchedule::random(&mesh, &base, 1, count, arrival..arrival + 1, &mut rng)
                        .expect("single-event schedule on a fault-free mesh")
                })
                .collect();
            scenarios.push((format!("{label} / {count} node(s)"), schedules));
        }
    }

    let mut specs = Vec::new();
    for (si, (_, schedules)) in scenarios.iter().enumerate() {
        for (ki, &kind) in DYNAMIC_KINDS.iter().enumerate() {
            for (pi, schedule) in schedules.iter().enumerate() {
                specs.push(ChaosSpec {
                    schedule: schedule.clone(),
                    kind,
                    seed: derive_seed(
                        cfg.base_seed,
                        21,
                        (si * DYNAMIC_KINDS.len() + ki) as u64,
                        pi as u64,
                    ),
                });
            }
        }
    }
    let reports: Vec<SimReport> = parallel_map_with_progress(
        &specs,
        cfg.threads,
        cfg.progress,
        "dynamic faults",
        |spec| {
            run_chaos(
                mesh.clone(),
                base.clone(),
                &spec.schedule,
                spec.kind,
                cfg.vc,
                Workload::paper_uniform(DYNAMIC_RATE),
                cfg.sim.with_seed(spec.seed),
            )
            .expect("validated schedule cannot fail at run time")
        },
    );

    let columns: Vec<String> = DYNAMIC_KINDS
        .iter()
        .map(|k| k.paper_name().to_string())
        .collect();
    let mut settle = Table::new(
        format!(
            "Post-fault settling time (cycles until the {}-cycle delivered-rate window \
             recovers to 95% of the pre-fault rate)",
            cfg.sim.settle_window
        ),
        "arrival / faults",
        columns.clone(),
    );
    let mut latency = Table::new(
        "Mean recovery latency of aborted messages (abort to delivery, cycles)",
        "arrival / faults",
        columns.clone(),
    );
    let mut aborted = Table::new(
        "Messages aborted and re-injected per fault event (mean)",
        "arrival / faults",
        columns.clone(),
    );
    let mut lost = Table::new(
        "Messages permanently lost per fault event (dead endpoint, mean)",
        "arrival / faults",
        columns.clone(),
    );
    let mut thr = Table::new(
        "Normalized delivered throughput over the whole measurement window",
        "arrival / faults",
        columns.clone(),
    );

    let mut idx = 0;
    for (label, schedules) in &scenarios {
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 5];
        for _ki in 0..DYNAMIC_KINDS.len() {
            let runs = &reports[idx..idx + schedules.len()];
            idx += schedules.len();
            let events = || {
                runs.iter()
                    .flat_map(|r| r.recovery.as_ref().expect("chaos run").events())
            };
            rows[0].push(mean_finite(
                events().map(|e| e.settle_cycles.map_or(f64::NAN, |c| c as f64)),
            ));
            rows[1].push(mean_finite(
                events().map(|e| e.mean_recovery_latency().unwrap_or(f64::NAN)),
            ));
            rows[2].push(mean_finite(events().map(|e| e.aborted as f64)));
            rows[3].push(mean_finite(events().map(|e| e.lost as f64)));
            rows[4].push(mean_finite(runs.iter().map(|r| r.normalized_throughput())));
        }
        thr.push_row(label.clone(), rows.pop().expect("throughput row"));
        lost.push_row(label.clone(), rows.pop().expect("lost row"));
        aborted.push_row(label.clone(), rows.pop().expect("aborted row"));
        latency.push_row(label.clone(), rows.pop().expect("latency row"));
        settle.push_row(label.clone(), rows.pop().expect("settle row"));
    }

    FigureResult {
        id: "dynamic_faults",
        title: "Dynamic faults: in-flight recovery and re-convergence".into(),
        tables: vec![settle, latency, aborted, lost, thr],
        notes: vec![
            format!(
                "rate {DYNAMIC_RATE} (below saturation on both sides of the event), \
                 fault-free start; one fault event per run at the \
                 given fraction of the measurement window, averaged over {n_schedules} \
                 random fault placements shared across algorithms"
            ),
            "settling NaN = the delivered-rate window never regained 95% of the \
             pre-fault rate before the run ended"
                .into(),
            format!(
                "backoff: base {} cycles, doubling per abort, capped at {} doublings",
                cfg.sim.recovery_backoff_base, cfg.sim.recovery_backoff_cap
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn dynamic_faults_shape_and_accounting() {
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 100;
        cfg.sim.measure_cycles = 1_200;
        cfg.sim.settle_window = 100;
        cfg.fault_patterns = 1;
        let fig = dynamic_faults(&cfg);
        assert_eq!(fig.id, "dynamic_faults");
        assert_eq!(fig.tables.len(), 5);
        for table in &fig.tables {
            assert_eq!(
                table.rows.len(),
                ARRIVAL_FRACTIONS.len() * FAULT_COUNTS.len()
            );
            assert_eq!(table.columns.len(), DYNAMIC_KINDS.len());
        }
        // Counts are finite and non-negative for every scenario; throughput
        // is positive (the network keeps delivering after the event).
        for t in [&fig.tables[2], &fig.tables[3]] {
            for (_, values) in &t.rows {
                for v in values {
                    assert!(v.is_finite() && *v >= 0.0);
                }
            }
        }
        for (_, values) in &fig.tables[4].rows {
            for v in values {
                assert!(*v > 0.0);
            }
        }
    }
}
