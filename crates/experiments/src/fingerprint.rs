//! Result and spec fingerprints.
//!
//! Two identities underpin the serving layer and the perf gates:
//!
//! - a **report fingerprint** — FNV-1a over a run's serialized
//!   [`SimReport`]. Simulation results are deterministic per seed and
//!   machine-independent, so the fingerprint is the result's identity:
//!   `bench_engine --check` pins it against a committed baseline, and the
//!   result cache in `wormsim-serve` stores it alongside each cached
//!   report as an integrity check.
//! - a **spec identity** — FNV-1a over the *canonical form* of a
//!   [`RunSpec`](crate::RunSpec)/[`CustomSpec`](crate::CustomSpec)
//!   (pattern faults by value, not `Arc` pointer). Two requests that
//!   describe the same simulation hash equal even when their `Arc`s
//!   differ. The hash is a compact label; exact dedup/cache keying uses
//!   the canonical string itself (`CustomSpec::canonical`), where
//!   equality is spec equality and collisions cannot alias.

use wormsim_metrics::SimReport;

/// FNV-1a over a byte string: the workspace's standard cheap,
/// dependency-free, stable 64-bit hash (same constants as the perf
/// harness has always used, so committed fingerprints stay valid).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fingerprint of a serialized report, formatted the way every
/// baseline and results artifact records it (16 lowercase hex digits).
pub fn report_json_fingerprint(report_json: &str) -> String {
    format!("{:016x}", fnv1a(report_json.as_bytes()))
}

/// Serialize `report` compactly and fingerprint it. The compact form is
/// the wire/cache form; the perf harness fingerprints the *pretty* form
/// for historical reasons, so the two are distinct namespaces — never
/// compare one against the other.
pub fn report_fingerprint(report: &SimReport) -> String {
    let json = serde_json::to_string(report).expect("report serializes");
    report_json_fingerprint(&json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fingerprint_formats_as_16_hex_digits() {
        let fp = report_json_fingerprint("{}");
        assert_eq!(fp.len(), 16);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
