//! Shared routing state across runs.
//!
//! A figure sweep runs the same `(mesh, fault pattern)` under many
//! algorithms, rates, and seeds; rebuilding the [`RoutingContext`] (and
//! its geometry table) plus the algorithm's routing tables for every run
//! dominated setup cost. The cache here hands out one
//! `Arc<RoutingContext>` per `(mesh size, pattern)` and one
//! `Arc<dyn RoutingAlgorithm>` per `(context, kind, vc)`, so the worker
//! pool's reused simulators only ever clone pointers between runs.
//!
//! Patterns are keyed by `Arc` identity, not by value: the harness builds
//! each distinct pattern once (see `figures::fault_patterns`) and clones
//! the `Arc` into every spec, so pointer identity is exactly pattern
//! identity — and hashing a pointer is free, where hashing a pattern's
//! fault list is not. The cache pins the pattern `Arc` alongside the
//! context it produced, which keeps the pointer from being reused by a
//! later allocation while the entry lives (no ABA).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingAlgorithm, RoutingContext, VcConfig};
use wormsim_topology::Mesh;

/// Entries per map before the cache wipes itself. Sweeps use a few dozen
/// patterns and a dozen algorithms; the bound only guards pathological
/// callers (e.g. a long-lived process minting patterns in a loop).
const CACHE_CAP: usize = 512;

/// Memoizes routing contexts and algorithm instances. See the module docs
/// for the keying scheme. Obtain the process-wide instance via
/// [`shared_cache`].
#[derive(Default)]
pub struct ContextCache {
    /// `(mesh size, pattern identity)` → the pattern (pinned) + context.
    ctxs: HashMap<(u16, usize), (Arc<FaultPattern>, Arc<RoutingContext>)>,
    /// `(context identity, kind, vc)` → the context (pinned) + algorithm.
    #[allow(clippy::type_complexity)]
    algos:
        HashMap<(usize, AlgorithmKind, VcConfig), (Arc<RoutingContext>, Arc<dyn RoutingAlgorithm>)>,
}

impl ContextCache {
    /// The routing context for a square mesh of `mesh_size` under
    /// `pattern`, built on first use and shared thereafter.
    pub fn context(&mut self, mesh_size: u16, pattern: &Arc<FaultPattern>) -> Arc<RoutingContext> {
        let key = (mesh_size, Arc::as_ptr(pattern) as usize);
        if let Some((_, ctx)) = self.ctxs.get(&key) {
            return ctx.clone();
        }
        if self.ctxs.len() >= CACHE_CAP {
            self.clear();
        }
        let mesh = Mesh::square(mesh_size);
        let ctx = Arc::new(RoutingContext::new(mesh, (**pattern).clone()));
        self.ctxs.insert(key, (pattern.clone(), ctx.clone()));
        ctx
    }

    /// The algorithm instance of `kind` bound to `ctx` with `vc`, built on
    /// first use and shared thereafter. Algorithms only read their context
    /// after construction, so one instance serves any number of
    /// (sequential or concurrent) runs.
    pub fn algorithm(
        &mut self,
        kind: AlgorithmKind,
        ctx: &Arc<RoutingContext>,
        vc: VcConfig,
    ) -> Arc<dyn RoutingAlgorithm> {
        let key = (Arc::as_ptr(ctx) as usize, kind, vc);
        if let Some((_, algo)) = self.algos.get(&key) {
            return algo.clone();
        }
        if self.algos.len() >= CACHE_CAP {
            self.algos.clear();
        }
        let algo: Arc<dyn RoutingAlgorithm> = build_algorithm(kind, ctx.clone(), vc).into();
        self.algos.insert(key, (ctx.clone(), algo.clone()));
        algo
    }

    /// Drop every cached entry (contexts and algorithms).
    pub fn clear(&mut self) {
        self.ctxs.clear();
        self.algos.clear();
    }

    /// Number of cached contexts (test hook).
    pub fn contexts_cached(&self) -> usize {
        self.ctxs.len()
    }

    /// Number of cached algorithm instances (test hook).
    pub fn algorithms_cached(&self) -> usize {
        self.algos.len()
    }
}

/// The process-wide cache used by `run_single` / `run_custom`.
pub fn shared_cache() -> &'static Mutex<ContextCache> {
    static CACHE: OnceLock<Mutex<ContextCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(ContextCache::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_shared_per_pattern_identity() {
        let mesh = Mesh::square(6);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let mut cache = ContextCache::default();
        let a = cache.context(6, &pattern);
        let b = cache.context(6, &pattern);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.contexts_cached(), 1);

        // Same value, different Arc: a distinct pattern identity.
        let other = Arc::new(FaultPattern::fault_free(&mesh));
        let c = cache.context(6, &other);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.contexts_cached(), 2);

        // Same pattern on a different mesh size is a distinct context.
        let d = cache.context(8, &Arc::new(FaultPattern::fault_free(&Mesh::square(8))));
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn algorithm_is_shared_per_context_kind_vc() {
        let mesh = Mesh::square(6);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let mut cache = ContextCache::default();
        let ctx = cache.context(6, &pattern);
        let a = cache.algorithm(AlgorithmKind::Duato, &ctx, VcConfig::paper());
        let b = cache.algorithm(AlgorithmKind::Duato, &ctx, VcConfig::paper());
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.algorithm(AlgorithmKind::Xy, &ctx, VcConfig::paper());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.algorithms_cached(), 2);
    }
}
