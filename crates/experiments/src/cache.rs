//! Shared routing state across runs.
//!
//! A figure sweep runs the same `(mesh, fault pattern)` under many
//! algorithms, rates, and seeds; rebuilding the [`RoutingContext`] (and
//! its geometry table) plus the algorithm's routing tables for every run
//! dominated setup cost. The cache here hands out one
//! `Arc<RoutingContext>` per `(mesh size, pattern)` and one
//! `Arc<dyn RoutingAlgorithm>` per `(context, kind, vc)`, so the worker
//! pool's reused simulators only ever clone pointers between runs.
//!
//! Patterns are keyed by `Arc` identity, not by value: the harness builds
//! each distinct pattern once (see `figures::fault_patterns`) and clones
//! the `Arc` into every spec, so pointer identity is exactly pattern
//! identity — and hashing a pointer is free, where hashing a pattern's
//! fault list is not. The cache pins the pattern `Arc` alongside the
//! context it produced, which keeps the pointer from being reused by a
//! later allocation while the entry lives (no ABA).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use wormsim_fault::FaultPattern;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingAlgorithm, RoutingContext, VcConfig};
use wormsim_topology::Mesh;

/// Default entries per map before the oldest entry is evicted. Sweeps use
/// a few dozen patterns and a dozen algorithms; the bound guards
/// long-lived processes — the serving layer above all, whose clients can
/// mint fresh patterns indefinitely.
const CACHE_CAP: usize = 512;

/// Memoizes routing contexts and algorithm instances. See the module docs
/// for the keying scheme. Obtain the process-wide instance via
/// [`shared_cache`].
///
/// Both maps are bounded: inserting past the capacity evicts the *oldest*
/// entry (insertion order), not the whole map — a resident server must
/// not lose its entire working set because one client brought a novel
/// pattern. Eviction only drops the cache's own `Arc`s; clones handed to
/// in-flight runs stay valid for as long as those runs hold them, and a
/// re-request after eviction simply rebuilds (under a fresh `Arc`).
pub struct ContextCache {
    /// Entries per map before eviction kicks in.
    cap: usize,
    /// `(mesh size, pattern identity)` → the pattern (pinned) + context.
    ctxs: HashMap<(u16, usize), (Arc<FaultPattern>, Arc<RoutingContext>)>,
    /// Insertion order of `ctxs` keys (front = oldest).
    ctx_order: VecDeque<(u16, usize)>,
    /// `(context identity, kind, vc)` → the context (pinned) + algorithm.
    #[allow(clippy::type_complexity)]
    algos:
        HashMap<(usize, AlgorithmKind, VcConfig), (Arc<RoutingContext>, Arc<dyn RoutingAlgorithm>)>,
    /// Insertion order of `algos` keys (front = oldest).
    algo_order: VecDeque<(usize, AlgorithmKind, VcConfig)>,
}

impl Default for ContextCache {
    fn default() -> Self {
        ContextCache::with_capacity(CACHE_CAP)
    }
}

impl ContextCache {
    /// A cache evicting oldest-first once either map holds `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        ContextCache {
            cap: cap.max(1),
            ctxs: HashMap::new(),
            ctx_order: VecDeque::new(),
            algos: HashMap::new(),
            algo_order: VecDeque::new(),
        }
    }

    /// The routing context for a square mesh of `mesh_size` under
    /// `pattern`, built on first use and shared thereafter.
    pub fn context(&mut self, mesh_size: u16, pattern: &Arc<FaultPattern>) -> Arc<RoutingContext> {
        let key = (mesh_size, Arc::as_ptr(pattern) as usize);
        if let Some((_, ctx)) = self.ctxs.get(&key) {
            return ctx.clone();
        }
        while self.ctxs.len() >= self.cap {
            if let Some(oldest) = self.ctx_order.pop_front() {
                self.ctxs.remove(&oldest);
            } else {
                break;
            }
        }
        let mesh = Mesh::square(mesh_size);
        let ctx = Arc::new(RoutingContext::new(mesh, (**pattern).clone()));
        self.ctxs.insert(key, (pattern.clone(), ctx.clone()));
        self.ctx_order.push_back(key);
        ctx
    }

    /// The algorithm instance of `kind` bound to `ctx` with `vc`, built on
    /// first use and shared thereafter. Algorithms only read their context
    /// after construction, so one instance serves any number of
    /// (sequential or concurrent) runs.
    pub fn algorithm(
        &mut self,
        kind: AlgorithmKind,
        ctx: &Arc<RoutingContext>,
        vc: VcConfig,
    ) -> Arc<dyn RoutingAlgorithm> {
        let key = (Arc::as_ptr(ctx) as usize, kind, vc);
        if let Some((_, algo)) = self.algos.get(&key) {
            return algo.clone();
        }
        while self.algos.len() >= self.cap {
            if let Some(oldest) = self.algo_order.pop_front() {
                self.algos.remove(&oldest);
            } else {
                break;
            }
        }
        let algo: Arc<dyn RoutingAlgorithm> = build_algorithm(kind, ctx.clone(), vc).into();
        self.algos.insert(key, (ctx.clone(), algo.clone()));
        self.algo_order.push_back(key);
        algo
    }

    /// Drop every cached entry (contexts and algorithms).
    pub fn clear(&mut self) {
        self.ctxs.clear();
        self.ctx_order.clear();
        self.algos.clear();
        self.algo_order.clear();
    }

    /// Whether a context for `(mesh_size, pattern)` is currently resident
    /// (non-mutating peek; eviction tests use it to observe state without
    /// re-inserting).
    pub fn context_cached(&self, mesh_size: u16, pattern: &Arc<FaultPattern>) -> bool {
        self.ctxs
            .contains_key(&(mesh_size, Arc::as_ptr(pattern) as usize))
    }

    /// Number of cached contexts (test hook).
    pub fn contexts_cached(&self) -> usize {
        self.ctxs.len()
    }

    /// Number of cached algorithm instances (test hook).
    pub fn algorithms_cached(&self) -> usize {
        self.algos.len()
    }
}

/// The process-wide cache used by `run_single` / `run_custom`.
pub fn shared_cache() -> &'static Mutex<ContextCache> {
    static CACHE: OnceLock<Mutex<ContextCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(ContextCache::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_shared_per_pattern_identity() {
        let mesh = Mesh::square(6);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let mut cache = ContextCache::default();
        let a = cache.context(6, &pattern);
        let b = cache.context(6, &pattern);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.contexts_cached(), 1);

        // Same value, different Arc: a distinct pattern identity.
        let other = Arc::new(FaultPattern::fault_free(&mesh));
        let c = cache.context(6, &other);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.contexts_cached(), 2);

        // Same pattern on a different mesh size is a distinct context.
        let d = cache.context(8, &Arc::new(FaultPattern::fault_free(&Mesh::square(8))));
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn filling_past_the_bound_evicts_oldest_contexts() {
        let mesh = Mesh::square(6);
        let mut cache = ContextCache::with_capacity(3);
        let patterns: Vec<Arc<FaultPattern>> = (0..5)
            .map(|_| Arc::new(FaultPattern::fault_free(&mesh)))
            .collect();
        let ctxs: Vec<Arc<RoutingContext>> = patterns.iter().map(|p| cache.context(6, p)).collect();
        // The bound holds: 5 inserts through a 3-entry cache keep 3.
        assert_eq!(cache.contexts_cached(), 3);
        // Oldest-first: patterns 0 and 1 were evicted, 2..5 are resident.
        for (i, p) in patterns.iter().enumerate() {
            assert_eq!(cache.context_cached(6, p), i >= 2, "pattern {i}");
        }
        // Re-requesting an evicted pattern rebuilds under a fresh Arc;
        // a resident one is still the shared instance.
        assert!(!Arc::ptr_eq(&ctxs[0], &cache.context(6, &patterns[0])));
        assert!(Arc::ptr_eq(&ctxs[4], &cache.context(6, &patterns[4])));
    }

    #[test]
    fn evicted_arcs_held_by_in_flight_runs_stay_valid() {
        let mesh = Mesh::square(6);
        let mut cache = ContextCache::with_capacity(2);
        let first = Arc::new(FaultPattern::fault_free(&mesh));
        let held_ctx = cache.context(6, &first);
        let held_algo = cache.algorithm(AlgorithmKind::Duato, &held_ctx, VcConfig::paper());
        // Flood both maps far past the bound.
        for _ in 0..8 {
            let p = Arc::new(FaultPattern::fault_free(&mesh));
            let c = cache.context(6, &p);
            cache.algorithm(AlgorithmKind::Duato, &c, VcConfig::paper());
        }
        assert_eq!(cache.contexts_cached(), 2);
        assert_eq!(cache.algorithms_cached(), 2);
        // The clones an in-flight run holds keep working after eviction:
        // eviction drops the cache's Arc, not the object.
        assert_eq!(held_ctx.mesh().num_nodes(), 36);
        let mut st = held_algo.init_message(mesh.node(0, 0), mesh.node(5, 5));
        let _ = held_algo.route(mesh.node(0, 0), &mut st);
        // A re-request after eviction rebuilds correctly (fresh identity).
        let rebuilt = cache.context(6, &first);
        assert!(!Arc::ptr_eq(&held_ctx, &rebuilt));
        assert_eq!(rebuilt.mesh().num_nodes(), 36);
    }

    #[test]
    fn algorithm_is_shared_per_context_kind_vc() {
        let mesh = Mesh::square(6);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let mut cache = ContextCache::default();
        let ctx = cache.context(6, &pattern);
        let a = cache.algorithm(AlgorithmKind::Duato, &ctx, VcConfig::paper());
        let b = cache.algorithm(AlgorithmKind::Duato, &ctx, VcConfig::paper());
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.algorithm(AlgorithmKind::Xy, &ctx, VcConfig::paper());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.algorithms_cached(), 2);
    }
}
