//! Experiment-level configuration.

use serde::{Deserialize, Serialize};
use wormsim_engine::SimConfig;
use wormsim_obs::Progress;
use wormsim_routing::VcConfig;

/// How much compute to spend: `Paper` mirrors the paper's §5 schedule;
/// `Quick` is a minutes-scale smoke version with the same structure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Scale {
    /// Short warm-up/measurement, few fault patterns. CI-sized.
    Quick,
    /// The paper's 30 000-cycle schedule and 10 fault sets per case.
    Paper,
}

/// Shared configuration for all figure runs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Mesh radix (paper: 10 → 10×10).
    pub mesh_size: u16,
    /// VC budget (paper: 24 with 4 BC VCs).
    pub vc: VcConfig,
    /// Engine schedule.
    pub sim: SimConfig,
    /// Random fault patterns averaged per fault case (paper: 10 for the
    /// performance study).
    pub fault_patterns: usize,
    /// Worker threads for the sweep fan-out.
    pub threads: usize,
    /// Every stochastic choice in the harness derives from this.
    pub base_seed: u64,
    /// Progress chatter policy for the fan-out (per-item ticks, banners).
    /// Quiet by default; result tables print regardless.
    pub progress: Progress,
}

impl ExperimentConfig {
    /// Build a configuration at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (sim, fault_patterns) = match scale {
            Scale::Quick => (
                SimConfig {
                    warmup_cycles: 1_000,
                    measure_cycles: 4_000,
                    ..SimConfig::paper()
                },
                3,
            ),
            Scale::Paper => (SimConfig::paper(), 10),
        };
        ExperimentConfig {
            mesh_size: 10,
            vc: VcConfig::paper(),
            sim,
            fault_patterns,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            base_seed: 0xC0FFEE,
            progress: Progress::quiet(),
        }
    }

    /// Builder-style thread override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder-style progress-reporter override.
    pub fn with_progress(mut self, progress: Progress) -> Self {
        self.progress = progress;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_in_schedule() {
        let q = ExperimentConfig::new(Scale::Quick);
        let p = ExperimentConfig::new(Scale::Paper);
        assert!(q.sim.total_cycles() < p.sim.total_cycles());
        assert_eq!(p.sim.warmup_cycles, 10_000);
        assert_eq!(p.fault_patterns, 10);
        assert_eq!(q.mesh_size, 10);
    }

    #[test]
    fn builders() {
        let c = ExperimentConfig::new(Scale::Quick)
            .with_threads(2)
            .with_seed(9)
            .with_progress(Progress::verbose());
        assert_eq!(c.threads, 2);
        assert_eq!(c.base_seed, 9);
        assert!(c.progress.is_verbose());
        assert!(!ExperimentConfig::new(Scale::Quick).progress.is_verbose());
    }
}
