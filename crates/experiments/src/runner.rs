//! Single-simulation runner and the thread fan-out.

use crate::config::ExperimentConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wormsim_engine::Simulator;
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_obs::Progress;
use wormsim_routing::{build_algorithm, AlgorithmKind, RoutingContext};
use wormsim_topology::Mesh;
use wormsim_traffic::Workload;

/// One simulation work item.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Which algorithm to run.
    pub kind: AlgorithmKind,
    /// The (static) fault pattern.
    pub pattern: FaultPattern,
    /// Message generation rate (messages/node/cycle).
    pub rate: f64,
    /// Per-run seed (derive it from the base seed + indices for
    /// reproducibility).
    pub seed: u64,
}

/// Run one simulation to completion and return its report.
pub fn run_single(cfg: &ExperimentConfig, spec: &RunSpec) -> SimReport {
    let mesh = Mesh::square(cfg.mesh_size);
    let ctx = Arc::new(RoutingContext::new(mesh, spec.pattern.clone()));
    let algo = build_algorithm(spec.kind, ctx.clone(), cfg.vc);
    let mut sim = Simulator::new(
        algo,
        ctx,
        Workload::paper_uniform(spec.rate),
        cfg.sim.with_seed(spec.seed),
    );
    sim.run()
}

/// A fully parameterized work item: everything the ablation studies vary.
#[derive(Clone, Debug)]
pub struct CustomSpec {
    /// Mesh radix (square mesh).
    pub mesh_size: u16,
    /// VC budget.
    pub vc: wormsim_routing::VcConfig,
    /// Engine schedule (seed included).
    pub sim: wormsim_engine::SimConfig,
    /// Which algorithm.
    pub kind: AlgorithmKind,
    /// Fault pattern (must match `mesh_size`).
    pub pattern: FaultPattern,
    /// Complete workload (pattern, rate, message length).
    pub workload: Workload,
}

/// Run a fully parameterized simulation.
pub fn run_custom(spec: &CustomSpec) -> SimReport {
    let mesh = Mesh::square(spec.mesh_size);
    let ctx = Arc::new(RoutingContext::new(mesh, spec.pattern.clone()));
    let algo = build_algorithm(spec.kind, ctx.clone(), spec.vc);
    let mut sim = Simulator::new(algo, ctx, spec.workload.clone(), spec.sim);
    sim.run()
}

/// Map `f` over `items` using `threads` scoped worker threads (dynamic
/// work stealing over an atomic index). Result order matches input order.
///
/// Shorthand for [`parallel_map_with_progress`] with a quiet reporter.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with_progress(items, threads, Progress::quiet(), "parallel_map", f)
}

/// [`parallel_map`] with a [`Progress`] reporter attached: a verbose
/// reporter prints one completion tick per item (tagged with `label`), and
/// worker-panic context goes through [`Progress::error`] so it survives a
/// quiet reporter. Result order matches input order.
pub fn parallel_map_with_progress<T, R, F>(
    items: &[T],
    threads: usize,
    progress: Progress,
    label: &str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let total = items.len();
    let threads = threads.clamp(1, total.max(1));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        out.push((i, f(&items[i])));
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        progress.note(format_args!("{label}: {finished}/{total} runs done"));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .flat_map(|(worker, h)| match h.join() {
                Ok(out) => out,
                // Re-raise the worker's own panic payload (message and
                // all) instead of masking it behind a generic join error,
                // so a crashing run identifies its work item.
                Err(payload) => {
                    let claimed = next.load(Ordering::Relaxed).min(total);
                    progress.error(format_args!(
                        "{label}: worker {worker}/{threads} panicked \
                         ({claimed}/{total} items claimed)"
                    ));
                    std::panic::resume_unwind(payload);
                }
            })
            .collect()
    });
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Derive a per-run seed from the experiment base seed and work indices
/// (splitmix64 over the packed indices).
pub fn derive_seed(base: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = base
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_item() {
        let out = parallel_map(&[5], 16, |&x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_with_progress_preserves_order() {
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map_with_progress(&items, 4, Progress::quiet(), "test", |&x| x * 3);
        assert_eq!(out, (0..40).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn derived_seeds_differ() {
        let s = derive_seed(1, 2, 3, 4);
        assert_ne!(s, derive_seed(1, 2, 3, 5));
        assert_ne!(s, derive_seed(1, 2, 4, 4));
        assert_eq!(s, derive_seed(1, 2, 3, 4));
    }

    #[test]
    fn run_single_smoke() {
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 200;
        cfg.sim.measure_cycles = 800;
        let mesh = Mesh::square(10);
        let spec = RunSpec {
            kind: AlgorithmKind::Duato,
            pattern: FaultPattern::fault_free(&mesh),
            rate: 0.002,
            seed: 1,
        };
        let report = run_single(&cfg, &spec);
        assert!(report.throughput.messages_delivered() > 0);
        assert_eq!(report.algorithm, "Duato's routing");
    }
}
