//! Single-simulation runner and the thread fan-out.
//!
//! Runs execute on the persistent [`WorkerPool`](crate::pool::WorkerPool):
//! each pool thread parks one `Simulator` in a thread-local and rewinds it
//! with [`Simulator::reset`] between runs, so a sweep of thousands of runs
//! allocates simulator state once per thread. Routing contexts and
//! algorithm instances are shared through the
//! [`ContextCache`](crate::cache::ContextCache) — specs carry
//! `Arc<FaultPattern>` so the cache can key them by identity.

use crate::cache::{shared_cache, ContextCache};
use crate::config::ExperimentConfig;
use crate::pool::{SyncPtr, WorkerPool};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, MutexGuard};
use wormsim_engine::{ConfigError, SimConfig, Simulator};
use wormsim_fault::FaultPattern;
use wormsim_metrics::SimReport;
use wormsim_obs::Progress;
use wormsim_routing::{min_total_vcs, AlgorithmKind, RoutingAlgorithm, RoutingContext, VcConfig};
use wormsim_traffic::Workload;

/// One simulation work item.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Which algorithm to run.
    pub kind: AlgorithmKind,
    /// The (static) fault pattern. Shared: every spec built from the same
    /// pattern clones one `Arc`, and the cache keys contexts off its
    /// identity.
    pub pattern: Arc<FaultPattern>,
    /// Message generation rate (messages/node/cycle).
    pub rate: f64,
    /// Per-run seed (derive it from the base seed + indices for
    /// reproducibility).
    pub seed: u64,
}

impl RunSpec {
    /// The stable identity of the simulation this spec describes when run
    /// under `cfg` via [`run_single`]: equal *content* (pattern faults by
    /// value, not `Arc` pointer) hashes equal across processes. It is
    /// exactly [`CustomSpec::identity`] of the fully expanded spec, so the
    /// serving layer can dedup a `RunSpec` request against an equivalent
    /// `CustomSpec` one.
    pub fn identity(&self, cfg: &ExperimentConfig) -> u64 {
        CustomSpec {
            mesh_size: cfg.mesh_size,
            vc: cfg.vc,
            sim: cfg.sim.with_seed(self.seed),
            kind: self.kind,
            pattern: self.pattern.clone(),
            workload: Workload::paper_uniform(self.rate),
        }
        .identity()
    }
}

thread_local! {
    /// The calling thread's reusable simulator (pool workers and the
    /// fan-out caller alike). Built on the first run, rewound with
    /// `Simulator::reset` for every run after.
    static WORKER_SIM: RefCell<Option<Simulator>> = const { RefCell::new(None) };
}

/// Run one simulation on this thread's reusable simulator. A
/// configuration the engine cannot honor comes back as a typed
/// [`ConfigError`] (the `try_reset` rejection leaves the parked simulator
/// untouched and reusable), so one bad spec no longer panics a whole
/// sweep off the pool.
fn run_reusing_sim(
    algo: Arc<dyn RoutingAlgorithm>,
    ctx: Arc<RoutingContext>,
    workload: Workload,
    cfg: SimConfig,
) -> Result<SimReport, ConfigError> {
    WORKER_SIM.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_mut() {
            Some(sim) => {
                sim.try_reset(algo, ctx, workload, cfg)?;
                Ok(sim.run())
            }
            None => {
                let mut sim = Simulator::try_new(algo, ctx, workload, cfg)?;
                let report = sim.run();
                *slot = Some(sim);
                Ok(report)
            }
        }
    })
}

/// Poison-tolerant lock on the shared context cache. A panic elsewhere
/// while the lock was held must not convert every later run in the
/// process into a `PoisonError` panic of its own — the cache's contents
/// are rebuilt-on-miss memoization, always safe to keep using.
fn cache_lock() -> MutexGuard<'static, ContextCache> {
    shared_cache().lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolve the shared routing context and algorithm for a spec,
/// validating the VC budget against the algorithm's constructor
/// minimums *first* — the constructors enforce them as asserts, and an
/// assert while holding the shared cache lock would otherwise poison it
/// for every other run in the process.
fn checked_context_and_algo(
    mesh_size: u16,
    pattern: &Arc<FaultPattern>,
    kind: AlgorithmKind,
    vc: VcConfig,
) -> Result<(Arc<RoutingContext>, Arc<dyn RoutingAlgorithm>), ConfigError> {
    if vc.total > 32 {
        return Err(ConfigError::TooManyVcs {
            requested: vc.total,
            limit: 32,
        });
    }
    if vc.bc_vcs > vc.total {
        return Err(ConfigError::BcShareExceedsTotal {
            total: vc.total,
            bc_vcs: vc.bc_vcs,
        });
    }
    if vc.bc_vcs < 4 {
        return Err(ConfigError::BcShareTooSmall {
            bc_vcs: vc.bc_vcs,
            required: 4,
        });
    }
    let mut cache = cache_lock();
    let ctx = cache.context(mesh_size, pattern);
    // Per-algorithm minimums are mesh-dependent (the hop-based schemes
    // scale with the diameter), so they can only be checked once the
    // mesh exists.
    let required = min_total_vcs(kind, ctx.mesh(), vc.bc_vcs);
    if vc.total < required {
        return Err(ConfigError::InsufficientVcs {
            algorithm: kind.paper_name(),
            required,
            total: vc.total,
        });
    }
    let algo = cache.algorithm(kind, &ctx, vc);
    Ok((ctx, algo))
}

/// Run one simulation to completion and return its report, or the
/// [`ConfigError`] explaining why the spec's configuration is unrunnable.
pub fn run_single(cfg: &ExperimentConfig, spec: &RunSpec) -> Result<SimReport, ConfigError> {
    let (ctx, algo) = checked_context_and_algo(cfg.mesh_size, &spec.pattern, spec.kind, cfg.vc)?;
    run_reusing_sim(
        algo,
        ctx,
        Workload::paper_uniform(spec.rate),
        cfg.sim.with_seed(spec.seed),
    )
}

/// A fully parameterized work item: everything the ablation studies vary.
#[derive(Clone, Debug)]
pub struct CustomSpec {
    /// Mesh radix (square mesh).
    pub mesh_size: u16,
    /// VC budget.
    pub vc: wormsim_routing::VcConfig,
    /// Engine schedule (seed included).
    pub sim: wormsim_engine::SimConfig,
    /// Which algorithm.
    pub kind: AlgorithmKind,
    /// Fault pattern (must match `mesh_size`); shared like
    /// [`RunSpec::pattern`].
    pub pattern: Arc<FaultPattern>,
    /// Complete workload (pattern, rate, message length). Held by value:
    /// it is a few plain words, so cloning it per run is free.
    pub workload: Workload,
}

impl CustomSpec {
    /// The canonical serialized form of this spec: every input
    /// [`run_custom`] consumes, rendered as tagged fields (separated so
    /// adjacent fields cannot alias) with the fault pattern serialized
    /// *by value*, not by `Arc` pointer. Two specs describe the same
    /// simulation — and produce byte-identical reports, the engine being
    /// deterministic in its inputs — iff their canonical forms are
    /// equal. The serving layer keys its dedup and result-cache maps on
    /// this string, so key equality *is* spec equality and no hash
    /// collision (accidental or crafted) can alias two different
    /// simulations.
    pub fn canonical(&self) -> String {
        fn field(out: &mut String, tag: &str, value: &str) {
            out.push_str(tag);
            out.push('\u{1f}'); // unit separator: tag/value boundary
            out.push_str(value);
            out.push('\u{1e}'); // record separator: field boundary
        }
        let ser = |v: &dyn erased_ser::ErasedSerialize| v.to_json();
        let mut out = String::new();
        field(&mut out, "mesh_size", &self.mesh_size.to_string());
        field(&mut out, "vc", &ser(&self.vc));
        field(&mut out, "sim", &ser(&self.sim));
        field(&mut out, "kind", &ser(&self.kind));
        field(&mut out, "workload", &ser(&self.workload));
        field(&mut out, "pattern", &ser(&*self.pattern));
        out
    }

    /// FNV-1a of [`CustomSpec::canonical`] — a compact 64-bit label for
    /// logs and artifacts. Equal canonical forms hash equal; anything
    /// that must *distinguish* specs (the serving layer's dedup/cache)
    /// keys on the canonical form itself, not this hash.
    pub fn identity(&self) -> u64 {
        crate::fingerprint::fnv1a(self.canonical().as_bytes())
    }
}

/// Object-safe serialization shim so `identity` can funnel heterogeneous
/// components through one closure without monomorphizing per call site.
mod erased_ser {
    pub trait ErasedSerialize {
        fn to_json(&self) -> String;
    }

    impl<T: serde::Serialize> ErasedSerialize for T {
        fn to_json(&self) -> String {
            serde_json::to_string(self).expect("spec component serializes")
        }
    }
}

/// Run a fully parameterized simulation, or return the [`ConfigError`]
/// explaining why the spec's configuration is unrunnable.
pub fn run_custom(spec: &CustomSpec) -> Result<SimReport, ConfigError> {
    let (ctx, algo) = checked_context_and_algo(spec.mesh_size, &spec.pattern, spec.kind, spec.vc)?;
    run_reusing_sim(algo, ctx, spec.workload.clone(), spec.sim)
}

/// Map `f` over `items` on the persistent worker pool (dynamic chunked
/// work stealing over a shared index). Result order matches input order.
///
/// Shorthand for [`parallel_map_with_progress`] with a quiet reporter.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with_progress(items, threads, Progress::quiet(), "parallel_map", f)
}

/// [`parallel_map`] with a [`Progress`] reporter attached: a verbose
/// reporter prints one completion tick per item (tagged with `label`), and
/// worker-panic context goes through [`Progress::error`] so it survives a
/// quiet reporter. Result order matches input order.
///
/// The calling thread participates as the first worker, and pool
/// enrollment is clamped to the number of outstanding work chunks — a
/// one-item batch runs inline on the caller, and no idle workers are woken
/// just to join an exhausted queue.
pub fn parallel_map_with_progress<T, R, F>(
    items: &[T],
    threads: usize,
    progress: Progress,
    label: &str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(total);
    out.resize_with(total, || None);
    let slots = SyncPtr(out.as_mut_ptr());
    let done = AtomicUsize::new(0);
    let task = |i: usize| {
        let r = f(&items[i]);
        // SAFETY: the pool claims each index exactly once, so this slot
        // has a unique writer, and its completion handshake orders every
        // write before `run` returns and `out` is read.
        unsafe { *slots.at(i) = Some(r) };
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        progress.note(format_args!("{label}: {finished}/{total} runs done"));
    };
    if let Err((claimed, payload)) = WorkerPool::global().run(threads, total, &task) {
        // Re-raise the worker's own panic payload (message and all)
        // instead of masking it behind a generic join error, so a crashing
        // run identifies its work item.
        progress.error(format_args!(
            "{label}: worker panicked ({claimed}/{total} items claimed)"
        ));
        std::panic::resume_unwind(payload);
    }
    out.into_iter()
        .map(|r| r.expect("pool ran every item"))
        .collect()
}

/// Derive a per-run seed from the experiment base seed and work indices
/// (splitmix64 over the packed indices).
pub fn derive_seed(base: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = base
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;
    use wormsim_topology::Mesh;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_item() {
        let out = parallel_map(&[5], 16, |&x| x + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_more_threads_than_items() {
        // Regression: the old scoped fan-out spawned (and joined) idle
        // threads whenever `threads > items`; the pool clamps enrollment
        // to outstanding chunks, and results stay ordered.
        let items: Vec<u64> = (0..3).collect();
        let out = parallel_map(&items, 64, |&x| x + 10);
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    fn parallel_map_with_progress_preserves_order() {
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map_with_progress(&items, 4, Progress::quiet(), "test", |&x| x * 3);
        assert_eq!(out, (0..40).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn spec_identity_is_content_not_pointer() {
        let mesh = Mesh::square(8);
        let coords = [wormsim_topology::Coord { x: 3, y: 4 }];
        let a = Arc::new(FaultPattern::from_faulty_coords(&mesh, coords).unwrap());
        let b = Arc::new(FaultPattern::from_faulty_coords(&mesh, coords).unwrap());
        assert!(!Arc::ptr_eq(&a, &b));
        let spec = |pattern: &Arc<FaultPattern>, seed: u64| CustomSpec {
            mesh_size: 8,
            vc: wormsim_routing::VcConfig::paper(),
            sim: wormsim_engine::SimConfig::quick().with_seed(seed),
            kind: AlgorithmKind::Duato,
            pattern: pattern.clone(),
            workload: Workload::paper_uniform(0.002),
        };
        // Distinct Arcs, same content: identical identity (the dedup key
        // must not depend on which client built the pattern).
        assert_eq!(spec(&a, 1).identity(), spec(&b, 1).identity());
        // Any semantic difference changes it.
        assert_ne!(spec(&a, 1).identity(), spec(&a, 2).identity());
        let fault_free = Arc::new(FaultPattern::fault_free(&mesh));
        assert_ne!(spec(&a, 1).identity(), spec(&fault_free, 1).identity());
        let mut other_kind = spec(&a, 1);
        other_kind.kind = AlgorithmKind::Xy;
        assert_ne!(spec(&a, 1).identity(), other_kind.identity());
    }

    #[test]
    fn run_spec_identity_matches_expanded_custom_spec() {
        let cfg = ExperimentConfig::new(Scale::Quick);
        let mesh = Mesh::square(10);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let spec = RunSpec {
            kind: AlgorithmKind::Nbc,
            pattern: pattern.clone(),
            rate: 0.004,
            seed: 42,
        };
        let custom = CustomSpec {
            mesh_size: cfg.mesh_size,
            vc: cfg.vc,
            sim: cfg.sim.with_seed(42),
            kind: AlgorithmKind::Nbc,
            pattern,
            workload: Workload::paper_uniform(0.004),
        };
        assert_eq!(spec.identity(&cfg), custom.identity());
    }

    #[test]
    fn derived_seeds_differ() {
        let s = derive_seed(1, 2, 3, 4);
        assert_ne!(s, derive_seed(1, 2, 3, 5));
        assert_ne!(s, derive_seed(1, 2, 4, 4));
        assert_eq!(s, derive_seed(1, 2, 3, 4));
    }

    #[test]
    fn run_single_smoke() {
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 200;
        cfg.sim.measure_cycles = 800;
        let mesh = Mesh::square(10);
        let spec = RunSpec {
            kind: AlgorithmKind::Duato,
            pattern: Arc::new(FaultPattern::fault_free(&mesh)),
            rate: 0.002,
            seed: 1,
        };
        let report = run_single(&cfg, &spec).expect("runnable config");
        assert!(report.throughput.messages_delivered() > 0);
        assert_eq!(report.algorithm, "Duato's routing");
    }

    #[test]
    fn bad_config_is_an_error_and_spares_the_parked_simulator() {
        // A spec the engine cannot honor must surface as a typed error —
        // not a panic that poisons the worker — and the thread's parked
        // simulator must stay reusable for the next good spec.
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 100;
        cfg.sim.measure_cycles = 300;
        let mesh = Mesh::square(10);
        let spec = RunSpec {
            kind: AlgorithmKind::Duato,
            pattern: Arc::new(FaultPattern::fault_free(&mesh)),
            rate: 0.002,
            seed: 3,
        };
        let good = serde_json::to_string(&run_single(&cfg, &spec).unwrap()).unwrap();
        let mut bad_cfg = cfg;
        bad_cfg.sim.shards = 0;
        let err = run_single(&bad_cfg, &spec).unwrap_err();
        assert_eq!(err, wormsim_engine::ConfigError::ZeroShards);
        let again = serde_json::to_string(&run_single(&cfg, &spec).unwrap()).unwrap();
        assert_eq!(good, again, "rejected reset corrupted the parked simulator");
    }

    #[test]
    fn insufficient_vc_budget_is_a_typed_error_not_a_panic() {
        // Regression: a spec passing the coarse checks (total <= 32,
        // bc_vcs <= total) but below an algorithm's constructor minimum —
        // e.g. Duato with 6 total VCs, whose base budget 2 trips
        // `assert!(budget >= 3)` — used to panic inside the shared
        // context cache's critical section, poisoning the lock and
        // turning every later run in the process into a panic of its
        // own. It must come back as a typed ConfigError instead, for
        // every roster algorithm and mesh-dependent minimum.
        let mesh = Mesh::square(6);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let mut sim = wormsim_engine::SimConfig::quick();
        sim.warmup_cycles = 50;
        sim.measure_cycles = 150;
        let spec = |kind: AlgorithmKind, vc: VcConfig| CustomSpec {
            mesh_size: 6,
            vc,
            sim,
            kind,
            pattern: pattern.clone(),
            workload: Workload::paper_uniform(0.002),
        };
        let with_total = |total: u8| VcConfig {
            total,
            ..VcConfig::paper()
        };
        let err = run_custom(&spec(AlgorithmKind::Duato, with_total(6))).unwrap_err();
        assert!(
            matches!(
                err,
                ConfigError::InsufficientVcs {
                    required: 7,
                    total: 6,
                    ..
                }
            ),
            "{err:?}"
        );
        for kind in AlgorithmKind::ALL
            .iter()
            .chain(AlgorithmKind::EXTENDED_BASELINES.iter())
        {
            let required = min_total_vcs(*kind, &mesh, 4);
            let err = run_custom(&spec(*kind, with_total(required - 1))).unwrap_err();
            assert!(
                matches!(err, ConfigError::InsufficientVcs { .. }),
                "{kind:?}: {err:?}"
            );
            run_custom(&spec(*kind, with_total(required)))
                .unwrap_or_else(|e| panic!("{kind:?} at its minimum budget: {e}"));
        }
        // The BC overlay's own minimum (4 VCs) is enforced too, and a
        // share past the total keeps its existing typed rejection.
        let mut bc_small = VcConfig::paper();
        bc_small.bc_vcs = 2;
        assert!(matches!(
            run_custom(&spec(AlgorithmKind::Duato, bc_small)).unwrap_err(),
            ConfigError::BcShareTooSmall {
                bc_vcs: 2,
                required: 4
            }
        ));
        let mut bc_large = VcConfig::paper();
        bc_large.bc_vcs = 30;
        assert!(matches!(
            run_custom(&spec(AlgorithmKind::Duato, bc_large)).unwrap_err(),
            ConfigError::BcShareExceedsTotal { .. }
        ));
        // None of the rejections above touched the shared cache's
        // critical section: good specs still run.
        run_custom(&spec(AlgorithmKind::Duato, VcConfig::paper())).expect("cache not poisoned");
    }

    #[test]
    fn poisoned_shared_cache_lock_is_tolerated() {
        // Even if some future bug panics while holding the shared cache
        // lock, runs must keep working: the cache is rebuild-on-miss
        // memoization, always safe to reuse, so the lock is taken
        // poison-tolerantly.
        let _ = std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(|| {
                let _guard = shared_cache().lock().unwrap_or_else(|e| e.into_inner());
                panic!("deliberately poison the shared cache lock");
            })
            .unwrap()
            .join();
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 100;
        cfg.sim.measure_cycles = 300;
        let mesh = Mesh::square(10);
        let spec = RunSpec {
            kind: AlgorithmKind::Xy,
            pattern: Arc::new(FaultPattern::fault_free(&mesh)),
            rate: 0.002,
            seed: 11,
        };
        run_single(&cfg, &spec).expect("run survives a poisoned cache lock");
    }

    #[test]
    fn canonical_form_is_spec_equality_and_identity_hashes_it() {
        let mesh = Mesh::square(8);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let spec = |seed: u64| CustomSpec {
            mesh_size: 8,
            vc: VcConfig::paper(),
            sim: wormsim_engine::SimConfig::quick().with_seed(seed),
            kind: AlgorithmKind::Duato,
            pattern: pattern.clone(),
            workload: Workload::paper_uniform(0.002),
        };
        assert_eq!(spec(1).canonical(), spec(1).canonical());
        assert_ne!(spec(1).canonical(), spec(2).canonical());
        assert_eq!(
            spec(1).identity(),
            crate::fingerprint::fnv1a(spec(1).canonical().as_bytes())
        );
    }

    #[test]
    fn run_single_reused_simulator_is_deterministic() {
        // The same spec must produce byte-identical reports whether it
        // lands on a fresh simulator or a reused (reset) one, and across
        // cached-context hits.
        let mut cfg = ExperimentConfig::new(Scale::Quick);
        cfg.sim.warmup_cycles = 100;
        cfg.sim.measure_cycles = 400;
        let mesh = Mesh::square(10);
        let pattern = Arc::new(FaultPattern::fault_free(&mesh));
        let spec_a = RunSpec {
            kind: AlgorithmKind::Nbc,
            pattern: pattern.clone(),
            rate: 0.003,
            seed: 7,
        };
        let spec_b = RunSpec {
            kind: AlgorithmKind::Xy,
            pattern,
            rate: 0.001,
            seed: 9,
        };
        let first = serde_json::to_string(&run_single(&cfg, &spec_a).unwrap()).unwrap();
        // Interleave another spec so spec_a's second run goes through a
        // reset from a different (kind, rate, seed) state.
        let _ = run_single(&cfg, &spec_b).unwrap();
        let again = serde_json::to_string(&run_single(&cfg, &spec_a).unwrap()).unwrap();
        assert_eq!(first, again);
    }
}
