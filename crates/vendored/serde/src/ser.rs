//! The JSON text writer driven by [`crate::Serialize`] implementations.

use crate::Serialize;

/// Streaming JSON writer. Derived `Serialize` impls call the container
/// and primitive methods; comma/indent bookkeeping is handled here.
pub struct Serializer {
    out: String,
    pretty: bool,
    /// One entry per open container: whether it has emitted an element yet.
    stack: Vec<bool>,
}

impl Serializer {
    /// Compact output (serde_json `to_string` shape).
    pub fn compact() -> Self {
        Serializer {
            out: String::new(),
            pretty: false,
            stack: Vec::new(),
        }
    }

    /// Pretty output, two-space indent (serde_json `to_string_pretty`
    /// shape).
    pub fn pretty() -> Self {
        Serializer {
            out: String::new(),
            pretty: true,
            stack: Vec::new(),
        }
    }

    /// Consume the serializer, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self, depth: usize) {
        self.out.push('\n');
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    /// Separator before an element/key at the current nesting level.
    fn prepare_slot(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            let had = *has_items;
            *has_items = true;
            if had {
                self.out.push(',');
            }
            if self.pretty {
                let depth = self.stack.len();
                self.newline_indent(depth);
            }
        }
    }

    fn close(&mut self, bracket: char) {
        let had_items = self.stack.pop().expect("container underflow");
        if self.pretty && had_items {
            let depth = self.stack.len();
            self.newline_indent(depth);
        }
        self.out.push(bracket);
    }

    /// Open a JSON object.
    pub fn begin_map(&mut self) {
        self.out.push('{');
        self.stack.push(false);
    }

    /// Close a JSON object.
    pub fn end_map(&mut self) {
        self.close('}');
    }

    /// Write one object entry: key plus any serializable value.
    pub fn field<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) {
        self.prepare_slot();
        self.write_escaped(key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        value.serialize(self);
    }

    /// Write an object key and the `:` separator, leaving the value
    /// position open for imperative construction (`begin_map`,
    /// `begin_seq`, or a `write_*` primitive). [`Serializer::field`]
    /// covers the common case where the value implements `Serialize`.
    pub fn key(&mut self, key: &str) {
        self.prepare_slot();
        self.write_escaped(key);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Prepare an array-element position for imperative construction.
    /// [`Serializer::elem`] covers the common case where the element
    /// implements `Serialize`.
    pub fn slot(&mut self) {
        self.prepare_slot();
    }

    /// Open a JSON array.
    pub fn begin_seq(&mut self) {
        self.out.push('[');
        self.stack.push(false);
    }

    /// Close a JSON array.
    pub fn end_seq(&mut self) {
        self.close(']');
    }

    /// Write one array element.
    pub fn elem<T: Serialize + ?Sized>(&mut self, value: &T) {
        self.prepare_slot();
        value.serialize(self);
    }

    /// Unit enum variant: externally tagged as a bare string.
    pub fn unit_variant(&mut self, name: &str) {
        self.write_str(name);
    }

    /// Newtype enum variant: `{"Name": value}`.
    pub fn newtype_variant<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        self.begin_map();
        self.field(name, value);
        self.end_map();
    }

    /// Open a struct variant: `{"Name": { ... } }`. Close with
    /// [`Serializer::end_wrapped_variant`].
    pub fn begin_struct_variant(&mut self, name: &str) {
        self.begin_map();
        self.prepare_slot();
        self.write_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.begin_map();
    }

    /// Open a tuple variant: `{"Name": [ ... ] }`. Close with
    /// [`Serializer::end_wrapped_variant`].
    pub fn begin_tuple_variant(&mut self, name: &str) {
        self.begin_map();
        self.prepare_slot();
        self.write_escaped(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.begin_seq();
    }

    /// Close the payload container and the tag object of a struct/tuple
    /// variant.
    pub fn end_wrapped_variant(&mut self, payload_bracket: char) {
        self.close(payload_bracket);
        self.end_map();
    }

    /// Literal `null`.
    pub fn write_null(&mut self) {
        self.out.push_str("null");
    }

    /// Boolean literal.
    pub fn write_bool(&mut self, v: bool) {
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Unsigned integer literal.
    pub fn write_u64(&mut self, v: u64) {
        self.out.push_str(itoa_buffer(v, false).as_str());
    }

    /// Signed integer literal.
    pub fn write_i64(&mut self, v: i64) {
        if v < 0 {
            self.out
                .push_str(itoa_buffer(v.unsigned_abs(), true).as_str());
        } else {
            self.write_u64(v as u64);
        }
    }

    /// Float literal. Non-finite values become `null`, as in serde_json.
    pub fn write_f64(&mut self, v: f64) {
        if v.is_finite() {
            // Rust's shortest-roundtrip formatting, with serde_json's
            // convention of keeping a fractional part on integral floats.
            let s = format!("{v}");
            self.out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.write_null();
        }
    }

    /// String literal (escaped).
    pub fn write_str(&mut self, v: &str) {
        self.write_escaped(v);
    }

    fn write_escaped(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Format an integer without going through `fmt` machinery.
fn itoa_buffer(mut v: u64, neg: bool) -> String {
    let mut digits = [0u8; 21];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        digits[i] = b'-';
    }
    String::from_utf8_lossy(&digits[i..]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_numbers() {
        let mut s = Serializer::compact();
        s.begin_map();
        s.field("a\"b", &1u64);
        s.field("f", &2.5f64);
        s.field("neg", &-7i64);
        s.field("int_float", &3.0f64);
        s.end_map();
        assert_eq!(
            s.finish(),
            "{\"a\\\"b\":1,\"f\":2.5,\"neg\":-7,\"int_float\":3.0}"
        );
    }

    #[test]
    fn pretty_layout_matches_serde_json_shape() {
        let mut s = Serializer::pretty();
        s.begin_map();
        s.field("x", &vec![1u32, 2]);
        s.end_map();
        assert_eq!(s.finish(), "{\n  \"x\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers() {
        let mut s = Serializer::pretty();
        s.begin_seq();
        s.end_seq();
        assert_eq!(s.finish(), "[]");
    }

    #[test]
    fn imperative_key_and_slot_match_field_and_elem() {
        let mut a = Serializer::compact();
        a.begin_map();
        a.key("xs");
        a.begin_seq();
        a.slot();
        a.begin_map();
        a.field("v", &1u32);
        a.end_map();
        a.elem(&2u32);
        a.end_seq();
        a.end_map();
        assert_eq!(a.finish(), "{\"xs\":[{\"v\":1},2]}");
    }

    #[test]
    fn u64_max_roundtrips_textually() {
        let mut s = Serializer::compact();
        s.write_u64(u64::MAX);
        assert_eq!(s.finish(), "18446744073709551615");
    }
}
