//! Vendored, dependency-free stand-in for `serde` (+ its derive macros).
//! The build environment has no registry access, so the real crates cannot
//! be fetched. This shim keeps `#[derive(Serialize, Deserialize)]` and the
//! `serde_json` entry points the workspace uses source-compatible.
//!
//! Model: serialization writes JSON text directly through [`Serializer`];
//! deserialization goes through a parsed [`Value`] tree. Only the JSON
//! data format is supported — which is the only format this workspace
//! uses. Representations follow serde's external tagging conventions so
//! emitted files keep the same shape as with the real crates.

mod impls;
pub mod json;
mod ser;

pub use json::Value;
pub use ser::Serializer;

// The derive macros share their names with the traits, exactly like the
// real serde's `derive` feature (macro and trait live in different
// namespaces).
pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Write `self` to the serializer.
    fn serialize(&self, s: &mut Serializer);
}

/// Types reconstructible from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Build from a value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Build an "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind_name()))
    }
}

/// Support function for derived code: look up and deserialize a struct
/// field. Not part of the public API contract.
#[doc(hidden)]
pub fn __field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v {
        Value::Object(pairs) => match pairs.iter().find(|(k, _)| k == key) {
            Some((_, inner)) => {
                T::deserialize(inner).map_err(|e| DeError(format!("field `{key}`: {}", e.0)))
            }
            None => Err(DeError(format!("missing field `{key}`"))),
        },
        other => Err(DeError::expected("object", other)),
    }
}

/// Support function for derived code: decompose an externally tagged enum
/// value into `(variant_name, payload)`. Not part of the public API
/// contract.
#[doc(hidden)]
pub fn __variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
        other => Err(DeError::expected(
            "variant string or single-key object",
            other,
        )),
    }
}

/// Support function for derived code: the error for an unknown variant
/// name. Not part of the public API contract.
#[doc(hidden)]
pub fn __unknown_variant(ty: &str, name: &str) -> DeError {
    DeError(format!("unknown variant `{name}` for enum {ty}"))
}
